"""Fixture tests for the lock-discipline checker (REPRO101/REPRO102)."""

from __future__ import annotations

from repro.analysis.checkers import LockDisciplineChecker


def run(module):
    return list(LockDisciplineChecker().check_module(module))


GUARDED_CLASS = """
    import threading

    class Counter:
        def __init__(self):
            self.total = 0  # guarded-by: _lock
            self._lock = threading.Lock()

        def add(self, amount):
            with self._lock:
                self.total += amount

        def peek(self):
            return self.total
"""


class TestUnguardedAccess:
    def test_read_outside_lock_flagged(self, module_from, codes_of):
        findings = run(module_from(GUARDED_CLASS))
        assert codes_of(findings) == ["REPRO101"]
        assert findings[0].symbol == "Counter.peek"
        assert "read" in findings[0].message

    def test_write_outside_lock_flagged(self, module_from):
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.state = {}  # guarded-by: _lock
                        self._lock = threading.Lock()

                    def clobber(self):
                        self.state = {}
                """
            )
        )
        assert len(findings) == 1
        assert "written" in findings[0].message

    def test_access_under_lock_is_clean(self, module_from):
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.items = []  # guarded-by: _lock
                        self._lock = threading.Lock()

                    def push(self, item):
                        with self._lock:
                            self.items.append(item)

                    def drain(self):
                        with self._lock:
                            out = list(self.items)
                            self.items = []
                        return out
                """
            )
        )
        assert findings == []

    def test_with_context_expression_itself_checked(self, module_from, codes_of):
        # `with self.guarded_thing:` evaluates the attribute *before* any
        # lock in the same with-statement is held.
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.resource = object()  # guarded-by: _lock
                        self._lock = threading.Lock()

                    def use(self):
                        with self.resource:
                            pass
                """
            )
        )
        assert codes_of(findings) == ["REPRO101"]

    def test_unrelated_lock_does_not_count(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.total = 0  # guarded-by: _lock
                        self._lock = threading.Lock()
                        self._other = threading.Lock()

                    def wrong_lock(self):
                        with self._other:
                            return self.total
                """
            )
        )
        assert codes_of(findings) == ["REPRO101"]


class TestScopes:
    def test_constructor_exempt(self, module_from):
        # GUARDED_CLASS.__init__ assigns self.total unlocked: no finding for it.
        findings = run(module_from(GUARDED_CLASS))
        assert all(f.symbol != "Counter.__init__" for f in findings)

    def test_nested_function_does_not_inherit_lock(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.total = 0  # guarded-by: _lock
                        self._lock = threading.Lock()

                    def submit(self, pool):
                        with self._lock:
                            def task():
                                return self.total
                            pool.submit(task)
                """
            )
        )
        assert codes_of(findings) == ["REPRO101"]

    def test_lambda_does_not_inherit_lock(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.total = 0  # guarded-by: _lock
                        self._lock = threading.Lock()

                    def submit(self, pool):
                        with self._lock:
                            pool.submit(lambda: self.total)
                """
            )
        )
        assert codes_of(findings) == ["REPRO101"]

    def test_holds_annotation_trusted(self, module_from):
        findings = run(
            module_from(
                """
                import threading

                class C:
                    def __init__(self):
                        self.total = 0  # guarded-by: _lock
                        self._lock = threading.Lock()

                    def _bump(self):  # repro-lint: holds=_lock
                        self.total += 1

                    def bump(self):
                        with self._lock:
                            self._bump()
                """
            )
        )
        assert findings == []


class TestDeclarations:
    def test_missing_lock_attribute_flagged(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                class C:
                    def __init__(self):
                        self.total = 0  # guarded-by: _lock

                    def read(self):
                        return self.total
                """
            )
        )
        assert "REPRO102" in codes_of(findings)

    def test_class_without_declarations_ignored(self, module_from):
        findings = run(
            module_from(
                """
                class Plain:
                    def __init__(self):
                        self.total = 0

                    def read(self):
                        return self.total
                """
            )
        )
        assert findings == []
