"""Fixture tests for the parity-purity checker (REPRO301)."""

from __future__ import annotations

from repro.analysis.checkers import ParityPurityChecker


def run(module):
    return list(ParityPurityChecker().check_module(module))


class TestNondeterminismSources:
    def test_clock_call(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import time

                def rank(items):  # parity-critical
                    return (items, time.perf_counter())
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]
        assert "clock" in findings[0].message

    def test_unseeded_random(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import random

                def sample(items):  # parity-critical
                    return random.choice(items)
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]

    def test_seeded_random_generator_allowed(self, module_from):
        findings = run(
            module_from(
                """
                import random

                def sample(items, seed):  # parity-critical
                    rng = random.Random(seed)
                    return rng
                """
            )
        )
        assert findings == []

    def test_numpy_default_rng_unseeded(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                from numpy.random import default_rng

                def jitter(values):  # parity-critical
                    return default_rng().random()
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]

    def test_numpy_default_rng_seeded_and_its_methods_allowed(self, module_from):
        findings = run(
            module_from(
                """
                from numpy.random import default_rng

                def jitter(values, seed):  # parity-critical
                    rng = default_rng(seed)
                    return rng.random()
                """
            )
        )
        assert findings == []

    def test_numpy_module_randomness_flagged(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import numpy as np

                def shuffle(values):  # parity-critical
                    np.random.shuffle(values)
                    return values
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]

    def test_identity_and_hash(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                def keys(items):  # parity-critical
                    return [(id(item), hash(item)) for item in items]
                """
            )
        )
        assert codes_of(findings) == ["REPRO301", "REPRO301"]

    def test_popitem(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                def drain(mapping):  # parity-critical
                    return mapping.popitem()
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]


class TestSetOrderLeaks:
    def test_for_loop_over_set_expression(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                def scan(query_cells, inverted):  # parity-critical
                    out = []
                    for cell in query_cells & inverted.keys():
                        out.append(cell)
                    return out
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]

    def test_comprehension_over_set_literal(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                def expand(a, b):  # parity-critical
                    return [x * 2 for x in {a, b}]
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]

    def test_list_of_set_call(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                def order(items):  # parity-critical
                    return list(set(items))
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]

    def test_sorted_set_is_clean(self, module_from):
        findings = run(
            module_from(
                """
                def order(a, b):  # parity-critical
                    return sorted(a & b)
                """
            )
        )
        assert findings == []

    def test_iterating_lists_and_dicts_is_clean(self, module_from):
        findings = run(
            module_from(
                """
                def scan(rows, table):  # parity-critical
                    out = []
                    for row in rows:
                        out.append(row)
                    for key in table:
                        out.append(key)
                    return out
                """
            )
        )
        assert findings == []


class TestRegistration:
    def test_unmarked_function_ignored(self, module_from):
        findings = run(
            module_from(
                """
                import random

                def helper(items):
                    return random.choice(list(set(items)))
                """
            )
        )
        assert findings == []

    def test_marked_method_checked(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import time

                class Search:
                    def run(self, query):  # parity-critical
                        return time.time()
                """
            )
        )
        assert codes_of(findings) == ["REPRO301"]
