"""Fixture tests for the unsafe-cache checker (REPRO201)."""

from __future__ import annotations

from repro.analysis.checkers import UnsafeCacheChecker


def run(module):
    return list(UnsafeCacheChecker().check_module(module))


class TestFlagged:
    def test_frozenset_parameter(self, module_from, codes_of):
        # The PR 4 bug class: an lru_cache keyed by whole frozensets.
        findings = run(
            module_from(
                """
                import functools

                @functools.lru_cache(maxsize=8192)
                def distance(cells_a: frozenset, cells_b: frozenset) -> float:
                    return 0.0
                """
            )
        )
        assert codes_of(findings) == ["REPRO201", "REPRO201"]

    def test_unannotated_parameter(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                from functools import lru_cache

                @lru_cache
                def lookup(key) -> int:
                    return 1
                """
            )
        )
        assert codes_of(findings) == ["REPRO201"]
        assert "unannotated" in findings[0].message

    def test_method_always_flagged(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                import functools

                class Index:
                    @functools.cache
                    def height(self) -> int:
                        return 0
                """
            )
        )
        assert codes_of(findings) == ["REPRO201"]
        assert "self" in findings[0].message

    def test_mutable_annotation(self, module_from, codes_of):
        findings = run(
            module_from(
                """
                from functools import cache

                @cache
                def compute(values: list[int]) -> int:
                    return len(values)
                """
            )
        )
        assert codes_of(findings) == ["REPRO201"]


class TestAccepted:
    def test_safe_scalar_keys(self, module_from):
        findings = run(
            module_from(
                """
                import functools

                @functools.lru_cache(maxsize=128)
                def area(width: int, height: int, scale: float = 1.0) -> float:
                    return width * height * scale
                """
            )
        )
        assert findings == []

    def test_tuple_and_union_keys(self, module_from):
        findings = run(
            module_from(
                """
                from functools import lru_cache
                from typing import Optional

                @lru_cache
                def f(point: tuple[int, int], name: Optional[str], flag: bool | None) -> int:
                    return 0
                """
            )
        )
        assert findings == []

    def test_staticmethod_judged_like_function(self, module_from):
        findings = run(
            module_from(
                """
                import functools

                class Grid:
                    @staticmethod
                    @functools.lru_cache(maxsize=64)
                    def cell_of(x: int, y: int) -> int:
                        return x + y
                """
            )
        )
        assert findings == []

    def test_uncached_functions_ignored(self, module_from):
        findings = run(
            module_from(
                """
                def anything(goes, here):
                    return [goes, here]
                """
            )
        )
        assert findings == []
