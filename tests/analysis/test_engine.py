"""Engine-level tests: suppressions, selection, ordering and the self-check.

The final class asserts the shipped tree's own contract: running the full
checker registry over ``src/repro`` produces **zero** live findings — the
same gate CI enforces via ``python -m repro.cli lint --strict``.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import AnalysisEngine, CHECKER_CODES, Finding, all_checkers
from repro.analysis.contracts import parse_suppressions


def write_package(tmp_path, files: dict[str, str]):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, source in files.items():
        (root / name).write_text(textwrap.dedent(source))
    return root


VIOLATIONS = {
    "locks.py": """
        import threading

        class Counter:
            def __init__(self):
                self.total = 0  # guarded-by: _lock
                self._lock = threading.Lock()

            def peek(self):
                return self.total
    """,
    "caches.py": """
        import functools

        @functools.lru_cache(maxsize=8192)
        def distance(cells: frozenset) -> float:
            return 0.0
    """,
    "hotpath.py": """
        import time

        def rank(items):  # parity-critical
            return (sorted(items), time.perf_counter())
    """,
    "exports.py": """
        __all__ = ["does_not_exist"]
    """,
}


class TestSuppressions:
    def test_suppressed_finding_moves_to_suppressed(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "hot.py": """
                    def rank(items):  # parity-critical
                        return list(set(items))  # repro-lint: disable=REPRO301
                """
            },
        )
        report = AnalysisEngine(root).run()
        assert report.clean
        assert [finding.code for finding in report.suppressed] == ["REPRO301"]
        assert report.unused_suppressions == []

    def test_all_wildcard_suppresses_everything(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "hot.py": """
                    def rank(items):  # parity-critical
                        return list(set(items))  # repro-lint: disable=all
                """
            },
        )
        report = AnalysisEngine(root).run()
        assert report.clean and len(report.suppressed) == 1

    def test_stale_suppression_reported(self, tmp_path):
        root = write_package(
            tmp_path,
            {
                "clean.py": """
                    def fine() -> int:
                        return 1  # repro-lint: disable=REPRO301
                """
            },
        )
        report = AnalysisEngine(root).run()
        assert report.clean
        assert report.unused_suppressions == [("pkg/clean.py", 3, "REPRO301")]

    def test_docstring_mention_is_not_a_suppression(self):
        lines = (
            '"""Docs may cite the marker literally:',
            "",
            "    # repro-lint: disable=REPRO301",
            '"""',
            "x = 1  # repro-lint: disable=REPRO201",
        )
        suppressions = parse_suppressions(lines)
        assert suppressions == {5: frozenset({"REPRO201"})}


class TestSelectionAndOrdering:
    def test_select_filters_by_code_prefix(self, tmp_path):
        root = write_package(tmp_path, VIOLATIONS)
        report = AnalysisEngine(root, select=["REPRO2"]).run()
        assert {finding.code for finding in report.findings} == {"REPRO201"}
        # Suppression staleness is not audited under a select filter.
        assert report.unused_suppressions == []

    def test_findings_sorted_by_location(self, tmp_path):
        root = write_package(tmp_path, VIOLATIONS)
        report = AnalysisEngine(root).run()
        keys = [finding.sort_key() for finding in report.findings]
        assert keys == sorted(keys)

    def test_every_checker_family_fires_on_seeded_violations(self, tmp_path):
        root = write_package(tmp_path, VIOLATIONS)
        report = AnalysisEngine(root).run()
        families = {finding.code[:6] for finding in report.findings}
        assert {"REPRO1", "REPRO2", "REPRO3", "REPRO4"} <= families


class TestReportShape:
    def test_as_dict_schema(self, tmp_path):
        root = write_package(tmp_path, VIOLATIONS)
        document = AnalysisEngine(root).run().as_dict()
        assert document["schema"] == "repro-lint/v1"
        assert document["summary"]["modules_scanned"] == 1 + len(VIOLATIONS)
        assert len(document["findings"]) == document["summary"]["finding_count"]

    def test_finding_round_trip(self):
        finding = Finding(path="a.py", line=3, code="REPRO101", message="m", symbol="S.f")
        assert finding.location() == "a.py:3"
        assert finding.as_dict() == {
            "code": "REPRO101",
            "column": 0,
            "line": 3,
            "message": "m",
            "path": "a.py",
            "symbol": "S.f",
        }

    def test_checker_codes_cover_registry(self):
        registered = {code for checker in all_checkers() for code in checker.codes}
        assert registered == set(CHECKER_CODES)


class TestSelfCheck:
    """The shipped tree must be clean under its own linter."""

    @pytest.fixture(scope="class")
    def report(self):
        return AnalysisEngine.for_package().run()

    def test_live_tree_has_no_findings(self, report):
        assert report.findings == [], [f.location() for f in report.findings]

    def test_live_tree_has_no_stale_suppressions(self, report):
        assert report.unused_suppressions == []

    def test_live_tree_scans_the_whole_package(self, report):
        assert report.modules_scanned >= 50

    def test_known_escape_is_the_only_suppression(self, report):
        # OverlapSearch._leaf_overlaps iterates the shared-cell set into a
        # commutative counter; it is the one justified REPRO301 escape.
        assert [finding.code for finding in report.suppressed] == ["REPRO301"]
        assert report.suppressed[0].path.endswith("search/overlap.py")
