"""Fixture tests for the API-drift checker (REPRO401/402/403)."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.checkers import ApiDriftChecker
from repro.analysis.contracts import parse_suppressions
from repro.analysis.engine import ModuleSource, Project


def project_from(**modules: str) -> Project:
    """Build a project from ``{dotted_name: source}`` keyword snippets."""
    parsed: dict[str, ModuleSource] = {}
    for dotted, source in modules.items():
        text = textwrap.dedent(source)
        lines = tuple(text.splitlines())
        path = dotted.replace(".", "/") + ".py"
        parsed[dotted] = ModuleSource(
            path=path,
            module=dotted,
            lines=lines,
            tree=ast.parse(text, filename=path),
            suppressions=parse_suppressions(lines),
        )
    return Project(root="pkg", modules=parsed)


def run(project):
    return list(ApiDriftChecker().run(project))


class TestResolution:
    def test_unresolved_export_flagged(self, codes_of):
        project = project_from(
            pkg="""
            __all__ = ["missing"]
            """
        )
        findings = run(project)
        assert codes_of(findings) == ["REPRO401"]
        assert findings[0].symbol == "missing"

    def test_export_resolved_through_reexport_chain(self):
        project = project_from(
            pkg="""
            from pkg.api import helper

            __all__ = ["helper"]
            """,
            **{
                "pkg.api": """
                from pkg.impl import helper

                __all__ = ["helper"]
                """,
                "pkg.impl": """
                def helper(value: int) -> int:
                    \"\"\"Double a value.\"\"\"
                    return value * 2
                """,
            },
        )
        assert run(project) == []

    def test_one_report_per_definition_across_reexports(self, codes_of):
        project = project_from(
            pkg="""
            from pkg.impl import broken

            __all__ = ["broken"]
            """,
            **{
                "pkg.impl": """
                __all__ = ["broken"]

                def broken(value) -> int:
                    \"\"\"Documented but unannotated.\"\"\"
                    return value
                """,
            },
        )
        findings = run(project)
        assert codes_of(findings) == ["REPRO402"]

    def test_external_imports_skipped(self):
        project = project_from(
            pkg="""
            import numpy as np
            from collections import OrderedDict

            __all__ = ["np", "OrderedDict"]
            """
        )
        # `np` resolves to a plain Import (external); OrderedDict's source
        # module is outside the project.
        assert run(project) == []

    def test_submodule_export_allowed(self):
        project = project_from(
            pkg="""
            from pkg import api

            __all__ = ["api"]
            """,
            **{"pkg.api": ""},
        )
        assert run(project) == []


class TestAnnotationsAndDocstrings:
    def test_missing_docstring_flagged(self, codes_of):
        project = project_from(
            pkg="""
            __all__ = ["f"]

            def f() -> None:
                return None
            """
        )
        assert codes_of(run(project)) == ["REPRO403"]

    def test_missing_annotations_flagged(self, codes_of):
        project = project_from(
            pkg="""
            __all__ = ["f"]

            def f(a, b):
                \"\"\"Docstring present.\"\"\"
                return a + b
            """
        )
        findings = run(project)
        assert codes_of(findings) == ["REPRO402"]
        assert "a" in findings[0].message and "return" in findings[0].message

    def test_class_public_methods_checked(self, codes_of):
        project = project_from(
            pkg="""
            __all__ = ["Thing"]

            class Thing:
                \"\"\"A documented class.\"\"\"

                def documented(self, x: int) -> int:
                    \"\"\"Fine.\"\"\"
                    return x

                def undocumented(self, x: int) -> int:
                    return x

                def _private(self, anything):
                    return anything
            """
        )
        findings = run(project)
        assert codes_of(findings) == ["REPRO403"]
        assert findings[0].symbol == "Thing.undocumented"

    def test_dunder_needs_annotations_not_docstring(self, codes_of):
        project = project_from(
            pkg="""
            __all__ = ["Thing"]

            class Thing:
                \"\"\"A documented class.\"\"\"

                def __len__(self):
                    return 0
            """
        )
        findings = run(project)
        assert codes_of(findings) == ["REPRO402"]

    def test_constant_exports_only_need_to_exist(self):
        project = project_from(
            pkg="""
            __all__ = ["VERSION", "TABLE"]

            VERSION = "1.0"
            TABLE: dict = {}
            """
        )
        assert run(project) == []
