"""Shared fixtures for the static-analysis test suite.

Checker tests run against small inline source snippets.  ``module_from``
turns a snippet into the :class:`~repro.analysis.engine.ModuleSource` view a
checker receives, and ``codes_of`` collapses findings to their code list so
tests assert on behaviour, not message wording.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.contracts import parse_suppressions
from repro.analysis.engine import ModuleSource
from repro.analysis.findings import Finding


def _module_from(source: str, path: str = "fixture.py", module: str = "fixture") -> ModuleSource:
    text = textwrap.dedent(source)
    lines = tuple(text.splitlines())
    return ModuleSource(
        path=path,
        module=module,
        lines=lines,
        tree=ast.parse(text, filename=path),
        suppressions=parse_suppressions(lines),
    )


def _codes_of(findings) -> list[str]:
    return [finding.code for finding in findings]


@pytest.fixture
def module_from():
    """Build a :class:`ModuleSource` from an inline source snippet."""
    return _module_from


@pytest.fixture
def codes_of():
    """Collapse an iterable of findings to the list of their codes."""
    return _codes_of


@pytest.fixture
def finding_lines():
    """Collapse findings to ``(code, line)`` pairs for location asserts."""

    def collapse(findings) -> list[tuple[str, int]]:
        return [(finding.code, finding.line) for finding in findings]

    return collapse


def assert_all_findings(findings: list[Finding]) -> None:
    """Sanity: every finding carries a known code, path and positive line."""
    from repro.analysis.findings import CHECKER_CODES

    for finding in findings:
        assert finding.code in CHECKER_CODES
        assert finding.path
        assert finding.line >= 1
