"""Shared fixtures for the test suite.

The fixtures build small deterministic corpora of dataset nodes so individual
tests stay fast while still exercising non-trivial tree structures (multiple
leaves, several levels of internal nodes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode, SpatialDataset
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.data.generators import (
    generate_cluster_dataset,
    generate_route_dataset,
    generate_uniform_dataset,
)
from repro.index.dits import DITSLocalIndex

#: A compact region used by most fixtures (roughly the D.C. area).
TEST_REGION = BoundingBox(-77.5, 38.5, -76.5, 39.5)


@pytest.fixture(scope="session")
def grid() -> Grid:
    """A resolution-12 grid over the whole world."""
    return Grid(theta=12)


@pytest.fixture(scope="session")
def fine_grid() -> Grid:
    """A resolution-14 grid for tests that need small cells."""
    return Grid(theta=14)


@pytest.fixture(scope="session")
def corpus_datasets() -> list[SpatialDataset]:
    """60 mixed synthetic datasets inside the test region (deterministic)."""
    rng = np.random.default_rng(42)
    datasets: list[SpatialDataset] = []
    for i in range(60):
        kind = i % 3
        if kind == 0:
            datasets.append(generate_route_dataset(f"route-{i}", TEST_REGION, rng, length=120))
        elif kind == 1:
            datasets.append(generate_cluster_dataset(f"cluster-{i}", TEST_REGION, rng, size=120))
        else:
            datasets.append(generate_uniform_dataset(f"uniform-{i}", TEST_REGION, rng, size=80))
    return datasets


@pytest.fixture(scope="session")
def corpus_nodes(corpus_datasets, fine_grid) -> list[DatasetNode]:
    """The corpus gridded at resolution 14 (dozens to hundreds of cells each)."""
    return [dataset.to_node(fine_grid) for dataset in corpus_datasets]


@pytest.fixture()
def dits_index(corpus_nodes) -> DITSLocalIndex:
    """A freshly built DITS-L index over the corpus (leaf capacity 8)."""
    index = DITSLocalIndex(leaf_capacity=8)
    index.build(corpus_nodes)
    return index


@pytest.fixture(scope="session")
def query_node(corpus_nodes) -> DatasetNode:
    """A query: the first corpus dataset."""
    return corpus_nodes[0]


def make_node(dataset_id: str, cells: set[int], grid: Grid) -> DatasetNode:
    """Helper used across test modules to build a node from explicit cells."""
    return DatasetNode.from_cells(dataset_id, cells, grid)
