"""Tests for dataset persistence (JSON and CSV round-trips)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import EmptyDatasetError
from repro.core.geometry import BoundingBox
from repro.data.generators import generate_route_dataset
from repro.data.loaders import (
    load_datasets_json,
    load_source_csv,
    save_datasets_json,
    save_source_csv,
)

REGION = BoundingBox(-77.5, 38.5, -76.5, 39.5)


def make_corpus(count: int = 5) -> list:
    rng = np.random.default_rng(1)
    return [generate_route_dataset(f"d{i}", REGION, rng, length=20) for i in range(count)]


class TestJsonRoundTrip:
    def test_round_trip_preserves_points(self, tmp_path):
        corpus = make_corpus()
        path = tmp_path / "corpus.json"
        save_datasets_json(corpus, path)
        loaded = load_datasets_json(path)
        assert [d.dataset_id for d in loaded] == [d.dataset_id for d in corpus]
        for original, restored in zip(corpus, loaded):
            assert [p.as_tuple() for p in original] == pytest.approx(
                [p.as_tuple() for p in restored]
            )

    def test_empty_dataset_in_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"empty": []}), encoding="utf-8")
        with pytest.raises(EmptyDatasetError):
            load_datasets_json(path)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        corpus = make_corpus(3)
        written = save_source_csv(corpus, tmp_path / "source")
        assert len(written) == 3
        loaded = load_source_csv(tmp_path / "source")
        assert [d.dataset_id for d in loaded] == sorted(d.dataset_id for d in corpus)
        by_id = {d.dataset_id: d for d in corpus}
        for restored in loaded:
            original = by_id[restored.dataset_id]
            assert len(restored) == len(original)

    def test_empty_csv_rejected(self, tmp_path):
        directory = tmp_path / "source"
        directory.mkdir()
        (directory / "empty.csv").write_text("x,y\n", encoding="utf-8")
        with pytest.raises(EmptyDatasetError):
            load_source_csv(directory)

    def test_loading_empty_directory(self, tmp_path):
        directory = tmp_path / "nothing"
        directory.mkdir()
        assert load_source_csv(directory) == []
