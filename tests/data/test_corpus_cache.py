"""Tests for the on-disk corpus cache (key derivation, round-trips, fallbacks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import corpus_cache
from repro.data.corpus_cache import (
    cache_dir_from_env,
    corpus_cache_path,
    generator_fingerprint,
    load_corpus,
    load_or_generate,
    store_corpus,
)
from repro.data.sources import SOURCE_PROFILES, build_source_datasets

TRANSIT = SOURCE_PROFILES["Transit"]


def small_corpus(seed: int = 3):
    return build_source_datasets(TRANSIT, scale=0.001, seed=seed, min_datasets=5)


def assert_corpora_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.dataset_id == b.dataset_id
        assert a.points == b.points  # exact float equality: lossless round-trip


class TestKeying:
    def test_fingerprint_is_stable(self):
        assert generator_fingerprint() == generator_fingerprint()
        assert len(generator_fingerprint()) == 16

    def test_path_varies_with_config(self, tmp_path):
        base = corpus_cache_path(tmp_path, TRANSIT, 0.02, 7, 20)
        assert corpus_cache_path(tmp_path, TRANSIT, 0.02, 7, 20) == base
        assert corpus_cache_path(tmp_path, TRANSIT, 0.04, 7, 20) != base
        assert corpus_cache_path(tmp_path, TRANSIT, 0.02, 8, 20) != base
        assert corpus_cache_path(tmp_path, TRANSIT, 0.02, 7, 21) != base
        assert corpus_cache_path(tmp_path, SOURCE_PROFILES["Baidu"], 0.02, 7, 20) != base

    def test_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        base = corpus_cache_path(tmp_path, TRANSIT, 0.02, 7, 20)
        monkeypatch.setattr(corpus_cache, "_fingerprint_cache", "deadbeefdeadbeef")
        assert corpus_cache_path(tmp_path, TRANSIT, 0.02, 7, 20) != base


class TestRoundTrip:
    def test_store_then_load_is_bit_identical(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "corpus.npz"
        store_corpus(path, corpus)
        assert_corpora_identical(load_corpus(path), corpus)

    def test_missing_file_returns_none(self, tmp_path):
        assert load_corpus(tmp_path / "absent.npz") is None

    def test_corrupted_file_returns_none(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"this is not an npz archive")
        assert load_corpus(path) is None


class TestLoadOrGenerate:
    def test_generates_then_hits_cache(self, tmp_path):
        calls = []

        def generate():
            calls.append(1)
            return small_corpus()

        first = load_or_generate(TRANSIT, 0.001, 3, 5, generate, cache_dir=tmp_path)
        second = load_or_generate(TRANSIT, 0.001, 3, 5, generate, cache_dir=tmp_path)
        assert len(calls) == 1
        assert_corpora_identical(first, second)

    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv(corpus_cache.CACHE_ENV_VAR, raising=False)
        calls = []

        def generate():
            calls.append(1)
            return small_corpus()

        load_or_generate(TRANSIT, 0.001, 3, 5, generate)
        load_or_generate(TRANSIT, 0.001, 3, 5, generate)
        assert len(calls) == 2

    def test_env_var_configures_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(corpus_cache.CACHE_ENV_VAR, str(tmp_path))
        assert cache_dir_from_env() == tmp_path
        build_source_datasets(TRANSIT, scale=0.001, seed=11, min_datasets=5)
        assert list(tmp_path.glob("Transit-*.npz"))

    @pytest.mark.parametrize("value", ["", "0", "off", "none"])
    def test_env_var_off_values(self, value, monkeypatch):
        monkeypatch.setenv(corpus_cache.CACHE_ENV_VAR, value)
        assert cache_dir_from_env() is None

    def test_explicit_empty_cache_dir_disables(self, tmp_path, monkeypatch):
        # An empty string must disable caching, not cache into the cwd.
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv(corpus_cache.CACHE_ENV_VAR, raising=False)
        calls = []

        def generate():
            calls.append(1)
            return small_corpus()

        load_or_generate(TRANSIT, 0.001, 3, 5, generate, cache_dir="")
        load_or_generate(TRANSIT, 0.001, 3, 5, generate, cache_dir="")
        assert len(calls) == 2
        assert not list(tmp_path.glob("*.npz"))

    def test_cached_equals_generated_through_build_source_datasets(self, tmp_path):
        generated = build_source_datasets(
            TRANSIT, scale=0.001, seed=13, min_datasets=5, cache_dir=str(tmp_path)
        )
        cached = build_source_datasets(
            TRANSIT, scale=0.001, seed=13, min_datasets=5, cache_dir=str(tmp_path)
        )
        assert_corpora_identical(generated, cached)

    def test_size_mismatch_regenerates(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "corpus.npz"
        store_corpus(path, corpus)
        with np.load(path) as archive:
            ids, sizes, points = archive["ids"], archive["sizes"], archive["points"]
        np.savez(path, ids=ids, sizes=sizes + 1, points=points)
        assert load_corpus(path) is None
