"""Tests for the synthetic dataset generators and source profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.data.generators import (
    DatasetGenerator,
    generate_cluster_dataset,
    generate_route_dataset,
    generate_uniform_dataset,
)
from repro.data.queries import perturbed_queries, sample_queries
from repro.data.sources import SOURCE_PROFILES, build_all_sources, build_source_datasets

REGION = BoundingBox(-77.5, 38.5, -76.5, 39.5)


class TestPrimitiveGenerators:
    def test_route_stays_in_region_and_has_length(self):
        rng = np.random.default_rng(1)
        dataset = generate_route_dataset("r", REGION, rng, length=150)
        assert len(dataset) == 150
        for point in dataset:
            assert REGION.contains_point(point)

    def test_route_is_spatially_correlated(self):
        # Consecutive points of a route must be much closer together than the
        # region diameter (it is a walk, not a scatter).
        rng = np.random.default_rng(2)
        dataset = generate_route_dataset("r", REGION, rng, length=100)
        steps = [
            dataset.points[i].distance_to(dataset.points[i + 1])
            for i in range(len(dataset) - 1)
        ]
        assert max(steps) < 0.05 * max(REGION.width, REGION.height) + 1e-9

    def test_cluster_dataset_in_region(self):
        rng = np.random.default_rng(3)
        dataset = generate_cluster_dataset("c", REGION, rng, size=200, cluster_count=2)
        assert len(dataset) == 200
        for point in dataset:
            assert REGION.contains_point(point)

    def test_uniform_dataset_spreads_over_region(self):
        rng = np.random.default_rng(4)
        dataset = generate_uniform_dataset("u", REGION, rng, size=500)
        box = dataset.bounding_box
        assert box.width > 0.5 * REGION.width
        assert box.height > 0.5 * REGION.height

    def test_determinism_per_seed(self):
        a = generate_route_dataset("r", REGION, np.random.default_rng(7), length=50)
        b = generate_route_dataset("r", REGION, np.random.default_rng(7), length=50)
        assert [p.as_tuple() for p in a] == [p.as_tuple() for p in b]


class TestDatasetGenerator:
    def test_generate_many_names_and_sizes(self):
        generator = DatasetGenerator(region=REGION, mean_size=100)
        datasets = generator.generate_many(10, np.random.default_rng(5), prefix="X")
        assert [d.dataset_id for d in datasets] == [f"X{i}" for i in range(10)]
        assert all(len(d) >= 10 for d in datasets)

    def test_share_parameters_control_mixture(self):
        all_routes = DatasetGenerator(region=REGION, route_share=1.0, cluster_share=0.0)
        datasets = all_routes.generate_many(5, np.random.default_rng(6))
        # Routes are correlated walks: their consecutive steps are short.
        for dataset in datasets:
            steps = [
                dataset.points[i].distance_to(dataset.points[i + 1])
                for i in range(len(dataset) - 1)
            ]
            assert max(steps) < 0.05 * max(REGION.width, REGION.height) + 1e-9


class TestSourceProfiles:
    def test_five_profiles_match_paper_table(self):
        assert set(SOURCE_PROFILES) == {"Baidu", "BTAA", "NYU", "Transit", "UMN"}
        assert SOURCE_PROFILES["Baidu"].dataset_count == 6581
        assert SOURCE_PROFILES["Transit"].dataset_count == 1967

    def test_build_scales_dataset_count(self):
        small = build_source_datasets("Transit", scale=0.01, seed=1)
        large = build_source_datasets("Transit", scale=0.05, seed=1)
        assert len(large) > len(small)
        assert len(small) >= 20  # min_datasets floor

    def test_build_is_deterministic(self):
        a = build_source_datasets("Baidu", scale=0.005, seed=3)
        b = build_source_datasets("Baidu", scale=0.005, seed=3)
        assert [d.dataset_id for d in a] == [d.dataset_id for d in b]
        assert [len(d) for d in a] == [len(d) for d in b]

    def test_datasets_respect_profile_region(self):
        profile = SOURCE_PROFILES["Transit"]
        datasets = build_source_datasets(profile, scale=0.01, seed=4)
        for dataset in datasets[:10]:
            box = dataset.bounding_box
            assert profile.region.expanded(1e-6).contains_box(box)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_source_datasets("Transit", scale=0.0)

    def test_build_all_sources(self):
        corpora = build_all_sources(scale=0.005, seed=5)
        assert set(corpora) == set(SOURCE_PROFILES)
        assert all(len(datasets) >= 20 for datasets in corpora.values())


class TestQueryWorkloads:
    def test_sample_queries_without_replacement(self):
        datasets = build_source_datasets("Transit", scale=0.01, seed=6)
        queries = sample_queries(datasets, count=10, seed=1)
        assert len(queries) == 10
        assert len({q.dataset_id for q in queries}) == 10

    def test_sample_more_than_corpus(self):
        datasets = build_source_datasets("Transit", scale=0.01, seed=6)
        queries = sample_queries(datasets, count=10_000, seed=1)
        assert len(queries) == len(datasets)

    def test_sample_invalid_count(self):
        with pytest.raises(ValueError):
            sample_queries([], count=0)

    def test_perturbed_queries_move_points_slightly(self):
        datasets = build_source_datasets("Transit", scale=0.01, seed=6)
        queries = perturbed_queries(datasets, count=3, seed=2, jitter_fraction=0.001)
        assert len(queries) == 3
        for query in queries:
            assert query.dataset_id.startswith("query-")
