"""Tests for OverlapSearch (Algorithm 2) and its exactness guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import OverlapQuery, brute_force_overlap
from repro.index.dits import DITSLocalIndex
from repro.search.overlap import OverlapSearch

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def random_nodes(count: int, seed: int = 0, spread: int = 200, cluster: int = 20) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (ox + int(rng.integers(0, cluster)), oy + int(rng.integers(0, cluster)))
            for _ in range(int(rng.integers(3, 15)))
        }
        nodes.append(node(f"ds-{i}", coords))
    return nodes


def build_index(nodes: list[DatasetNode], capacity: int = 5) -> DITSLocalIndex:
    index = DITSLocalIndex(leaf_capacity=capacity)
    index.build(nodes)
    return index


class TestBasicBehaviour:
    def test_empty_index_returns_empty_result(self):
        index = DITSLocalIndex()
        index.build([])
        search = OverlapSearch(index)
        result = search.search_node(node("q", {(0, 0)}), k=3)
        assert len(result) == 0

    def test_query_identical_to_dataset_ranks_it_first(self):
        nodes = random_nodes(30, seed=1)
        index = build_index(nodes)
        search = OverlapSearch(index)
        query = nodes[7]
        result = search.search_node(query, k=3)
        assert result.dataset_ids[0] == "ds-7"
        assert result.scores[0] == len(query.cells)

    def test_k_larger_than_corpus(self):
        nodes = random_nodes(4, seed=2)
        index = build_index(nodes, capacity=2)
        search = OverlapSearch(index)
        result = search.search_node(nodes[0], k=10)
        assert len(result) <= 4

    def test_result_scores_sorted_descending(self):
        nodes = random_nodes(30, seed=3)
        search = OverlapSearch(build_index(nodes))
        result = search.search_node(nodes[0], k=8)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_search_accepts_query_object(self):
        nodes = random_nodes(10, seed=4)
        search = OverlapSearch(build_index(nodes))
        result = search.search(OverlapQuery(query=nodes[0], k=2))
        assert len(result) <= 2

    def test_disjoint_query_returns_zero_scores_or_empty(self):
        nodes = [node(f"d{i}", {(i, 0)}) for i in range(5)]
        search = OverlapSearch(build_index(nodes, capacity=2))
        query = node("q", {(200, 200)})
        result = search.search_node(query, k=3)
        assert all(score == 0 for score in result.scores)

    def test_index_property_exposed(self):
        index = build_index(random_nodes(5, seed=5), capacity=2)
        assert OverlapSearch(index).index is index


class TestExactnessAgainstBruteForce:
    @pytest.mark.parametrize("seed", [10, 11, 12, 13])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force_scores(self, seed, k):
        nodes = random_nodes(60, seed=seed)
        search = OverlapSearch(build_index(nodes, capacity=6))
        for query in nodes[:8]:
            fast = search.search_node(query, k)
            exact = brute_force_overlap(query, nodes, k)
            fast_scores = sorted(fast.scores, reverse=True) + [0.0] * k
            exact_scores = sorted(exact.scores, reverse=True) + [0.0] * k
            assert fast_scores[:k] == exact_scores[:k]

    def test_matches_brute_force_with_external_query(self):
        nodes = random_nodes(50, seed=20)
        search = OverlapSearch(build_index(nodes, capacity=4))
        external = node("external", {(40, 40), (41, 41), (42, 40), (60, 60)})
        fast = search.search_node(external, k=5)
        exact = brute_force_overlap(external, nodes, k=5)
        fast_scores = (sorted(fast.scores, reverse=True) + [0.0] * 5)[:5]
        exact_scores = (sorted(exact.scores, reverse=True) + [0.0] * 5)[:5]
        assert fast_scores == exact_scores

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=5, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_exactness(self, count, k, capacity, seed):
        nodes = random_nodes(count, seed=seed, spread=60, cluster=15)
        search = OverlapSearch(build_index(nodes, capacity=capacity))
        query = nodes[seed % count]
        fast = search.search_node(query, k)
        exact = brute_force_overlap(query, nodes, k)
        fast_scores = sorted(fast.scores, reverse=True) + [0.0] * k
        exact_scores = sorted(exact.scores, reverse=True) + [0.0] * k
        assert fast_scores[:k] == exact_scores[:k]


class TestPruningBehaviour:
    def test_stats_populated(self):
        nodes = random_nodes(60, seed=30)
        search = OverlapSearch(build_index(nodes, capacity=5))
        search.search_node(nodes[0], k=3)
        stats = search.last_stats
        assert stats.visited_leaves + stats.pruned_by_mbr > 0
        assert stats.candidate_leaves <= stats.visited_leaves

    def test_disjoint_mbr_leaves_are_pruned(self):
        # Two far-apart clusters: querying inside one must prune the other.
        left = [node(f"left-{i}", {(i, 0), (i, 1)}) for i in range(10)]
        right = [node(f"right-{i}", {(200 + i, 200), (200 + i, 201)}) for i in range(10)]
        search = OverlapSearch(build_index(left + right, capacity=2))
        query = node("q", {(0, 0), (1, 1), (2, 0)})
        result = search.search_node(query, k=3)
        assert all(dataset_id.startswith("left") for dataset_id in result.dataset_ids)
        assert search.last_stats.pruned_by_mbr > 0

    def test_verified_datasets_never_exceed_corpus(self):
        nodes = random_nodes(40, seed=31)
        search = OverlapSearch(build_index(nodes, capacity=4))
        search.search_node(nodes[0], k=5)
        assert search.last_stats.verified_datasets <= len(nodes)


class TestLeafCapacitySweep:
    @pytest.mark.parametrize("capacity", [1, 2, 8, 64])
    def test_exactness_independent_of_capacity(self, capacity):
        nodes = random_nodes(40, seed=40)
        search = OverlapSearch(build_index(nodes, capacity=capacity))
        query = nodes[3]
        exact = brute_force_overlap(query, nodes, 6)
        fast = search.search_node(query, 6)
        fast_scores = (sorted(fast.scores, reverse=True) + [0.0] * 6)[:6]
        exact_scores = (sorted(exact.scores, reverse=True) + [0.0] * 6)[:6]
        assert fast_scores == exact_scores
