"""Tests for the CJSP baselines (SG and SG+DITS) and their agreement with CoverageSearch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch
from repro.search.coverage_baselines import StandardGreedy, StandardGreedyWithDITS

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def random_nodes(count: int, seed: int = 0, spread: int = 50) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (ox + int(rng.integers(0, 8)), oy + int(rng.integers(0, 8)))
            for _ in range(int(rng.integers(3, 10)))
        }
        nodes.append(node(f"ds-{i}", coords))
    return nodes


def build_methods(nodes):
    index = DITSLocalIndex(leaf_capacity=4)
    index.build(nodes)
    return {
        "CoverageSearch": CoverageSearch(index),
        "SG+DITS": StandardGreedyWithDITS(index),
        "SG": StandardGreedy(nodes),
    }


class TestValidation:
    def test_invalid_k_rejected(self):
        nodes = random_nodes(5, seed=1)
        for method in build_methods(nodes).values():
            with pytest.raises(InvalidParameterError):
                method.search_node(nodes[0], k=0, delta=1.0)

    def test_empty_index_for_sg_dits(self):
        index = DITSLocalIndex()
        index.build([])
        result = StandardGreedyWithDITS(index).search_node(node("q", {(0, 0)}), k=3, delta=1.0)
        assert len(result) == 0


class TestAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_all_methods_reach_same_coverage(self, seed):
        # The three methods implement the same greedy policy (ties aside), so
        # the achieved coverage must match.  CoverageSearch merges the result
        # set before the connectivity search, which can only widen the
        # candidate pool relative to SG, never shrink it.
        nodes = random_nodes(25, seed=seed)
        methods = build_methods(nodes)
        query = nodes[0]
        coverages = {
            name: method.search(CoverageQuery(query=query, k=4, delta=6.0)).total_coverage
            for name, method in methods.items()
        }
        assert coverages["SG"] == coverages["SG+DITS"]
        assert coverages["CoverageSearch"] >= coverages["SG"] - 2  # tie-breaking slack
        assert coverages["CoverageSearch"] <= max(coverages.values())

    @pytest.mark.parametrize("delta", [0.0, 2.0, 8.0])
    def test_sg_variants_choose_identical_sets(self, delta):
        nodes = random_nodes(20, seed=5)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes)
        query = nodes[0]
        plain = StandardGreedy(nodes).search_node(query, k=4, delta=delta)
        with_dits = StandardGreedyWithDITS(index).search_node(query, k=4, delta=delta)
        assert plain.total_coverage == with_dits.total_coverage
        assert plain.dataset_ids == with_dits.dataset_ids


class TestConnectivityOfBaselines:
    @pytest.mark.parametrize("method_name", ["SG", "SG+DITS", "CoverageSearch"])
    def test_results_connected_to_query(self, method_name):
        nodes = random_nodes(30, seed=6)
        methods = build_methods(nodes)
        query = nodes[0]
        result = methods[method_name].search_node(query, k=5, delta=4.0)
        chosen = [n for n in nodes if n.dataset_id in result.dataset_ids]
        assert satisfies_spatial_connectivity([query, *chosen], 4.0)

    def test_disconnected_corpus_yields_empty_result(self):
        cluster = [node(f"c{i}", {(i, 0)}) for i in range(4)]
        query = node("q", {(200, 200)})
        for method in build_methods(cluster).values():
            result = method.search_node(query, k=3, delta=1.0)
            assert len(result) == 0


class TestGreedySemantics:
    def test_first_pick_is_globally_best_connected_gain(self):
        query = node("q", {(10, 10)})
        small_near = node("small", {(11, 10), (12, 10)})
        big_near = node("big", {(10, 11), (10, 12), (10, 13), (10, 14)})
        big_far = node("far", {(100, 100), (101, 101), (102, 102), (103, 103), (104, 104)})
        corpus = [small_near, big_near, big_far]
        for name, method in build_methods(corpus).items():
            result = method.search_node(query, k=1, delta=1.5)
            assert result.dataset_ids == ["big"], name

    def test_chained_selection_reaches_indirectly_connected_data(self):
        # A chain: query - bridge - island.  With k=2 the greedy must be able
        # to pick the island through the bridge.
        query = node("q", {(0, 0)})
        bridge = node("bridge", {(1, 0)})
        island = node("island", {(2, 0), (2, 1), (3, 0), (3, 1)})
        for name, method in build_methods([bridge, island]).items():
            result = method.search_node(query, k=2, delta=1.0)
            assert set(result.dataset_ids) == {"bridge", "island"}, name
            assert result.total_coverage == 6, name
