"""Differential tests: incremental-greedy CJSP engines vs. the exhaustive originals.

PR 2 rewrote ``StandardGreedy``, ``StandardGreedyWithDITS`` and
``DataCenter._aggregate_coverage`` to carry connectivity and coverage state
across greedy rounds instead of rescanning from scratch.  The rewrites must
be *bit-identical* to the original per-round rescans — same selections, same
scores, same tie-breaks — so this module keeps reference re-implementations
of the original algorithms and compares them on randomized corpora under
both cell-set backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.connectivity import is_directly_connected
from repro.core.dataset import DatasetNode
from repro.core.distance import exact_node_distance
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageResult, ScoredDataset
from repro.distributed.center import DataCenter
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import find_connected_nodes
from repro.search.coverage_baselines import StandardGreedy, StandardGreedyWithDITS
from repro.utils import cellsets

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


@pytest.fixture(params=["vector", "frozenset"])
def backend(request):
    previous = cellsets.set_backend(request.param)
    yield request.param
    cellsets.set_backend(previous)


def random_nodes(count: int, seed: int, spread: int = 60) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (
                min(ox + int(rng.integers(0, 10)), 255),
                min(oy + int(rng.integers(0, 10)), 255),
            )
            for _ in range(int(rng.integers(3, 12)))
        }
        cells = {GRID.cell_id_from_coords(x, y) for x, y in coords}
        nodes.append(DatasetNode.from_cells(f"ds-{i:03d}", cells, GRID))
    return nodes


# ---------------------------------------------------------------------- #
# Reference implementations (the pre-PR-2 per-round rescans)
# ---------------------------------------------------------------------- #
def reference_standard_greedy(
    nodes: list[DatasetNode], query: DatasetNode, k: int, delta: float
) -> CoverageResult:
    result_nodes = [query]
    chosen_ids: set[str] = set()
    covered: set[int] = set(query.cells)
    entries: list[ScoredDataset] = []
    for _ in range(k):
        best_node = None
        best_gain = 0
        for candidate in nodes:
            if candidate.dataset_id in chosen_ids:
                continue
            if not any(
                exact_node_distance(candidate, member) <= delta
                for member in result_nodes
            ):
                continue
            gain = len(candidate.cells - covered)
            if gain > best_gain or (
                gain == best_gain
                and gain > 0
                and best_node is not None
                and candidate.dataset_id < best_node.dataset_id
            ):
                best_gain = gain
                best_node = candidate
        if best_node is None or best_gain == 0:
            break
        chosen_ids.add(best_node.dataset_id)
        covered |= best_node.cells
        result_nodes.append(best_node)
        entries.append(ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain)))
    return CoverageResult(
        entries=tuple(entries),
        total_coverage=len(covered),
        query_coverage=len(query.cells),
    )


def reference_sg_with_dits(
    index: DITSLocalIndex, query: DatasetNode, k: int, delta: float
) -> CoverageResult:
    result_nodes = [query]
    chosen_ids: set[str] = set()
    covered: set[int] = set(query.cells)
    entries: list[ScoredDataset] = []
    for _ in range(k):
        candidates: dict[str, DatasetNode] = {}
        for member in result_nodes:
            for candidate in find_connected_nodes(
                index.root, member, delta, exclude=chosen_ids
            ):
                candidates[candidate.dataset_id] = candidate
        best_node = None
        best_gain = 0
        for dataset_id in sorted(candidates):
            candidate = candidates[dataset_id]
            gain = len(candidate.cells - covered)
            if gain > best_gain:
                best_gain = gain
                best_node = candidate
        if best_node is None or best_gain == 0:
            break
        chosen_ids.add(best_node.dataset_id)
        covered |= best_node.cells
        result_nodes.append(best_node)
        entries.append(ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain)))
    return CoverageResult(
        entries=tuple(entries),
        total_coverage=len(covered),
        query_coverage=len(query.cells),
    )


def reference_aggregate_coverage(
    center: DataCenter,
    query: DatasetNode,
    k: int,
    delta: float,
    proposals: dict[str, tuple[str, frozenset[int]]],
) -> CoverageResult:
    candidate_nodes: dict[str, DatasetNode] = {}
    source_of: dict[str, str] = {}
    for dataset_id, (source_id, cells) in proposals.items():
        if not cells:
            continue
        candidate_nodes[dataset_id] = DatasetNode.from_cells(dataset_id, cells, center.grid)
        source_of[dataset_id] = source_id
    merged = query
    covered: set[int] = set(query.cells)
    entries: list[ScoredDataset] = []
    remaining = dict(candidate_nodes)
    for _ in range(k):
        best_id = None
        best_gain = 0
        for dataset_id in sorted(remaining):
            node = remaining[dataset_id]
            if not is_directly_connected(node, merged, delta):
                continue
            gain = len(node.cells - covered)
            if gain > best_gain:
                best_gain = gain
                best_id = dataset_id
        if best_id is None or best_gain == 0:
            break
        node = remaining.pop(best_id)
        covered |= node.cells
        merged = merged.merged_with(node, merged_id="__merged_query__")
        entries.append(
            ScoredDataset(dataset_id=best_id, score=float(best_gain), source_id=source_of[best_id])
        )
    return CoverageResult(
        entries=tuple(entries),
        total_coverage=len(covered),
        query_coverage=len(query.cells),
    )


def assert_identical(actual: CoverageResult, expected: CoverageResult) -> None:
    assert [
        (e.dataset_id, e.score, e.source_id) for e in actual.entries
    ] == [(e.dataset_id, e.score, e.source_id) for e in expected.entries]
    assert actual.total_coverage == expected.total_coverage
    assert actual.query_coverage == expected.query_coverage


# ---------------------------------------------------------------------- #
# Differential tests
# ---------------------------------------------------------------------- #
class TestStandardGreedyDifferential:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("delta", [0.0, 2.0, 6.0, 15.0])
    def test_matches_reference(self, backend, seed, delta):
        nodes = random_nodes(30, seed=seed)
        query = nodes[0]
        corpus = nodes[1:]
        actual = StandardGreedy(corpus).search_node(query, k=6, delta=delta)
        expected = reference_standard_greedy(corpus, query, k=6, delta=delta)
        assert_identical(actual, expected)

    def test_duplicate_gains_tiebreak(self, backend):
        # Clones with identical cells force gain ties every round; the
        # smallest dataset ID must win exactly as in the original.
        cells = {GRID.cell_id_from_coords(5, 5), GRID.cell_id_from_coords(6, 5)}
        clones = [DatasetNode.from_cells(f"clone-{c}", cells, GRID) for c in "cba"]
        query = DatasetNode.from_cells("q", {GRID.cell_id_from_coords(4, 5)}, GRID)
        actual = StandardGreedy(clones).search_node(query, k=3, delta=2.0)
        expected = reference_standard_greedy(clones, query, k=3, delta=2.0)
        assert_identical(actual, expected)
        assert [e.dataset_id for e in actual.entries] == ["clone-a"]


class TestSGWithDITSDifferential:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("delta", [0.0, 2.0, 6.0, 15.0])
    def test_matches_reference(self, backend, seed, delta):
        nodes = random_nodes(30, seed=seed + 100)
        query = nodes[0]
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes[1:])
        actual = StandardGreedyWithDITS(index).search_node(query, k=6, delta=delta)
        expected = reference_sg_with_dits(index, query, k=6, delta=delta)
        assert_identical(actual, expected)


class TestAggregateCoverageDifferential:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("delta", [0.0, 3.0, 8.0])
    def test_matches_reference(self, backend, seed, delta):
        rng = np.random.default_rng(seed + 500)
        nodes = random_nodes(24, seed=seed + 300)
        query = nodes[0]
        proposals = {
            node.dataset_id: (f"s{int(rng.integers(0, 3))}", frozenset(node.cells))
            for node in nodes[1:]
        }
        center = DataCenter(grid=GRID)
        actual = center._aggregate_coverage(query, 5, delta, proposals)
        expected = reference_aggregate_coverage(center, query, 5, delta, proposals)
        assert_identical(actual, expected)

    def test_empty_proposals(self, backend):
        query = random_nodes(1, seed=9)[0]
        center = DataCenter(grid=GRID)
        result = center._aggregate_coverage(query, 3, 2.0, {})
        assert result.entries == ()
        assert result.total_coverage == len(query.cells)
