"""Differential tests: batched distance paths vs the pairwise originals.

PR 4 rewired every exact-distance consumer (FindConnectSet leaf
verification, ConnectivityGraph frontiers, the SG baseline's round scans and
the data center's final aggregation) onto the batched
:class:`~repro.core.distance_engine.DistanceEngine` kernels.  These tests
pin the contract that the rewiring changed *no result*: each path is
compared against a pairwise re-implementation that never touches the engine,
on randomized corpora, under both cell-set backends, and independently of
the engine's cache state (a 1-entry cache must answer identically to the
default one).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.connectivity import ConnectivityGraph, connected_components
from repro.core.dataset import DatasetNode
from repro.core.distance import cell_set_distance, node_distance_bounds
from repro.core.distance_engine import DistanceEngine, set_engine
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch, find_connected_nodes
from repro.search.coverage_baselines import StandardGreedy
from repro.utils import cellsets

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


@pytest.fixture(params=["vector", "frozenset"])
def backend(request):
    previous = cellsets.set_backend(request.param)
    yield request.param
    cellsets.set_backend(previous)


@pytest.fixture
def fresh_engine():
    engine = DistanceEngine()
    previous = set_engine(engine)
    yield engine
    set_engine(previous)


def random_nodes(count: int, seed: int, spread: int = 220) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (
                min(ox + int(rng.integers(0, 14)), 255),
                min(oy + int(rng.integers(0, 14)), 255),
            )
            for _ in range(int(rng.integers(1, 18)))
        }
        cells = {GRID.cell_id_from_coords(x, y) for x, y in coords}
        nodes.append(DatasetNode.from_cells(f"ds-{i:03d}", cells, GRID))
    return nodes


def reference_find_connected(root, query, delta, exclude=None, known=()):
    """The pre-PR-4 per-entry FindConnectSet loop (pairwise exact distances)."""
    excluded = exclude or set()
    connected = []
    stack = [root]
    while stack:
        node = stack.pop()
        pivot_distance = node.pivot.distance_to(query.pivot)
        lower = max(pivot_distance - node.radius - query.radius, 0.0)
        upper = pivot_distance + node.radius + query.radius
        if upper <= delta:
            collect = [node]
            while collect:
                current = collect.pop()
                if current.is_leaf():
                    connected.extend(
                        e for e in current.entries if e.dataset_id not in excluded
                    )
                else:
                    collect.append(current.left)
                    collect.append(current.right)
            continue
        if lower > delta:
            continue
        if node.is_leaf():
            for entry in node.entries:
                if entry.dataset_id in excluded:
                    continue
                if entry.dataset_id in known:
                    connected.append(entry)
                    continue
                entry_lower, entry_upper = node_distance_bounds(entry, query)
                if entry_lower > delta:
                    continue
                if entry_upper <= delta:
                    connected.append(entry)
                    continue
                if cell_set_distance(entry.cells, query.cells) <= delta:
                    connected.append(entry)
        else:
            stack.append(node.left)
            stack.append(node.right)
    return connected


class TestFindConnectSetParity:
    @pytest.mark.parametrize("delta", [0.0, 1.0, 4.0, 12.0, 80.0])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_per_entry_reference_in_order(self, backend, delta, seed):
        nodes = random_nodes(60, seed=seed)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        query = nodes[0].merged_with(nodes[1], merged_id="__merged_query__")
        got = find_connected_nodes(index.root, query, delta)
        expected = reference_find_connected(index.root, query, delta)
        # Same datasets in the same traversal order, not merely the same set.
        assert [n.dataset_id for n in got] == [n.dataset_id for n in expected]

    def test_exclude_and_known_connected_respected(self, backend):
        nodes = random_nodes(40, seed=2)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        query = nodes[0]
        exclude = {nodes[1].dataset_id, nodes[2].dataset_id}
        known = {nodes[5].dataset_id}
        got = find_connected_nodes(
            index.root, query, 10.0, exclude=exclude, known_connected=known
        )
        expected = reference_find_connected(
            index.root, query, 10.0, exclude=exclude, known=known
        )
        assert [n.dataset_id for n in got] == [n.dataset_id for n in expected]

    def test_result_independent_of_cache_pressure(self, backend):
        nodes = random_nodes(50, seed=3)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        query = nodes[0]
        baseline = [n.dataset_id for n in find_connected_nodes(index.root, query, 9.0)]
        previous = set_engine(DistanceEngine(max_entries=1))
        try:
            thrashed = [
                n.dataset_id for n in find_connected_nodes(index.root, query, 9.0)
            ]
        finally:
            set_engine(previous)
        assert thrashed == baseline


class TestConnectivityGraphParity:
    @pytest.mark.parametrize("delta", [0.0, 2.0, 7.5, 40.0])
    def test_adjacency_matches_pairwise_predicate(self, fresh_engine, delta):
        nodes = random_nodes(35, seed=4)
        graph = ConnectivityGraph(delta)
        for node in nodes:
            graph.add_node(node)
        adjacency = graph.adjacency()
        for i, node_a in enumerate(nodes):
            for node_b in nodes[i + 1 :]:
                expected = cell_set_distance(node_a.cells, node_b.cells) <= delta
                assert (node_b.dataset_id in adjacency[node_a.dataset_id]) == expected
                assert (node_a.dataset_id in adjacency[node_b.dataset_id]) == expected

    def test_components_match_union_find_over_pairwise_edges(self, fresh_engine):
        delta = 5.0
        nodes = random_nodes(30, seed=5)
        got = connected_components(nodes, delta)
        # Reference: flood fill over the brute-force pairwise edge set.
        ids = [n.dataset_id for n in nodes]
        edges = {
            (a.dataset_id, b.dataset_id)
            for i, a in enumerate(nodes)
            for b in nodes[i + 1 :]
            if cell_set_distance(a.cells, b.cells) <= delta
        }
        remaining = set(ids)
        expected = []
        while remaining:
            seed_id = min(remaining)
            component = {seed_id}
            frontier = [seed_id]
            while frontier:
                current = frontier.pop()
                for a, b in edges:
                    neighbour = b if a == current else a if b == current else None
                    if neighbour is not None and neighbour in remaining - component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            expected.append(component)
            remaining -= component
        assert sorted(map(sorted, got)) == sorted(map(sorted, expected))


def reference_standard_greedy(nodes, query, k, delta):
    """The textbook per-round rescan with pairwise exact distances."""
    result_members = [query]
    chosen = set()
    covered = set(query.cells)
    picks = []
    for _ in range(k):
        best_node, best_gain = None, 0
        for candidate in nodes:
            if candidate.dataset_id in chosen:
                continue
            if not any(
                cell_set_distance(candidate.cells, member.cells) <= delta
                for member in result_members
            ):
                continue
            gain = len(candidate.cells - covered)
            if gain > best_gain or (
                gain == best_gain
                and gain > 0
                and best_node is not None
                and candidate.dataset_id < best_node.dataset_id
            ):
                best_gain, best_node = gain, candidate
        if best_node is None or best_gain == 0:
            break
        chosen.add(best_node.dataset_id)
        covered |= best_node.cells
        result_members.append(best_node)
        picks.append((best_node.dataset_id, float(best_gain)))
    return picks


class TestGreedyParity:
    def test_standard_greedy_rejects_negative_delta(self):
        nodes = random_nodes(3, seed=20)
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            StandardGreedy(nodes).search_node(nodes[0], k=1, delta=-1.0)

    @pytest.mark.parametrize("delta", [0.0, 3.0, 10.0])
    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_standard_greedy_matches_reference(self, backend, fresh_engine, k, delta):
        nodes = random_nodes(45, seed=6)
        query = random_nodes(1, seed=7)[0]
        result = StandardGreedy(nodes).search_node(query, k=k, delta=delta)
        expected = reference_standard_greedy(nodes, query, k, delta)
        assert [(e.dataset_id, e.score) for e in result.entries] == expected

    def test_coverage_search_stable_under_cache_thrash(self, backend):
        nodes = random_nodes(40, seed=8)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        query = random_nodes(1, seed=9)[0]
        search = CoverageSearch(index)
        baseline = search.search_node(query, k=5, delta=8.0)
        previous = set_engine(DistanceEngine(max_entries=1))
        try:
            thrashed = CoverageSearch(index).search_node(query, k=5, delta=8.0)
        finally:
            set_engine(previous)
        assert [(e.dataset_id, e.score) for e in thrashed.entries] == [
            (e.dataset_id, e.score) for e in baseline.entries
        ]
        assert thrashed.total_coverage == baseline.total_coverage

    def test_merged_query_never_served_stale(self, backend, fresh_engine):
        # CoverageSearch reuses the id "__merged_query__" for a node whose
        # cells grow every iteration; the identity-guarded cache must keep
        # each iteration's frontier exact.  Diagonal chain spaced 2*sqrt(2)
        # apart with delta 3: each pick unlocks the next dataset only through
        # the *new* merged geometry (the next-nearest link is 4*sqrt(2) > 3),
        # so any stale merged-node cache entry changes the result.
        step = 2
        nodes = [
            DatasetNode.from_cells(
                f"chain-{i}",
                {GRID.cell_id_from_coords(10 + step * i, 10 + step * i)},
                GRID,
            )
            for i in range(1, 8)
        ]
        index = DITSLocalIndex(leaf_capacity=2)
        index.build(nodes)
        query = DatasetNode.from_cells(
            "q", {GRID.cell_id_from_coords(10, 10)}, GRID
        )
        delta = 3.0
        assert math.hypot(step, step) < delta < math.hypot(2 * step, 2 * step)
        result = CoverageSearch(index).search_node(query, k=7, delta=delta)
        assert [e.dataset_id for e in result.entries] == [
            f"chain-{i}" for i in range(1, 8)
        ]
