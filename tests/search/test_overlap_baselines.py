"""Tests for the OJSP baseline algorithms (QuadTree, R-tree, STS3, Josie)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import OverlapQuery, brute_force_overlap
from repro.index.inverted import STS3Index
from repro.index.josie import JosieIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex
from repro.search.overlap_baselines import (
    BruteForceOverlap,
    JosieOverlap,
    QuadTreeOverlap,
    RTreeOverlap,
    STS3Overlap,
)

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def random_nodes(count: int, seed: int = 0) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, 200)), int(rng.integers(0, 200))
        cells = {
            GRID.cell_id_from_coords(ox + int(rng.integers(0, 20)), oy + int(rng.integers(0, 20)))
            for _ in range(int(rng.integers(3, 12)))
        }
        nodes.append(DatasetNode.from_cells(f"ds-{i}", cells, GRID))
    return nodes


def build_all_methods(nodes):
    quad = QuadTreeIndex()
    quad.build(nodes)
    rtree = RTreeIndex()
    rtree.build(nodes)
    sts3 = STS3Index()
    sts3.build(nodes)
    josie = JosieIndex()
    josie.build(nodes)
    return {
        "QuadTree": QuadTreeOverlap(quad),
        "Rtree": RTreeOverlap(rtree),
        "STS3": STS3Overlap(sts3),
        "Josie": JosieOverlap(josie),
        "BruteForce": BruteForceOverlap(nodes),
    }


class TestAllBaselinesAgree:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 5])
    def test_positive_scores_match_brute_force(self, seed, k):
        nodes = random_nodes(50, seed=seed)
        methods = build_all_methods(nodes)
        for query in nodes[:5]:
            truth = brute_force_overlap(query, nodes, k)
            truth_positive = [score for score in truth.scores if score > 0]
            for name, method in methods.items():
                result = method.search(OverlapQuery(query=query, k=k))
                got_positive = [score for score in result.scores if score > 0]
                assert got_positive == truth_positive, name

    def test_all_respect_k(self):
        nodes = random_nodes(30, seed=4)
        methods = build_all_methods(nodes)
        for name, method in methods.items():
            result = method.search_node(nodes[0], 3)
            assert len(result) <= 3, name

    def test_results_sorted_descending(self):
        nodes = random_nodes(30, seed=5)
        methods = build_all_methods(nodes)
        for name, method in methods.items():
            result = method.search_node(nodes[1], 6)
            assert result.scores == sorted(result.scores, reverse=True), name


class TestQuadTreeOverlapSpecifics:
    def test_counts_each_cell_once(self):
        # Two datasets share two cells; the quadtree stores one occurrence per
        # (cell, dataset) pair and must not double-count.
        a = DatasetNode.from_cells("a", {GRID.cell_id_from_coords(0, 0), GRID.cell_id_from_coords(1, 1)}, GRID)
        b = DatasetNode.from_cells("b", {GRID.cell_id_from_coords(0, 0), GRID.cell_id_from_coords(1, 1)}, GRID)
        quad = QuadTreeIndex()
        quad.build([a, b])
        result = QuadTreeOverlap(quad).search_node(a, 2)
        assert result.scores == [2.0, 2.0]


class TestRTreeOverlapSpecifics:
    def test_mbr_intersection_not_sufficient_for_score(self):
        # The R-tree returns MBR-intersecting candidates; datasets whose MBR
        # intersects but whose cells do not overlap must score zero.
        a = DatasetNode.from_cells(
            "a", {GRID.cell_id_from_coords(0, 0), GRID.cell_id_from_coords(10, 10)}, GRID
        )
        b = DatasetNode.from_cells(
            "b", {GRID.cell_id_from_coords(0, 10), GRID.cell_id_from_coords(10, 0)}, GRID
        )
        rtree = RTreeIndex()
        rtree.build([a, b])
        result = RTreeOverlap(rtree).search_node(a, 2)
        scores = dict(zip(result.dataset_ids, result.scores))
        assert scores["a"] == 2.0
        assert scores.get("b", 0.0) == 0.0


class TestSTS3OverlapSpecifics:
    def test_only_positive_overlaps_returned(self):
        nodes = random_nodes(20, seed=6)
        sts3 = STS3Index()
        sts3.build(nodes)
        query = nodes[0]
        result = STS3Overlap(sts3).search_node(query, 20)
        assert all(score > 0 for score in result.scores)


class TestJosieOverlapSpecifics:
    def test_prefix_filter_does_not_lose_results(self):
        nodes = random_nodes(80, seed=7)
        josie = JosieIndex()
        josie.build(nodes)
        method = JosieOverlap(josie)
        for query in nodes[:10]:
            truth = brute_force_overlap(query, nodes, 5)
            got = method.search_node(query, 5)
            truth_positive = [s for s in truth.scores if s > 0]
            got_positive = [s for s in got.scores if s > 0]
            assert got_positive == truth_positive
