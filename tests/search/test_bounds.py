"""Tests for the leaf-level intersection bounds (Lemmas 2 and 3)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import LeafNode
from repro.search.bounds import leaf_intersection_bounds, leaf_lower_bound, leaf_upper_bound

GRID = Grid(theta=6, space=BoundingBox(0, 0, 64, 64))


def node(name: str, cells: set[int]) -> DatasetNode:
    return DatasetNode.from_cells(name, cells, GRID)


def make_leaf(entries: list[DatasetNode]) -> LeafNode:
    rect = BoundingBox.union_of(entry.rect for entry in entries)
    return LeafNode(rect, entries, capacity=len(entries))


class TestPaperExample:
    def test_fig5_bounds(self):
        # Fig. 5: a leaf with two datasets; the query shares cell 9 with both
        # and cell 3 with neither key of the inverted index beyond 9... build
        # an equivalent scenario: posting list of the shared cell is full, so
        # LB = 1; the query matches exactly one key, so UB = 1.
        d1 = node("d1", {9, 11, 13})
        d2 = node("d2", {9, 7, 12})
        leaf = make_leaf([d1, d2])
        query_cells = frozenset({9, 3})
        lower, upper = leaf_intersection_bounds(leaf, query_cells)
        assert upper == 1
        assert lower == 1


class TestBoundsSemantics:
    def test_upper_counts_query_cells_in_any_posting(self):
        leaf = make_leaf([node("a", {1, 2}), node("b", {2, 3})])
        assert leaf_upper_bound(leaf, {1, 2, 3, 4}) == 3

    def test_lower_counts_cells_shared_by_all_entries(self):
        leaf = make_leaf([node("a", {1, 2, 5}), node("b", {2, 3, 5})])
        assert leaf_lower_bound(leaf, {1, 2, 3, 5}) == 2  # cells 2 and 5

    def test_disjoint_query_gives_zero_bounds(self):
        leaf = make_leaf([node("a", {1, 2})])
        assert leaf_intersection_bounds(leaf, {40, 41}) == (0, 0)

    def test_single_entry_leaf_has_equal_bounds(self):
        leaf = make_leaf([node("a", {1, 2, 3})])
        lower, upper = leaf_intersection_bounds(leaf, {2, 3, 9})
        assert lower == upper == 2

    def test_combined_matches_individual_helpers(self):
        leaf = make_leaf([node("a", {1, 2, 8}), node("b", {2, 8, 9})])
        query = frozenset({2, 8, 9, 30})
        lower, upper = leaf_intersection_bounds(leaf, query)
        assert lower == leaf_lower_bound(leaf, query)
        assert upper == leaf_upper_bound(leaf, query)


class TestBoundCorrectnessProperty:
    cells_strategy = st.sets(st.integers(min_value=0, max_value=300), min_size=1, max_size=30)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(cells_strategy, min_size=1, max_size=6), cells_strategy)
    def test_bounds_sandwich_every_entry_overlap(self, entry_cells, query_cells):
        entries = [node(f"d{i}", cells) for i, cells in enumerate(entry_cells)]
        leaf = make_leaf(entries)
        query = frozenset(query_cells)
        lower, upper = leaf_intersection_bounds(leaf, query)
        overlaps = [len(entry.cells & query) for entry in entries]
        # Lemma 2: no entry can overlap the query on more cells than UB.
        assert max(overlaps) <= upper
        # Lemma 3: every entry overlaps the query on at least LB cells.
        assert min(overlaps) >= lower

    @settings(max_examples=40, deadline=None)
    @given(st.lists(cells_strategy, min_size=1, max_size=5), cells_strategy)
    def test_upper_bound_never_exceeds_query_size(self, entry_cells, query_cells):
        entries = [node(f"d{i}", cells) for i, cells in enumerate(entry_cells)]
        leaf = make_leaf(entries)
        _, upper = leaf_intersection_bounds(leaf, frozenset(query_cells))
        assert upper <= len(query_cells)


class TestRandomisedAgainstDITSLeaves:
    def test_bounds_hold_on_real_index_leaves(self):
        rng = np.random.default_rng(5)
        nodes = []
        for i in range(40):
            ox, oy = int(rng.integers(0, 50)), int(rng.integers(0, 50))
            cells = {
                GRID.cell_id_from_coords(ox + int(rng.integers(0, 10)), oy + int(rng.integers(0, 10)))
                for _ in range(8)
            }
            nodes.append(node(f"ds-{i}", cells))
        from repro.index.dits import DITSLocalIndex

        index = DITSLocalIndex(leaf_capacity=5)
        index.build(nodes)
        query = nodes[0]
        for leaf in index.leaves():
            lower, upper = leaf_intersection_bounds(leaf, query.cells)
            overlaps = [len(entry.cells & query.cells) for entry in leaf.entries]
            assert min(overlaps) >= lower
            assert max(overlaps) <= upper
