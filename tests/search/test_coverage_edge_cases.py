"""Edge-case tests for CoverageSearch and the connectivity machinery.

These complement the randomized tests with hand-built topologies where the
connectivity constraint actually bites: chains that must be followed link by
link, hubs, rings, and candidates that are large but unreachable.
"""

from __future__ import annotations

import pytest

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch
from repro.search.coverage_baselines import StandardGreedy

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def coverage_search(nodes: list[DatasetNode], capacity: int = 3) -> CoverageSearch:
    index = DITSLocalIndex(leaf_capacity=capacity)
    index.build(nodes)
    return CoverageSearch(index)


class TestChainTopologies:
    def test_long_chain_followed_link_by_link(self):
        # query - c0 - c1 - c2 - c3, each one cell apart; k=4 must pick all.
        query = node("q", {(0, 0)})
        chain = [node(f"c{i}", {(i + 1, 0)}) for i in range(4)]
        result = coverage_search(chain).search_node(query, k=4, delta=1.0)
        assert set(result.dataset_ids) == {"c0", "c1", "c2", "c3"}
        assert result.total_coverage == 5

    def test_chain_blocked_by_small_k(self):
        # With k=2 only the first two links are reachable *and* selectable.
        query = node("q", {(0, 0)})
        chain = [node(f"c{i}", {(i + 1, 0)}) for i in range(4)]
        result = coverage_search(chain).search_node(query, k=2, delta=1.0)
        chosen = [n for n in chain if n.dataset_id in result.dataset_ids]
        assert satisfies_spatial_connectivity([query, *chosen], 1.0)
        assert len(result) == 2

    def test_broken_chain_stops_selection(self):
        query = node("q", {(0, 0)})
        reachable = node("near", {(1, 0)})
        unreachable = node("far", {(10, 0), (11, 0), (12, 0)})
        result = coverage_search([reachable, unreachable]).search_node(query, k=3, delta=1.0)
        assert result.dataset_ids == ["near"]


class TestHubAndRing:
    def test_hub_unlocks_spokes(self):
        query = node("q", {(10, 10)})
        hub = node("hub", {(11, 10), (12, 10), (13, 10)})
        spokes = [node(f"s{i}", {(14, 10 + i), (15, 10 + i)}) for i in range(-1, 2)]
        result = coverage_search([hub, *spokes]).search_node(query, k=4, delta=1.5)
        assert "hub" in result.dataset_ids
        assert len(result) == 4

    def test_ring_reachable_from_any_entry(self):
        query = node("q", {(50, 50)})
        ring = [
            node("r0", {(51, 50)}),
            node("r1", {(52, 50)}),
            node("r2", {(52, 51)}),
            node("r3", {(51, 51)}),
        ]
        result = coverage_search(ring).search_node(query, k=4, delta=1.0)
        assert set(result.dataset_ids) == {"r0", "r1", "r2", "r3"}


class TestDegenerateInputs:
    def test_query_equals_entire_corpus_coverage(self):
        # Every candidate is a subset of the query: no positive marginal gain.
        query = node("q", {(0, 0), (1, 1), (2, 2)})
        subsets = [node("s1", {(0, 0)}), node("s2", {(1, 1), (2, 2)})]
        result = coverage_search(subsets).search_node(query, k=2, delta=5.0)
        assert len(result) == 0
        assert result.total_coverage == 3

    def test_zero_delta_requires_overlap(self):
        query = node("q", {(5, 5)})
        touching = node("touch", {(5, 5), (6, 6)})
        adjacent = node("adj", {(6, 5)})
        result = coverage_search([touching, adjacent]).search_node(query, k=2, delta=0.0)
        assert result.dataset_ids == ["touch"]

    def test_duplicate_candidates_only_counted_once(self):
        query = node("q", {(0, 0)})
        twins = [node(f"twin{i}", {(1, 0), (2, 0)}) for i in range(5)]
        result = coverage_search(twins).search_node(query, k=5, delta=1.0)
        # After the first twin every other adds zero gain, so only one is kept.
        assert len(result) == 1
        assert result.total_coverage == 3

    def test_k_of_one_takes_best_gain_even_if_smaller_dataset(self):
        # A small dataset adding all-new cells beats a big dataset that mostly
        # repeats the query.
        query = node("q", {(0, 0), (1, 0), (2, 0), (3, 0)})
        repetitive = node("rep", {(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)})
        fresh = node("fresh", {(0, 1), (1, 1), (2, 1)})
        result = coverage_search([repetitive, fresh]).search_node(query, k=1, delta=1.0)
        assert result.dataset_ids == ["fresh"]
        assert result.entries[0].score == 3.0


class TestAgainstStandardGreedyOnTopologies:
    @pytest.mark.parametrize(
        "delta,k",
        [(1.0, 2), (1.0, 4), (2.0, 3), (5.0, 5)],
    )
    def test_same_total_coverage_as_plain_greedy(self, delta, k):
        query = node("q", {(20, 20)})
        corpus = [
            node("a", {(21, 20), (22, 20)}),
            node("b", {(23, 20), (23, 21), (23, 22)}),
            node("c", {(25, 22), (26, 22)}),
            node("d", {(40, 40), (41, 41)}),
            node("e", {(21, 21), (21, 22), (21, 23), (21, 24)}),
        ]
        fast = coverage_search(corpus).search(CoverageQuery(query=query, k=k, delta=delta))
        plain = StandardGreedy(corpus).search(CoverageQuery(query=query, k=k, delta=delta))
        assert fast.total_coverage == plain.total_coverage
