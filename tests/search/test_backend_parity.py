"""Backend parity: vectorized and frozenset cell-set engines must agree.

The ``vector`` backend (sorted-array merge kernels) is a pure speed refactor
of the ``frozenset`` reference backend — every search result must be
bit-for-bit identical between the two on the same federation.  These tests
run randomized federations through OverlapSearch and CoverageSearch under
both backends and require identical results, including tie ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch
from repro.search.overlap import OverlapSearch
from repro.utils import cellsets

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


@pytest.fixture
def restore_backend():
    previous = cellsets.get_backend()
    yield
    cellsets.set_backend(previous)


def random_federation(
    count: int, seed: int, spread: int = 200, cluster: int = 25
) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (ox + int(rng.integers(0, cluster)), oy + int(rng.integers(0, cluster)))
            for _ in range(int(rng.integers(3, 30)))
        }
        cells = {GRID.cell_id_from_coords(x, y) for x, y in coords}
        nodes.append(DatasetNode.from_cells(f"ds-{i}", cells, GRID))
    return nodes


def overlap_results(nodes, queries, k, capacity):
    index = DITSLocalIndex(leaf_capacity=capacity)
    index.build(nodes)
    search = OverlapSearch(index)
    return [
        [(e.dataset_id, e.score) for e in search.search_node(query, k).entries]
        for query in queries
    ]


def coverage_results(nodes, queries, k, delta, capacity):
    index = DITSLocalIndex(leaf_capacity=capacity)
    index.build(nodes)
    search = CoverageSearch(index)
    out = []
    for query in queries:
        result = search.search_node(query, k, delta)
        out.append(
            (
                [(e.dataset_id, e.score) for e in result.entries],
                result.total_coverage,
                result.query_coverage,
            )
        )
    return out


class TestOverlapParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_identical_results_across_backends(self, restore_backend, seed, k):
        nodes = random_federation(50, seed=seed)
        queries = nodes[:6] + random_federation(3, seed=seed + 1000)
        cellsets.set_backend("vector")
        vector = overlap_results(nodes, queries, k, capacity=5)
        cellsets.set_backend("frozenset")
        reference = overlap_results(nodes, queries, k, capacity=5)
        assert vector == reference

    def test_parity_across_leaf_capacities(self, restore_backend):
        nodes = random_federation(64, seed=9)
        queries = nodes[:4]
        for capacity in (2, 8, 32, 100):
            cellsets.set_backend("vector")
            vector = overlap_results(nodes, queries, 5, capacity)
            cellsets.set_backend("frozenset")
            reference = overlap_results(nodes, queries, 5, capacity)
            assert vector == reference, capacity


class TestCoverageParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("delta", [0.0, 5.0, 50.0])
    def test_identical_results_across_backends(self, restore_backend, seed, delta):
        nodes = random_federation(40, seed=seed)
        queries = nodes[:4]
        cellsets.set_backend("vector")
        vector = coverage_results(nodes, queries, 5, delta, capacity=4)
        cellsets.set_backend("frozenset")
        reference = coverage_results(nodes, queries, 5, delta, capacity=4)
        assert vector == reference

    def test_parity_with_large_k(self, restore_backend):
        nodes = random_federation(30, seed=77)
        query = nodes[0]
        cellsets.set_backend("vector")
        vector = coverage_results(nodes, [query], 30, 20.0, capacity=6)
        cellsets.set_backend("frozenset")
        reference = coverage_results(nodes, [query], 30, 20.0, capacity=6)
        assert vector == reference


class TestNodeOverlapParity:
    def test_overlap_with_matches_across_backends(self, restore_backend):
        nodes = random_federation(20, seed=5)
        cellsets.set_backend("vector")
        vector = [
            [a.overlap_with(b) for b in nodes] for a in nodes[:5]
        ]
        cellsets.set_backend("frozenset")
        reference = [
            [a.overlap_with(b) for b in nodes] for a in nodes[:5]
        ]
        assert vector == reference
        # And both equal the raw frozenset intersection.
        assert vector[0] == [len(nodes[0].cells & b.cells) for b in nodes]
