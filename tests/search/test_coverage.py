"""Tests for CoverageSearch (Algorithm 3): connectivity, gains and approximation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery, brute_force_coverage, coverage_of
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch, find_connected_nodes

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def random_nodes(count: int, seed: int = 0, spread: int = 60) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (ox + int(rng.integers(0, 8)), oy + int(rng.integers(0, 8)))
            for _ in range(int(rng.integers(3, 10)))
        }
        nodes.append(node(f"ds-{i}", coords))
    return nodes


def build_index(nodes, capacity: int = 4) -> DITSLocalIndex:
    index = DITSLocalIndex(leaf_capacity=capacity)
    index.build(nodes)
    return index


class TestFindConnectSet:
    def test_finds_exactly_the_connected_datasets(self):
        nodes = random_nodes(40, seed=1)
        index = build_index(nodes)
        query = nodes[0]
        for delta in (0.0, 2.0, 5.0, 15.0):
            found = {n.dataset_id for n in find_connected_nodes(index.root, query, delta)}
            from repro.core.distance import exact_node_distance

            expected = {
                n.dataset_id for n in nodes if exact_node_distance(n, query) <= delta
            }
            assert found == expected, delta

    def test_exclusion_respected(self):
        nodes = random_nodes(20, seed=2)
        index = build_index(nodes)
        query = nodes[0]
        found = find_connected_nodes(index.root, query, 50.0, exclude={"ds-1", "ds-2"})
        ids = {n.dataset_id for n in found}
        assert "ds-1" not in ids and "ds-2" not in ids

    def test_negative_delta_rejected(self):
        nodes = random_nodes(5, seed=3)
        index = build_index(nodes, capacity=2)
        with pytest.raises(InvalidParameterError):
            find_connected_nodes(index.root, nodes[0], -1.0)

    def test_stats_counters_move(self):
        from repro.search.coverage import CoverageSearchStats

        nodes = random_nodes(50, seed=4)
        index = build_index(nodes)
        stats = CoverageSearchStats()
        find_connected_nodes(index.root, nodes[0], 3.0, stats=stats)
        assert stats.subtree_accepts + stats.subtree_rejects + stats.exact_distance_checks > 0


class TestCoverageSearchBasics:
    def test_empty_index(self):
        index = DITSLocalIndex()
        index.build([])
        result = CoverageSearch(index).search_node(node("q", {(0, 0)}), k=3, delta=1.0)
        assert len(result) == 0
        assert result.total_coverage == 1

    def test_invalid_k_rejected(self):
        index = build_index(random_nodes(5, seed=5), capacity=2)
        with pytest.raises(InvalidParameterError):
            CoverageSearch(index).search_node(node("q", {(0, 0)}), k=0, delta=1.0)

    def test_result_size_at_most_k(self):
        nodes = random_nodes(30, seed=6)
        search = CoverageSearch(build_index(nodes))
        result = search.search(CoverageQuery(query=nodes[0], k=4, delta=10.0))
        assert len(result) <= 4

    def test_total_coverage_consistent_with_selection(self):
        nodes = random_nodes(30, seed=7)
        search = CoverageSearch(build_index(nodes))
        query = nodes[0]
        result = search.search_node(query, k=5, delta=10.0)
        chosen = [n for n in nodes if n.dataset_id in result.dataset_ids]
        assert result.total_coverage == coverage_of(query, chosen)
        assert result.query_coverage == len(query.cells)

    def test_marginal_gains_positive_and_recorded_in_order(self):
        nodes = random_nodes(30, seed=8)
        search = CoverageSearch(build_index(nodes))
        result = search.search_node(nodes[0], k=5, delta=15.0)
        assert all(entry.score > 0 for entry in result)
        # Gains must sum to the coverage added beyond the query.
        assert sum(entry.score for entry in result) == result.gain_over_query

    def test_no_connected_candidates_returns_empty_selection(self):
        cluster = [node(f"c{i}", {(i, 0)}) for i in range(5)]
        search = CoverageSearch(build_index(cluster, capacity=2))
        faraway = node("q", {(200, 200)})
        result = search.search_node(faraway, k=3, delta=1.0)
        assert len(result) == 0
        assert result.total_coverage == 1

    def test_query_itself_not_required_in_index(self):
        nodes = random_nodes(20, seed=9)
        search = CoverageSearch(build_index(nodes))
        external = node("external", {(10, 10), (11, 11), (12, 12)})
        result = search.search_node(external, k=3, delta=8.0)
        assert result.query_coverage == 3


class TestConnectivityInvariant:
    @pytest.mark.parametrize("delta", [0.0, 1.0, 3.0, 8.0])
    def test_selection_always_connected_to_query(self, delta):
        nodes = random_nodes(40, seed=10)
        search = CoverageSearch(build_index(nodes))
        query = nodes[0]
        result = search.search_node(query, k=6, delta=delta)
        chosen = [n for n in nodes if n.dataset_id in result.dataset_ids]
        assert satisfies_spatial_connectivity([query, *chosen], delta)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=5, max_value=30),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.0, max_value=10.0),
        st.integers(min_value=0, max_value=5_000),
    )
    def test_connectivity_property(self, count, k, delta, seed):
        nodes = random_nodes(count, seed=seed, spread=40)
        search = CoverageSearch(build_index(nodes))
        query = nodes[0]
        result = search.search_node(query, k=k, delta=delta)
        chosen = [n for n in nodes if n.dataset_id in result.dataset_ids]
        assert len(chosen) == len(result)
        assert satisfies_spatial_connectivity([query, *chosen], delta)


class TestGreedyQuality:
    def test_never_worse_than_best_single_dataset(self):
        nodes = random_nodes(25, seed=11)
        search = CoverageSearch(build_index(nodes))
        query = nodes[0]
        result = search.search_node(query, k=3, delta=10.0)
        single_best = brute_force_coverage(query, nodes, k=1, delta=10.0)
        assert result.total_coverage >= single_best.total_coverage

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=2_000))
    def test_greedy_achieves_at_least_1_minus_1_over_e_of_optimum(self, count, seed):
        # Small instances where the optimum is enumerable.  The classic
        # (1 - 1/e) bound applies to the coverage *gain* over the query under
        # the paper's connectivity assumption; we check it against the
        # brute-force optimum on densely connected instances (large delta so
        # connectivity never blocks the optimum).
        nodes = random_nodes(count, seed=seed, spread=20)
        k = 3
        delta = 50.0
        query = nodes[0]
        search = CoverageSearch(build_index(nodes, capacity=3))
        greedy = search.search_node(query, k=k, delta=delta)
        optimum = brute_force_coverage(query, nodes, k=k, delta=delta)
        greedy_gain = greedy.total_coverage - len(query.cells)
        optimal_gain = optimum.total_coverage - len(query.cells)
        if optimal_gain == 0:
            assert greedy_gain == 0
        else:
            assert greedy_gain >= (1 - 1 / np.e) * optimal_gain - 1e-9

    def test_increasing_k_never_decreases_coverage(self):
        nodes = random_nodes(30, seed=12)
        search = CoverageSearch(build_index(nodes))
        query = nodes[0]
        coverages = [
            search.search_node(query, k=k, delta=10.0).total_coverage for k in (1, 2, 4, 8)
        ]
        assert coverages == sorted(coverages)

    def test_increasing_delta_never_decreases_coverage(self):
        nodes = random_nodes(30, seed=13)
        search = CoverageSearch(build_index(nodes))
        query = nodes[0]
        coverages = [
            search.search_node(query, k=4, delta=delta).total_coverage
            for delta in (0.0, 2.0, 5.0, 20.0)
        ]
        assert coverages == sorted(coverages)


class TestStats:
    def test_stats_populated_after_search(self):
        nodes = random_nodes(40, seed=14)
        search = CoverageSearch(build_index(nodes))
        search.search_node(nodes[0], k=4, delta=5.0)
        stats = search.last_stats
        assert stats.iterations >= 1
        assert stats.gain_evaluations + stats.gain_skips >= 0
