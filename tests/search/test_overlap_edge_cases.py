"""Edge-case and adversarial-shape tests for OverlapSearch.

The randomized exactness tests in ``test_overlap.py`` cover typical corpora;
these tests construct deliberately awkward shapes — heavy duplication, nested
MBRs, single-cell datasets, long thin routes crossing many leaves — where
pruning logic is most likely to over-prune.
"""

from __future__ import annotations

import pytest

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import brute_force_overlap
from repro.index.dits import DITSLocalIndex
from repro.search.overlap import OverlapSearch

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def search_over(nodes: list[DatasetNode], capacity: int = 3) -> OverlapSearch:
    index = DITSLocalIndex(leaf_capacity=capacity)
    index.build(nodes)
    return OverlapSearch(index)


def assert_exact(nodes: list[DatasetNode], query: DatasetNode, k: int, capacity: int = 3) -> None:
    fast = search_over(nodes, capacity).search_node(query, k)
    exact = brute_force_overlap(query, nodes, k)
    fast_scores = (sorted(fast.scores, reverse=True) + [0.0] * k)[:k]
    exact_scores = (sorted(exact.scores, reverse=True) + [0.0] * k)[:k]
    assert fast_scores == exact_scores


class TestDuplicateHeavyCorpora:
    def test_all_datasets_identical(self):
        nodes = [node(f"d{i}", {(5, 5), (6, 6), (7, 7)}) for i in range(12)]
        assert_exact(nodes, nodes[0], k=5)

    def test_many_ties_at_the_kth_position(self):
        query = node("q", {(0, 0), (1, 1), (2, 2), (3, 3)})
        nodes = [node(f"tie{i}", {(0, 0), (1, 1)}) for i in range(8)]
        nodes.append(node("best", {(0, 0), (1, 1), (2, 2), (3, 3)}))
        result = search_over(nodes).search_node(query, 3)
        assert result.scores[0] == 4.0
        assert result.scores[1] == result.scores[2] == 2.0

    def test_single_cell_datasets(self):
        nodes = [node(f"cell{i}", {(i, i)}) for i in range(20)]
        query = node("q", {(4, 4), (5, 5), (6, 6)})
        assert_exact(nodes, query, k=4)


class TestGeometricShapes:
    def test_nested_mbrs(self):
        # A big dataset whose MBR contains everything, plus small datasets
        # inside it; MBR pruning must not hide the small ones.
        big = node("big", {(0, 0), (100, 100)})
        smalls = [node(f"small{i}", {(10 * i, 10 * i), (10 * i + 1, 10 * i)}) for i in range(1, 9)]
        query = node("q", {(40, 40), (41, 40), (50, 50)})
        assert_exact([big, *smalls], query, k=3)

    def test_long_thin_route_crossing_many_leaves(self):
        route = node("route", {(i, 128) for i in range(0, 200, 2)})
        blocks = [
            node(f"block{i}", {(i * 20 + dx, 128 + dy) for dx in range(3) for dy in range(3)})
            for i in range(10)
        ]
        assert_exact([route, *blocks], route, k=5, capacity=2)

    def test_query_far_outside_corpus(self):
        nodes = [node(f"d{i}", {(i, i), (i + 1, i)}) for i in range(10)]
        query = node("q", {(250, 250), (251, 251)})
        result = search_over(nodes).search_node(query, 3)
        assert all(score == 0.0 for score in result.scores)

    def test_query_covering_entire_space(self):
        nodes = [node(f"d{i}", {(i * 10, i * 10)}) for i in range(10)]
        query = node("q", {(x, y) for x in range(0, 100, 5) for y in range(0, 100, 5)})
        assert_exact(nodes, query, k=10)


class TestParameterEdges:
    def test_k_equals_one(self):
        nodes = [node(f"d{i}", {(i, 0), (i, 1)}) for i in range(15)]
        query = node("q", {(7, 0), (7, 1), (8, 0)})
        result = search_over(nodes).search_node(query, 1)
        assert len(result) == 1
        assert result.scores[0] == 2.0

    def test_capacity_one_tree(self):
        nodes = [node(f"d{i}", {(i, i), (i, i + 1)}) for i in range(9)]
        assert_exact(nodes, nodes[4], k=3, capacity=1)

    def test_capacity_larger_than_corpus(self):
        nodes = [node(f"d{i}", {(i, i)}) for i in range(5)]
        assert_exact(nodes, nodes[0], k=2, capacity=100)

    @pytest.mark.parametrize("k", [1, 2, 5, 20])
    def test_various_k_on_clustered_corpus(self, k):
        cluster_a = [node(f"a{i}", {(i, 0), (i, 1), (i, 2)}) for i in range(10)]
        cluster_b = [node(f"b{i}", {(100 + i, 100), (100 + i, 101)}) for i in range(10)]
        query = node("q", {(3, 0), (3, 1), (4, 0), (100, 100)})
        assert_exact(cluster_a + cluster_b, query, k=k)
