"""End-to-end pipeline test: generate → persist → load → index → search.

This mirrors how a user would actually adopt the library: materialise (or
download) corpora to disk, load each directory as a data source, and run both
joinable searches through the multi-source framework — with results validated
against the brute-force reference over the union of all sources.
"""

from __future__ import annotations

import pytest

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.problems import brute_force_overlap
from repro.data.loaders import load_source_csv, save_source_csv
from repro.data.sources import build_source_datasets
from repro.distributed.framework import MultiSourceFramework


@pytest.fixture(scope="module")
def corpus_dirs(tmp_path_factory):
    """Two on-disk corpora written as CSV directories."""
    root = tmp_path_factory.mktemp("portals")
    layout = {}
    for profile, scale in (("Transit", 0.01), ("Baidu", 0.005)):
        datasets = build_source_datasets(profile, scale=scale, seed=13)
        directory = root / profile.lower()
        save_source_csv(datasets, directory)
        layout[profile] = directory
    return layout


@pytest.fixture(scope="module")
def framework(corpus_dirs) -> MultiSourceFramework:
    fw = MultiSourceFramework(theta=12, leaf_capacity=8)
    for profile, directory in corpus_dirs.items():
        fw.add_source(profile, load_source_csv(directory))
    return fw


class TestPipeline:
    def test_sources_loaded_from_disk(self, framework, corpus_dirs):
        counts = framework.dataset_counts()
        for profile, directory in corpus_dirs.items():
            assert counts[profile] == len(list(directory.glob("*.csv")))

    def test_overlap_matches_brute_force_over_union(self, framework):
        all_nodes = []
        for source_id in framework.source_ids():
            all_nodes.extend(framework.center.source(source_id).index.nodes())
        query = all_nodes[0]
        fast = framework.overlap_search(query, k=5)
        exact = brute_force_overlap(query, all_nodes, k=5)
        assert [s for s in fast.scores if s > 0] == [s for s in exact.scores if s > 0]

    def test_coverage_is_connected_and_grows(self, framework):
        source = framework.center.source("Transit")
        query = next(iter(source.index.nodes()))
        result = framework.coverage_search(query, k=4, delta=10.0)
        chosen = [
            framework.center.source(entry.source_id).index.get(entry.dataset_id)
            for entry in result
        ]
        assert satisfies_spatial_connectivity([query, *chosen], delta=10.0)
        assert result.total_coverage >= result.query_coverage

    def test_communication_was_accounted(self, framework):
        stats = framework.communication_stats()
        assert stats.messages_sent > 0
        assert stats.total_bytes > 0
        assert framework.transmission_time_ms() > 0.0
