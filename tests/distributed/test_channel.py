"""Tests for the simulated communication channel and message types."""

from __future__ import annotations

import pytest

from repro.distributed.channel import SimulatedChannel
from repro.distributed.messages import (
    CoverageRequest,
    CoverageResponse,
    OverlapRequest,
    OverlapResponse,
    RootUpload,
)
from repro.utils.sizeof import encoded_size


class TestChannelValidation:
    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            SimulatedChannel(bandwidth_bytes_per_second=0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            SimulatedChannel(latency_ms=-1)


class TestTrafficAccounting:
    def test_send_counts_bytes_and_messages(self):
        channel = SimulatedChannel()
        request = OverlapRequest(query_id="q", cells=(1, 2, 3), query_rect=(0, 0, 1, 1), k=5)
        size = channel.send(request, destination="s1")
        assert size == encoded_size(request)
        assert channel.stats.messages_sent == 1
        assert channel.stats.bytes_to_sources == size
        assert channel.stats.bytes_to_center == 0
        assert channel.stats.per_source_bytes == {"s1": size}

    def test_directional_accounting(self):
        channel = SimulatedChannel()
        channel.send(OverlapRequest(query_id="q", cells=(1,), query_rect=(0, 0, 1, 1), k=1), "s1")
        channel.send(
            OverlapResponse(source_id="s1", query_id="q", results=(("d", 1.0),)),
            "s1",
            to_center=True,
        )
        assert channel.stats.bytes_to_sources > 0
        assert channel.stats.bytes_to_center > 0
        assert channel.stats.total_bytes == (
            channel.stats.bytes_to_sources + channel.stats.bytes_to_center
        )

    def test_reset(self):
        channel = SimulatedChannel()
        channel.send({"x": 1}, "s1")
        channel.reset()
        assert channel.stats.messages_sent == 0
        assert channel.stats.total_bytes == 0

    def test_snapshot_is_a_copy(self):
        channel = SimulatedChannel()
        channel.send({"x": 1}, "s1")
        snapshot = channel.snapshot()
        channel.send({"y": 2}, "s2")
        assert snapshot.messages_sent == 1
        assert channel.stats.messages_sent == 2


class TestTransmissionTime:
    def test_time_proportional_to_bytes(self):
        slow = SimulatedChannel(bandwidth_bytes_per_second=1000, latency_ms=0)
        fast = SimulatedChannel(bandwidth_bytes_per_second=1_000_000, latency_ms=0)
        payload = {"cells": list(range(500))}
        slow.send(payload, "s")
        fast.send(payload, "s")
        assert slow.transmission_time_ms() > fast.transmission_time_ms()

    def test_latency_adds_per_message(self):
        channel = SimulatedChannel(bandwidth_bytes_per_second=10**9, latency_ms=2.0)
        channel.send({"a": 1}, "s")
        channel.send({"b": 2}, "s")
        assert channel.transmission_time_ms() >= 4.0


class TestMessagePayloads:
    def test_root_upload_payload(self):
        upload = RootUpload(source_id="s", rect=(0, 0, 1, 1), dataset_count=12)
        payload = upload.wire_payload()
        assert payload["source"] == "s"
        assert payload["count"] == 12

    def test_overlap_request_payload_size_scales_with_cells(self):
        small = OverlapRequest(query_id="q", cells=(1,), query_rect=(0, 0, 1, 1), k=5)
        large = OverlapRequest(query_id="q", cells=tuple(range(200)), query_rect=(0, 0, 1, 1), k=5)
        assert encoded_size(large) > encoded_size(small)

    def test_coverage_request_defaults(self):
        request = CoverageRequest(
            query_id="q", cells=(1, 2), query_rect=(0, 0, 1, 1), k=3, delta=2.0
        )
        assert request.known_cells == ()
        assert request.exclude_ids == ()
        assert "delta" in request.wire_payload()

    def test_coverage_response_payload(self):
        response = CoverageResponse(
            source_id="s", query_id="q", selections=(("d1", (1, 2, 3)), ("d2", (9,)))
        )
        payload = response.wire_payload()
        assert payload["selections"] == [["d1", [1, 2, 3]], ["d2", [9]]]

    def test_overlap_response_payload(self):
        response = OverlapResponse(source_id="s", query_id="q", results=(("d1", 3.0),))
        assert response.wire_payload()["results"] == [["d1", 3.0]]
