"""Parity and unit tests for the concurrent per-source dispatch engine.

The data center fans per-source requests out over a thread pool
(:mod:`repro.distributed.executor`), collecting responses in candidate order
so aggregation stays deterministic.  These tests assert that parallel and
serial dispatch return *identical* results and identical channel byte totals
on randomized multi-source federations, and unit-test the dispatcher itself.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.data.sources import SOURCE_PROFILES, build_source_datasets
from repro.distributed.center import DistributionPolicy
from repro.distributed.executor import ExecutionPolicy, SourceDispatcher
from repro.distributed.framework import MultiSourceFramework


# ---------------------------------------------------------------------- #
# ExecutionPolicy / SourceDispatcher units
# ---------------------------------------------------------------------- #
class TestExecutionPolicy:
    def test_default_is_parallel(self):
        assert ExecutionPolicy(max_workers=4).parallel

    def test_serial_factory(self):
        policy = ExecutionPolicy.serial()
        assert policy.max_workers == 1
        assert not policy.parallel

    def test_invalid_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExecutionPolicy(max_workers=0)


class TestSourceDispatcher:
    def test_results_in_input_order(self):
        # Make earlier items finish later: order must still follow the input.
        def work(item: int) -> int:
            time.sleep(0.002 * (5 - item))
            return item * 10

        with SourceDispatcher(ExecutionPolicy(max_workers=4)) as dispatcher:
            assert dispatcher.map(work, range(5)) == [0, 10, 20, 30, 40]

    def test_serial_fallback_uses_no_pool(self):
        dispatcher = SourceDispatcher(ExecutionPolicy.serial())
        assert dispatcher.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert dispatcher._pool is None

    def test_exceptions_propagate(self):
        def boom(item: int) -> int:
            raise RuntimeError(f"item {item}")

        with SourceDispatcher(ExecutionPolicy(max_workers=2)) as dispatcher:
            with pytest.raises(RuntimeError):
                dispatcher.map(boom, [1, 2])

    def test_close_is_idempotent_and_reusable(self):
        dispatcher = SourceDispatcher(ExecutionPolicy(max_workers=2))
        assert dispatcher.map(lambda x: x, [1, 2]) == [1, 2]
        dispatcher.close()
        dispatcher.close()
        assert dispatcher.map(lambda x: x, [3, 4]) == [3, 4]
        dispatcher.close()


# ---------------------------------------------------------------------- #
# Serial-vs-parallel parity on randomized federations
# ---------------------------------------------------------------------- #
def build_federation(execution: ExecutionPolicy, policy: DistributionPolicy, seed: int):
    framework = MultiSourceFramework(theta=10, policy=policy, execution=execution)
    for name in ("Transit", "Baidu", "NYU"):
        datasets = build_source_datasets(
            SOURCE_PROFILES[name], scale=0.004, seed=seed, min_datasets=8
        )
        framework.add_source(name, datasets)
    return framework


def sample_query(framework: MultiSourceFramework, seed: int):
    rng = np.random.default_rng(seed)
    profile = SOURCE_PROFILES["Transit"]
    points = np.column_stack(
        [
            rng.uniform(profile.region.min_x, profile.region.max_x, size=40),
            rng.uniform(profile.region.min_y, profile.region.max_y, size=40),
        ]
    )
    return framework.query_from_points(points.tolist(), query_id=f"q-{seed}")


@pytest.mark.parametrize("seed", [3, 11, 29])
@pytest.mark.parametrize(
    "policy",
    [
        DistributionPolicy(route_to_candidates=True, clip_query=True),
        DistributionPolicy(route_to_candidates=False, clip_query=False),
    ],
    ids=["optimised", "broadcast"],
)
class TestSerialParallelParity:
    def test_overlap_parity(self, seed, policy):
        serial = build_federation(ExecutionPolicy.serial(), policy, seed)
        parallel = build_federation(ExecutionPolicy(max_workers=6), policy, seed)
        for query_seed in range(seed, seed + 3):
            qs = sample_query(serial, query_seed)
            qp = sample_query(parallel, query_seed)
            rs = serial.overlap_search(qs, k=5)
            rp = parallel.overlap_search(qp, k=5)
            assert [
                (e.dataset_id, e.score, e.source_id) for e in rs.entries
            ] == [(e.dataset_id, e.score, e.source_id) for e in rp.entries]
        ss, sp = serial.communication_stats(), parallel.communication_stats()
        assert ss.messages_sent == sp.messages_sent
        assert ss.bytes_to_sources == sp.bytes_to_sources
        assert ss.bytes_to_center == sp.bytes_to_center
        assert ss.per_source_bytes == sp.per_source_bytes
        parallel.close()

    def test_coverage_parity(self, seed, policy):
        serial = build_federation(ExecutionPolicy.serial(), policy, seed)
        parallel = build_federation(ExecutionPolicy(max_workers=6), policy, seed)
        for query_seed in range(seed, seed + 2):
            qs = sample_query(serial, query_seed)
            qp = sample_query(parallel, query_seed)
            rs = serial.coverage_search(qs, k=4, delta=6.0)
            rp = parallel.coverage_search(qp, k=4, delta=6.0)
            assert [
                (e.dataset_id, e.score, e.source_id) for e in rs.entries
            ] == [(e.dataset_id, e.score, e.source_id) for e in rp.entries]
            assert rs.total_coverage == rp.total_coverage
        ss, sp = serial.communication_stats(), parallel.communication_stats()
        assert ss.messages_sent == sp.messages_sent
        assert ss.total_bytes == sp.total_bytes
        assert ss.per_source_bytes == sp.per_source_bytes
        parallel.close()


class TestConcurrentChannelAccounting:
    def test_concurrent_sends_preserve_totals(self):
        # Hammer one channel from many threads; no message or byte may be
        # lost to a data race.
        from repro.distributed.channel import SimulatedChannel
        from repro.utils.sizeof import encoded_size

        channel = SimulatedChannel()
        payload = {"cells": list(range(64))}
        per_thread = 200
        threads = [
            threading.Thread(
                target=lambda dest: [
                    channel.send(payload, destination=dest, to_center=(i % 2 == 0))
                    for i in range(per_thread)
                ],
                args=(f"s{t}",),
            )
            for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        size = encoded_size(payload)
        stats = channel.snapshot()
        assert stats.messages_sent == 8 * per_thread
        assert stats.total_bytes == 8 * per_thread * size
        assert stats.per_source_bytes == {f"s{t}": per_thread * size for t in range(8)}
