"""Thread-safety stress tests for the sharded DITS-G center.

The sharded global index rebuilds shard trees lazily, which turns queries
into writers; these tests race concurrent ``candidate_sources`` calls
(fanned out over an :class:`ExecutionPolicy` thread pool) against
registration/unregistration churn, both on the raw index and through a full
:class:`MultiSourceFramework`, and assert that nothing crashes, no source is
lost and the final state answers queries exactly like a freshly built
reference.  Mirrors the serial-vs-parallel parity harness in
``tests/distributed/test_parallel_dispatch.py``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.data.sources import SOURCE_PROFILES, build_source_datasets
from repro.distributed.executor import ExecutionPolicy, SourceDispatcher
from repro.distributed.framework import MultiSourceFramework
from repro.index.dits_global import DITSGlobalIndex, SourceSummary
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy

REGION = BoundingBox(-100.0, 20.0, -60.0, 50.0)


def random_summary(rng: np.random.Generator, ident: int) -> SourceSummary:
    cx = rng.uniform(REGION.min_x, REGION.max_x)
    cy = rng.uniform(REGION.min_y, REGION.max_y)
    half = rng.uniform(0.2, 4.0)
    return SourceSummary(
        source_id=f"s{ident:05d}",
        rect=BoundingBox(cx - half, cy - half, cx + half, cy + half),
        dataset_count=int(rng.integers(1, 100)),
    )


@pytest.mark.parametrize("defer_rebuild", [False, True], ids=["eager", "deferred"])
def test_raw_index_queries_race_churn(defer_rebuild):
    """Concurrent candidate_sources vs register/unregister churn on the index."""
    policy = ShardPolicy(shard_count=8, defer_rebuild=defer_rebuild)
    with SourceDispatcher(ExecutionPolicy(max_workers=4)) as dispatcher:
        index = ShardedDITSGlobalIndex(
            policy, leaf_capacity=4, dispatcher=dispatcher, parallel_threshold=1
        )
        seed_rng = np.random.default_rng(0)
        base = [random_summary(seed_rng, i) for i in range(120)]
        index.register_all(base)

        errors: list[BaseException] = []
        stop = threading.Event()

        def query_loop(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    cx = rng.uniform(REGION.min_x, REGION.max_x)
                    cy = rng.uniform(REGION.min_y, REGION.max_y)
                    rect = BoundingBox(cx - 2, cy - 2, cx + 2, cy + 2)
                    seen = [c.source_id for c in index.candidate_sources(rect, delta_geo=1.5)]
                    # A migrating source must never be routed to twice.
                    assert len(seen) == len(set(seen))
                    assert all(source_id.startswith("s") for source_id in seen)
            except BaseException as exc:  # noqa: BLE001 - repanic in main thread
                errors.append(exc)

        workers = [threading.Thread(target=query_loop, args=(17 + t,)) for t in range(4)]
        for worker in workers:
            worker.start()

        churn_rng = np.random.default_rng(99)
        live = [s.source_id for s in base]
        next_id = len(base)
        for _ in range(400):
            op = churn_rng.random()
            if op < 0.35 and len(live) > 20:
                victim = live.pop(int(churn_rng.integers(len(live))))
                index.unregister(victim)
            elif op < 0.65 and live:
                # Refresh with a far-moved rect: forces cross-shard
                # migrations to race the concurrent queries.
                victim = live[int(churn_rng.integers(len(live)))]
                moved = random_summary(churn_rng, 0)
                index.register(
                    SourceSummary(victim, moved.rect, moved.dataset_count)
                )
            else:
                summary = random_summary(churn_rng, next_id)
                next_id += 1
                live.append(summary.source_id)
                index.register(summary)
        stop.set()
        for worker in workers:
            worker.join(timeout=30)
        assert not errors, errors[0]

        # Final state must match a reference index built from scratch.
        reference = DITSGlobalIndex(leaf_capacity=4)
        reference.register_all(index.summary_of(source_id) for source_id in live)
        assert index.source_ids() == sorted(live)
        assert sum(index.shard_sizes()) == len(live)
        probe = BoundingBox(REGION.min_x, REGION.min_y, REGION.max_x, REGION.max_y)
        assert index.candidate_sources(probe, 2.0) == reference.candidate_sources(probe, 2.0)


def _federation_sources(count: int, seed: int):
    names = list(SOURCE_PROFILES)
    for i in range(count):
        profile = SOURCE_PROFILES[names[i % len(names)]]
        yield f"src-{i}", build_source_datasets(
            profile, scale=0.003, seed=seed + i, min_datasets=6
        )


def test_center_queries_race_registrations():
    """Parallel searches keep working while new sources register mid-flight."""
    framework = MultiSourceFramework(
        theta=10,
        execution=ExecutionPolicy(max_workers=6),
        shard_policy=ShardPolicy(shard_count=8),
    )
    sources = list(_federation_sources(10, seed=41))
    for name, datasets in sources[:4]:
        framework.add_source(name, datasets)

    rng = np.random.default_rng(7)
    profile = SOURCE_PROFILES["Transit"]
    queries = []
    for i in range(6):
        points = np.column_stack(
            [
                rng.uniform(profile.region.min_x, profile.region.max_x, size=30),
                rng.uniform(profile.region.min_y, profile.region.max_y, size=30),
            ]
        )
        queries.append(framework.query_from_points(points.tolist(), query_id=f"q{i}"))

    errors: list[BaseException] = []
    stop = threading.Event()

    def search_loop(offset: int) -> None:
        try:
            while not stop.is_set():
                query = queries[offset % len(queries)]
                result = framework.overlap_search(query, k=4)
                known = set(framework.source_ids())
                assert {e.source_id for e in result.entries} <= known
                coverage = framework.coverage_search(query, k=3, delta=6.0)
                assert {e.source_id for e in coverage.entries} <= known
        except BaseException as exc:  # noqa: BLE001 - repanic in main thread
            errors.append(exc)

    workers = [threading.Thread(target=search_loop, args=(t,)) for t in range(3)]
    for worker in workers:
        worker.start()
    try:
        for name, datasets in sources[4:]:
            framework.add_source(name, datasets)
        for name, _ in sources[:3]:
            framework.center.refresh_source(name)
    finally:
        stop.set()
        for worker in workers:
            worker.join(timeout=60)
    assert not errors, errors[0]

    # After the dust settles, results equal a serial, freshly built center.
    reference = MultiSourceFramework(
        theta=10,
        execution=ExecutionPolicy.serial(),
        shard_policy=ShardPolicy(shard_count=1),
    )
    for name, datasets in sources:
        reference.add_source(name, datasets)
    for query in queries:
        got = framework.overlap_search(query, k=4)
        want = reference.overlap_search(query, k=4)
        assert [(e.dataset_id, e.score, e.source_id) for e in got.entries] == [
            (e.dataset_id, e.score, e.source_id) for e in want.entries
        ]
    framework.close()
    reference.close()
