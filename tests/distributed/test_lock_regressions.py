"""Regression tests for the lock-discipline violations the linter surfaced.

``python -m repro.cli lint`` (the REPRO101 pass) flagged three real races in
the federation stack once its shared attributes were declared ``guarded-by``:

* ``SimulatedChannel.transmission_time_ms`` read ``stats`` without the lock,
  so a concurrent ``send`` landing between the byte read and the message read
  produced a time computed from a torn (bytes, messages) pair;
* ``SourceDispatcher._ensure_pool`` had no lock at all — two threads racing
  the first parallel ``map`` could each build a pool, leaking one;
* ``DataCenter._sources`` was mutated by registration and read from pool
  threads with no synchronisation.

Each test hammers the fixed path from many threads and asserts the invariant
the lock restored.  They are race-probabilistic in the failing direction
(a regression may survive a lucky run) but can never fail on correct code.
"""

from __future__ import annotations

import threading

from repro.core.grid import Grid
from repro.data.sources import build_source_datasets
from repro.distributed.center import DataCenter
from repro.distributed.channel import SimulatedChannel
from repro.distributed.executor import ExecutionPolicy, SourceDispatcher
from repro.distributed.source import DataSource

THREADS = 8
ROUNDS = 200


def _run_threads(worker, count: int = THREADS) -> list[BaseException]:
    """Start ``count`` threads on ``worker`` and collect raised exceptions."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(count)

    def wrapped() -> None:
        try:
            barrier.wait()
            worker()
        except BaseException as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=wrapped) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestChannelTimeSnapshot:
    def test_transmission_time_pairs_bytes_with_messages(self):
        """Every observed time must match an integer number of sent messages.

        The payload is constant, so after ``n`` sends the byte total is
        exactly ``n * size`` and the consistent times form a lattice
        ``n * (size/bandwidth * 1000 + latency)``.  The pre-fix torn read
        paired ``n`` bytes with ``m != n`` messages, landing off-lattice.
        """
        channel = SimulatedChannel(bandwidth_bytes_per_second=1024, latency_ms=2.0)
        payload = "x" * 100
        size = channel.send(payload, destination="s0")
        per_message_ms = size / channel.bandwidth_bytes_per_second * 1000.0 + channel.latency_ms
        observed: list[float] = []

        def sender() -> None:
            for _ in range(ROUNDS):
                channel.send(payload, destination="s0")

        def reader() -> None:
            for _ in range(ROUNDS):
                observed.append(channel.transmission_time_ms())

        errors = []
        threads = [threading.Thread(target=sender) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for value in observed:
            count = value / per_message_ms
            assert abs(count - round(count)) < 1e-6, (
                f"time {value} implies a fractional message count {count}: "
                "bytes and message totals were read from different snapshots"
            )

    def test_reset_concurrent_with_reads(self):
        channel = SimulatedChannel()

        def worker() -> None:
            for _ in range(ROUNDS):
                channel.send("payload", destination="s0")
                channel.transmission_time_ms()
                channel.reset()

        assert not _run_threads(worker)


class TestDispatcherPoolRace:
    def test_concurrent_first_use_builds_one_pool(self):
        dispatcher = SourceDispatcher(ExecutionPolicy(max_workers=4))
        pools: list[object] = []

        def worker() -> None:
            pools.append(dispatcher._ensure_pool())

        try:
            assert not _run_threads(worker)
            assert len(set(map(id, pools))) == 1, "racing threads built separate pools"
        finally:
            dispatcher.close()

    def test_concurrent_maps_share_the_pool(self):
        dispatcher = SourceDispatcher(ExecutionPolicy(max_workers=4))

        def worker() -> None:
            for _ in range(50):
                assert dispatcher.map(lambda item: item * 2, [1, 2, 3]) == [2, 4, 6]

        try:
            assert not _run_threads(worker)
        finally:
            dispatcher.close()

    def test_concurrent_close_is_idempotent(self):
        """Racing close() calls must each see a consistent pool-or-None.

        Unsynchronised, two closers could both observe the same pool, one
        shut it down and the other trip over ``_pool`` already reset (or
        shut a freshly rebuilt pool another thread was still using).
        """
        dispatcher = SourceDispatcher(ExecutionPolicy(max_workers=4))

        def worker() -> None:
            for _ in range(50):
                dispatcher.close()

        try:
            dispatcher.map(lambda item: item, [1, 2])
            assert not _run_threads(worker)
            # A closed dispatcher is still usable: the next map rebuilds.
            assert dispatcher.map(lambda item: item + 1, [1]) == [2]
        finally:
            dispatcher.close()


class TestCenterRegistrationRace:
    def test_register_concurrent_with_lookups(self):
        """Registration must not torpedo ``source_ids``/``source`` readers.

        Before the fix the readers iterated/indexed ``_sources`` while
        another thread inserted into it; CPython can raise
        ``RuntimeError: dictionary changed size during iteration`` from
        ``sorted(self._sources)`` mid-insert.
        """
        grid = Grid(theta=10)
        center = DataCenter(grid)
        datasets = build_source_datasets("Transit", scale=0.002, seed=3)
        sources = []
        for index, dataset in enumerate(datasets[: THREADS * 4]):
            source = DataSource(source_id=f"src-{index:03d}", grid=grid)
            source.load_datasets([dataset])
            sources.append(source)
        registered = threading.Event()
        errors: list[BaseException] = []

        def guarded(target):
            def inner() -> None:
                try:
                    target()
                except BaseException as exc:  # noqa: BLE001 - surfaced via assert
                    errors.append(exc)

            return inner

        def register() -> None:
            try:
                for source in sources:
                    center.register_source(source)
            finally:
                registered.set()

        def read() -> None:
            while not registered.is_set():
                ids = center.source_ids()
                assert ids == sorted(ids)
                for source_id in ids:
                    assert center.source(source_id).source_id == source_id

        try:
            writer = threading.Thread(target=guarded(register))
            readers = [threading.Thread(target=guarded(read)) for _ in range(4)]
            for thread in [writer, *readers]:
                thread.start()
            for thread in [writer, *readers]:
                thread.join()
            assert not errors, errors
            assert center.source_ids() == sorted(s.source_id for s in sources)
        finally:
            center.close()
