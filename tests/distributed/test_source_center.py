"""Tests for DataSource and DataCenter behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import SpatialDataset
from repro.core.errors import EmptyDatasetError, SourceNotFoundError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.data.generators import generate_cluster_dataset, generate_route_dataset
from repro.distributed.center import DataCenter, DistributionPolicy
from repro.distributed.channel import SimulatedChannel
from repro.distributed.messages import CoverageRequest, OverlapRequest
from repro.distributed.source import DataSource, grid_rect_to_geo

REGION_WEST = BoundingBox(-77.5, 38.5, -76.5, 39.5)
REGION_EAST = BoundingBox(-70.0, 41.0, -69.0, 42.0)


def make_datasets(region: BoundingBox, count: int, seed: int, prefix: str) -> list[SpatialDataset]:
    rng = np.random.default_rng(seed)
    datasets = []
    for i in range(count):
        if i % 2 == 0:
            datasets.append(generate_route_dataset(f"{prefix}-{i}", region, rng, length=80))
        else:
            datasets.append(generate_cluster_dataset(f"{prefix}-{i}", region, rng, size=80))
    return datasets


@pytest.fixture()
def grid() -> Grid:
    return Grid(theta=12)


@pytest.fixture()
def west_source(grid) -> DataSource:
    source = DataSource("west", grid, leaf_capacity=6)
    source.load_datasets(make_datasets(REGION_WEST, 25, seed=1, prefix="west"))
    return source


@pytest.fixture()
def east_source(grid) -> DataSource:
    source = DataSource("east", grid, leaf_capacity=6)
    source.load_datasets(make_datasets(REGION_EAST, 25, seed=2, prefix="east"))
    return source


class TestDataSource:
    def test_dataset_count(self, west_source):
        assert west_source.dataset_count() == 25

    def test_root_upload_geographic(self, west_source, grid):
        upload = west_source.root_upload()
        geo_rect = BoundingBox(*upload.rect)
        # The uploaded region must cover the generating region's interior.
        assert geo_rect.intersects(REGION_WEST)
        assert upload.dataset_count == 25

    def test_root_upload_requires_data(self, grid):
        empty = DataSource("empty", grid)
        with pytest.raises(EmptyDatasetError):
            empty.root_upload()

    def test_add_and_remove_dataset(self, west_source, grid):
        extra = make_datasets(REGION_WEST, 1, seed=9, prefix="extra")[0]
        west_source.add_dataset(extra)
        assert west_source.dataset_count() == 26
        west_source.remove_dataset(extra.dataset_id)
        assert west_source.dataset_count() == 25

    def test_handle_overlap_returns_local_topk(self, west_source, grid):
        query_node = make_datasets(REGION_WEST, 1, seed=3, prefix="q")[0].to_node(grid)
        request = OverlapRequest(
            query_id="q0",
            cells=tuple(sorted(query_node.cells)),
            query_rect=(0, 0, 1, 1),
            k=4,
        )
        response = west_source.handle_overlap(request, grid)
        assert response.source_id == "west"
        assert len(response.results) <= 4
        scores = [score for _, score in response.results]
        assert scores == sorted(scores, reverse=True)

    def test_handle_overlap_empty_cells(self, west_source, grid):
        request = OverlapRequest(query_id="q0", cells=(), query_rect=(0, 0, 1, 1), k=3)
        assert west_source.handle_overlap(request, grid).results == ()

    def test_handle_coverage_returns_selections_with_cells(self, west_source, grid):
        query_node = make_datasets(REGION_WEST, 1, seed=4, prefix="q")[0].to_node(grid)
        request = CoverageRequest(
            query_id="q1",
            cells=tuple(sorted(query_node.cells)),
            query_rect=(0, 0, 1, 1),
            k=3,
            delta=10.0,
        )
        response = west_source.handle_coverage(request, grid)
        assert len(response.selections) <= 3
        for dataset_id, cells in response.selections:
            assert dataset_id in west_source.index
            assert len(cells) > 0

    def test_coverage_respects_exclusions(self, west_source, grid):
        query_node = make_datasets(REGION_WEST, 1, seed=5, prefix="q")[0].to_node(grid)
        base = CoverageRequest(
            query_id="q2",
            cells=tuple(sorted(query_node.cells)),
            query_rect=(0, 0, 1, 1),
            k=3,
            delta=10.0,
        )
        first = west_source.handle_coverage(base, grid)
        if not first.selections:
            pytest.skip("no connected datasets in this synthetic draw")
        excluded = first.selections[0][0]
        second = west_source.handle_coverage(
            CoverageRequest(
                query_id="q3",
                cells=base.cells,
                query_rect=base.query_rect,
                k=3,
                delta=10.0,
                exclude_ids=(excluded,),
            ),
            grid,
        )
        assert excluded not in [dataset_id for dataset_id, _ in second.selections]

    def test_grid_rect_to_geo_maps_into_space(self, grid):
        rect_geo = grid_rect_to_geo(grid, BoundingBox(0, 0, 10, 10))
        assert rect_geo.min_x == pytest.approx(grid.space.min_x)
        assert rect_geo.max_x > rect_geo.min_x

    def test_different_resolution_source(self, grid):
        coarse = DataSource("coarse", Grid(theta=10), leaf_capacity=4)
        coarse.load_datasets(make_datasets(REGION_WEST, 10, seed=6, prefix="c"))
        query_node = make_datasets(REGION_WEST, 1, seed=7, prefix="q")[0].to_node(grid)
        request = OverlapRequest(
            query_id="q", cells=tuple(sorted(query_node.cells)), query_rect=(0, 0, 1, 1), k=3
        )
        response = coarse.handle_overlap(request, grid)
        # Results exist and are expressed as the coarse source's dataset IDs.
        assert all(dataset_id.startswith("c-") for dataset_id, _ in response.results)


class TestDataCenter:
    def test_register_and_lookup(self, grid, west_source, east_source):
        center = DataCenter(grid=grid)
        center.register_source(west_source)
        center.register_source(east_source)
        assert center.source_ids() == ["east", "west"]
        assert center.source("west") is west_source
        with pytest.raises(SourceNotFoundError):
            center.source("north")

    def test_registration_uploads_root_summaries(self, grid, west_source):
        channel = SimulatedChannel()
        center = DataCenter(grid=grid, channel=channel)
        center.register_source(west_source)
        assert channel.stats.bytes_to_center > 0
        assert "west" in center.global_index

    def test_overlap_routes_only_to_relevant_source(self, grid, west_source, east_source):
        channel = SimulatedChannel()
        center = DataCenter(grid=grid, channel=channel)
        center.register_source(west_source)
        center.register_source(east_source)
        query = make_datasets(REGION_WEST, 1, seed=8, prefix="q")[0].to_node(grid)
        result = center.overlap_search(query, k=5)
        assert all(entry.source_id == "west" for entry in result)
        # East never receives a query beyond its registration upload.
        east_bytes = channel.stats.per_source_bytes.get("east", 0)
        west_bytes = channel.stats.per_source_bytes.get("west", 0)
        assert west_bytes > east_bytes

    def test_broadcast_policy_contacts_every_source(self, grid, west_source, east_source):
        channel = SimulatedChannel()
        center = DataCenter(
            grid=grid,
            channel=channel,
            policy=DistributionPolicy(route_to_candidates=False, clip_query=False),
        )
        center.register_source(west_source)
        center.register_source(east_source)
        query = make_datasets(REGION_WEST, 1, seed=8, prefix="q")[0].to_node(grid)
        center.overlap_search(query, k=5)
        assert channel.stats.per_source_bytes.get("east", 0) > 0

    def test_clipping_reduces_bytes(self, grid, west_source, east_source):
        def run(policy):
            channel = SimulatedChannel()
            center = DataCenter(grid=grid, channel=channel, policy=policy)
            center.register_source(west_source)
            center.register_source(east_source)
            query = make_datasets(REGION_WEST, 1, seed=8, prefix="q")[0].to_node(grid)
            center.overlap_search(query, k=5)
            return channel.stats.total_bytes

        clipped = run(DistributionPolicy(route_to_candidates=True, clip_query=True))
        broadcast = run(DistributionPolicy(route_to_candidates=False, clip_query=False))
        assert clipped <= broadcast

    def test_coverage_search_aggregates_and_stays_connected(self, grid, west_source, east_source):
        center = DataCenter(grid=grid)
        center.register_source(west_source)
        center.register_source(east_source)
        query = make_datasets(REGION_WEST, 1, seed=9, prefix="q")[0].to_node(grid)
        result = center.coverage_search(query, k=4, delta=10.0)
        assert len(result) <= 4
        assert result.total_coverage >= result.query_coverage
        # All chosen datasets exist in some registered source.
        for entry in result:
            source = center.source(entry.source_id)
            assert entry.dataset_id in source.index

    def test_coverage_results_equal_under_both_policies(self, grid, west_source, east_source):
        query = make_datasets(REGION_WEST, 1, seed=10, prefix="q")[0].to_node(grid)
        results = []
        for policy in (
            DistributionPolicy(route_to_candidates=True, clip_query=True),
            DistributionPolicy(route_to_candidates=False, clip_query=False),
        ):
            center = DataCenter(grid=grid, policy=policy)
            center.register_source(west_source)
            center.register_source(east_source)
            results.append(center.coverage_search(query, k=3, delta=10.0).total_coverage)
        # Clipping keeps the cells relevant to each source, so coverage should
        # not differ by more than rounding at the source boundary.
        assert abs(results[0] - results[1]) <= max(2, 0.05 * results[1])
