"""Tests for incremental dataset changes propagating to the data center."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import BoundingBox
from repro.data.generators import generate_route_dataset
from repro.distributed.framework import MultiSourceFramework

HOME_REGION = BoundingBox(-77.5, 38.5, -76.5, 39.5)
NEW_REGION = BoundingBox(10.0, 10.0, 11.0, 11.0)  # far away from the home region


def make_datasets(region: BoundingBox, count: int, seed: int, prefix: str):
    rng = np.random.default_rng(seed)
    return [generate_route_dataset(f"{prefix}-{i}", region, rng, length=60) for i in range(count)]


@pytest.fixture()
def framework() -> MultiSourceFramework:
    fw = MultiSourceFramework(theta=12, leaf_capacity=6)
    fw.add_source("home", make_datasets(HOME_REGION, 15, seed=1, prefix="home"))
    return fw


class TestAddDataset:
    def test_new_dataset_becomes_searchable(self, framework):
        newcomer = make_datasets(HOME_REGION, 1, seed=9, prefix="newcomer")[0]
        framework.add_dataset("home", newcomer)
        query = framework.query_from_dataset(newcomer)
        result = framework.overlap_search(query, k=1)
        assert result.dataset_ids == ["newcomer-0"]

    def test_dataset_outside_original_region_updates_routing(self, framework):
        # Before the insert, a query in NEW_REGION finds nothing because the
        # source's registered MBR does not reach it.
        probe = make_datasets(NEW_REGION, 1, seed=10, prefix="probe")[0]
        query = framework.query_from_dataset(probe)
        assert len(framework.overlap_search(query, k=3)) == 0

        # After inserting a dataset in NEW_REGION and refreshing the summary,
        # the same query must reach the source and find the new dataset.
        newcomer = make_datasets(NEW_REGION, 1, seed=11, prefix="far")[0]
        framework.add_dataset("home", newcomer)
        result = framework.overlap_search(framework.query_from_dataset(newcomer), k=3)
        assert "far-0" in result.dataset_ids

    def test_dataset_count_updated(self, framework):
        newcomer = make_datasets(HOME_REGION, 1, seed=12, prefix="extra")[0]
        framework.add_dataset("home", newcomer)
        assert framework.dataset_counts()["home"] == 16
        assert framework.center.global_index.summary_of("home").dataset_count == 16


class TestRemoveDataset:
    def test_removed_dataset_disappears_from_results(self, framework):
        # Regenerating with the same seed reproduces the "home-0" dataset, so
        # the query is exactly the removed dataset's points.
        victim = make_datasets(HOME_REGION, 15, seed=1, prefix="home")[0]
        victim_query = framework.query_from_dataset(victim)
        framework.remove_dataset("home", "home-0")
        result = framework.overlap_search(victim_query, k=20)
        assert "home-0" not in result.dataset_ids
        assert framework.dataset_counts()["home"] == 14

    def test_summary_count_shrinks(self, framework):
        framework.remove_dataset("home", "home-3")
        assert framework.center.global_index.summary_of("home").dataset_count == 14
