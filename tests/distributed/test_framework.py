"""End-to-end tests for the multi-source framework.

The key integration invariant: multi-source OJSP must return exactly the same
top-k scores as a single-machine brute force over the union of all sources,
and multi-source CJSP must return a connected selection whose coverage is
consistent with the selected datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.dataset import SpatialDataset
from repro.core.geometry import BoundingBox
from repro.core.problems import brute_force_overlap
from repro.data.generators import generate_cluster_dataset, generate_route_dataset
from repro.distributed.center import DistributionPolicy
from repro.distributed.framework import MultiSourceFramework

REGION_A = BoundingBox(-77.5, 38.5, -76.5, 39.5)
REGION_B = BoundingBox(-77.0, 38.8, -76.0, 39.8)  # overlaps REGION_A
REGION_FAR = BoundingBox(100.0, 10.0, 101.0, 11.0)


def make_datasets(region: BoundingBox, count: int, seed: int, prefix: str) -> list[SpatialDataset]:
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        if i % 2 == 0:
            out.append(generate_route_dataset(f"{prefix}-{i}", region, rng, length=60))
        else:
            out.append(generate_cluster_dataset(f"{prefix}-{i}", region, rng, size=60))
    return out


@pytest.fixture()
def framework() -> MultiSourceFramework:
    fw = MultiSourceFramework(theta=12, leaf_capacity=6)
    fw.add_source("alpha", make_datasets(REGION_A, 20, seed=1, prefix="alpha"))
    fw.add_source("beta", make_datasets(REGION_B, 20, seed=2, prefix="beta"))
    fw.add_source("gamma", make_datasets(REGION_FAR, 15, seed=3, prefix="gamma"))
    return fw


class TestSetup:
    def test_sources_registered(self, framework):
        assert framework.source_ids() == ["alpha", "beta", "gamma"]
        counts = framework.dataset_counts()
        assert counts["alpha"] == 20 and counts["gamma"] == 15

    def test_query_from_points(self, framework):
        query = framework.query_from_points([(-77.0, 39.0), (-77.01, 39.01)])
        assert query.coverage >= 1

    def test_registration_traffic_counted(self, framework):
        stats = framework.communication_stats()
        assert stats.bytes_to_center > 0
        assert stats.messages_sent >= 3


class TestMultiSourceOverlap:
    def test_matches_union_brute_force(self, framework):
        all_nodes = []
        for source_id in framework.source_ids():
            all_nodes.extend(framework.center.source(source_id).index.nodes())
        queries = make_datasets(REGION_A, 3, seed=9, prefix="q")
        for dataset in queries:
            query = framework.query_from_dataset(dataset)
            fast = framework.overlap_search(query, k=5)
            exact = brute_force_overlap(query, all_nodes, k=5)
            fast_scores = [s for s in fast.scores if s > 0]
            exact_scores = [s for s in exact.scores if s > 0]
            assert fast_scores == exact_scores

    def test_results_identify_owning_source(self, framework):
        query = framework.query_from_dataset(make_datasets(REGION_A, 1, seed=11, prefix="q")[0])
        result = framework.overlap_search(query, k=5)
        for entry in result:
            assert entry.source_id in framework.source_ids()
            source = framework.center.source(entry.source_id)
            assert entry.dataset_id in source.index

    def test_far_away_source_not_in_results(self, framework):
        query = framework.query_from_dataset(make_datasets(REGION_A, 1, seed=12, prefix="q")[0])
        result = framework.overlap_search(query, k=10)
        assert all(not entry.dataset_id.startswith("gamma") for entry in result)


class TestMultiSourceCoverage:
    def test_selection_connected_and_consistent(self, framework):
        query = framework.query_from_dataset(make_datasets(REGION_A, 1, seed=13, prefix="q")[0])
        result = framework.coverage_search(query, k=5, delta=10.0)
        assert len(result) <= 5
        chosen_nodes = [query]
        covered = set(query.cells)
        for entry in result:
            source = framework.center.source(entry.source_id)
            node = source.index.get(entry.dataset_id)
            chosen_nodes.append(node)
            covered |= node.cells
        assert result.total_coverage == len(covered)
        assert satisfies_spatial_connectivity(chosen_nodes, delta=10.0)

    def test_coverage_never_below_query(self, framework):
        query = framework.query_from_dataset(make_datasets(REGION_A, 1, seed=14, prefix="q")[0])
        result = framework.coverage_search(query, k=3, delta=5.0)
        assert result.total_coverage >= result.query_coverage

    def test_larger_k_never_reduces_coverage(self, framework):
        query = framework.query_from_dataset(make_datasets(REGION_A, 1, seed=15, prefix="q")[0])
        small = framework.coverage_search(query, k=1, delta=10.0)
        large = framework.coverage_search(query, k=5, delta=10.0)
        assert large.total_coverage >= small.total_coverage


class TestCommunicationPolicies:
    def build(self, policy: DistributionPolicy) -> MultiSourceFramework:
        fw = MultiSourceFramework(theta=12, leaf_capacity=6, policy=policy)
        fw.add_source("alpha", make_datasets(REGION_A, 15, seed=1, prefix="alpha"))
        fw.add_source("gamma", make_datasets(REGION_FAR, 15, seed=3, prefix="gamma"))
        return fw

    def test_routing_and_clipping_cut_bytes_but_keep_results(self):
        optimised = self.build(DistributionPolicy(route_to_candidates=True, clip_query=True))
        broadcast = self.build(DistributionPolicy(route_to_candidates=False, clip_query=False))
        query_dataset = make_datasets(REGION_A, 1, seed=20, prefix="q")[0]

        optimised.reset_communication_stats()
        broadcast.reset_communication_stats()
        result_a = optimised.overlap_search(optimised.query_from_dataset(query_dataset), k=5)
        result_b = broadcast.overlap_search(broadcast.query_from_dataset(query_dataset), k=5)

        assert [s for s in result_a.scores if s > 0] == [s for s in result_b.scores if s > 0]
        assert optimised.communication_stats().total_bytes < broadcast.communication_stats().total_bytes
        assert optimised.transmission_time_ms() < broadcast.transmission_time_ms()

    def test_reset_communication_stats(self):
        fw = self.build(DistributionPolicy())
        fw.reset_communication_stats()
        assert fw.communication_stats().total_bytes == 0


class TestMixedResolutionSources:
    def test_source_with_coarser_grid_still_searchable(self):
        fw = MultiSourceFramework(theta=12, leaf_capacity=6)
        fw.add_source("fine", make_datasets(REGION_A, 10, seed=30, prefix="fine"))
        fw.add_source("coarse", make_datasets(REGION_A, 10, seed=31, prefix="coarse"), theta=10)
        query = fw.query_from_dataset(make_datasets(REGION_A, 1, seed=32, prefix="q")[0])
        result = fw.overlap_search(query, k=6)
        sources_seen = {entry.source_id for entry in result}
        assert "fine" in sources_seen
        # The coarse source participates too (its datasets cover the region).
        assert "coarse" in sources_seen
