"""Tests for the ASCII chart rendering helpers."""

from __future__ import annotations

import pytest

from repro.bench.plots import ascii_line_chart, series_from_rows


class TestSeriesFromRows:
    ROWS = [
        {"k": 10, "method": "A", "time_ms": 5.0},
        {"k": 20, "method": "A", "time_ms": 7.0},
        {"k": 20, "method": "B", "time_ms": 3.0},
        {"k": 10, "method": "B", "time_ms": 2.0},
    ]

    def test_groups_and_sorts_by_x(self):
        series = series_from_rows(self.ROWS, x_key="k", y_key="time_ms", label_key="method")
        assert set(series) == {"A", "B"}
        assert series["B"] == [(10.0, 2.0), (20.0, 3.0)]

    def test_empty_rows(self):
        assert series_from_rows([], "k", "time_ms", "method") == {}


class TestAsciiLineChart:
    def test_contains_markers_title_and_legend(self):
        chart = ascii_line_chart(
            {"alpha": [(1, 1.0), (2, 4.0), (3, 9.0)], "beta": [(1, 2.0), (3, 2.0)]},
            title="demo chart",
            x_label="k",
        )
        assert "demo chart" in chart
        assert "o alpha" in chart and "x beta" in chart
        assert "o" in chart and "x" in chart

    def test_log_scale_requires_positive_values(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(0, 0.0), (1, 5.0)]}, logy=True)

    def test_log_scale_renders(self):
        chart = ascii_line_chart({"a": [(1, 1.0), (2, 10.0), (3, 1000.0)]}, logy=True)
        assert "1e+03" in chart or "1000" in chart

    def test_empty_series(self):
        assert ascii_line_chart({}) == "(no data)"
        assert ascii_line_chart({"a": []}) == "(no data)"

    def test_too_small_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(1, 1.0)]}, width=5, height=2)

    def test_single_point_chart(self):
        chart = ascii_line_chart({"only": [(5, 42.0)]})
        assert "o" in chart
        assert "42" in chart

    def test_dimensions_respected(self):
        chart = ascii_line_chart({"a": [(0, 0.0), (10, 10.0)]}, width=30, height=8)
        plot_lines = [line for line in chart.splitlines() if "│" in line or "┤" in line]
        assert len(plot_lines) == 8

    def test_roundtrip_with_rows(self):
        rows = [
            {"q": 10, "method": "OverlapSearch", "time_ms": 2.0},
            {"q": 20, "method": "OverlapSearch", "time_ms": 3.5},
            {"q": 10, "method": "STS3", "time_ms": 8.0},
            {"q": 20, "method": "STS3", "time_ms": 16.0},
        ]
        series = series_from_rows(rows, "q", "time_ms", "method")
        chart = ascii_line_chart(series, title="Fig. 11 style", x_label="q", logy=True)
        assert "OverlapSearch" in chart and "STS3" in chart
