"""Smoke tests for the experiment drivers at miniature scale.

The benchmarks exercise the drivers at realistic scale; these tests run each
driver on a tiny configuration so the plumbing (row structure, parameter
handling, method coverage) is verified as part of the ordinary test suite.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    COVERAGE_METHODS,
    OVERLAP_METHODS,
    fig8_index_construction,
    fig9_overlap_vs_k,
    fig11_overlap_vs_q,
    fig12_overlap_vs_leaf_capacity,
    fig13_14_overlap_communication,
    fig15_coverage_vs_k,
    fig18_coverage_vs_delta,
    fig21_22_index_updates,
)
from repro.bench.harness import ExperimentConfig

TINY = ExperimentConfig(sources=("Transit",), scale=0.01, theta=11, leaf_capacity=10, seed=3)


class TestOverlapDrivers:
    def test_fig8_rows(self):
        rows = fig8_index_construction(thetas=(10, 11), config=TINY)
        assert len(rows) == 2 * 5
        assert {row["index"] for row in rows} == set(OVERLAP_METHODS) - {"OverlapSearch"} | {"DITS-L"}
        for row in rows:
            assert row["build_ms"] >= 0
            assert row["memory_bytes"] > 0

    def test_fig9_rows(self):
        rows = fig9_overlap_vs_k(k_values=(2, 4), query_count=2, config=TINY)
        assert {row["method"] for row in rows} == set(OVERLAP_METHODS)
        assert {row["k"] for row in rows} == {2, 4}
        assert all(row["time_ms"] >= 0 for row in rows)

    def test_fig11_rows(self):
        rows = fig11_overlap_vs_q(q_values=(1, 2), k=3, config=TINY)
        assert {row["q"] for row in rows} == {1, 2}

    def test_fig12_rows(self):
        rows = fig12_overlap_vs_leaf_capacity(capacities=(10, 20), k=3, query_count=2, config=TINY)
        assert {row["method"] for row in rows} == {"OverlapSearch", "Rtree"}
        assert {row["f"] for row in rows} == {10, 20}

    def test_fig13_rows(self):
        rows = fig13_14_overlap_communication(q_values=(1, 2), k=3, config=TINY)
        assert {row["method"] for row in rows} == {"OverlapSearch", "Broadcast"}
        for row in rows:
            assert row["bytes"] > 0
            assert row["transmission_ms"] > 0


class TestCoverageDrivers:
    def test_fig15_rows(self):
        rows = fig15_coverage_vs_k(k_values=(2, 3), delta=5.0, query_count=1, config=TINY)
        assert {row["method"] for row in rows} == set(COVERAGE_METHODS)
        assert {row["k"] for row in rows} == {2, 3}

    def test_fig18_rows(self):
        rows = fig18_coverage_vs_delta(delta_values=(0.0, 5.0), k=2, query_count=1, config=TINY)
        assert {row["delta"] for row in rows} == {0.0, 5.0}


class TestUpdateDriver:
    def test_fig21_rows(self):
        rows = fig21_22_index_updates(batch_sizes=(5, 10), config=TINY)
        assert {row["batch"] for row in rows} == {5, 10}
        for row in rows:
            assert row["insert_ms"] >= 0
            assert row["update_ms"] >= 0


class TestConfigHandling:
    @pytest.mark.parametrize("driver", [fig9_overlap_vs_k, fig15_coverage_vs_k])
    def test_default_config_is_used_when_omitted(self, driver):
        # Only check that calling with explicit tiny parameters works and the
        # rows carry the expected keys; the default config is exercised by
        # the benchmarks.
        rows = driver(k_values=(2,), query_count=1, config=TINY)
        assert rows and "method" in rows[0]
