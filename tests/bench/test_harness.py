"""Tests for the benchmark workbench, reporting helpers and light experiment drivers."""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig7_source_heatmaps, table1_source_statistics
from repro.bench.harness import ExperimentConfig, Workbench, time_call
from repro.bench.reporting import format_table, rows_to_csv


class TestExperimentConfig:
    def test_with_theta_copies_everything_else(self):
        config = ExperimentConfig(sources=("Transit",), scale=0.01, theta=12, seed=3)
        changed = config.with_theta(10)
        assert changed.theta == 10
        assert changed.sources == ("Transit",)
        assert changed.scale == 0.01
        assert changed.seed == 3


class TestWorkbench:
    @pytest.fixture(scope="class")
    def bench(self) -> Workbench:
        return Workbench(ExperimentConfig(sources=("Transit",), scale=0.01, theta=11, seed=5))

    def test_datasets_cached(self, bench):
        first = bench.datasets_of("Transit")
        second = bench.datasets_of("Transit")
        assert first is second
        assert len(first) >= 20

    def test_nodes_match_datasets(self, bench):
        nodes = bench.nodes_of("Transit")
        assert len(nodes) == len(bench.datasets_of("Transit"))
        assert all(node.coverage >= 1 for node in nodes)

    def test_query_nodes(self, bench):
        queries = bench.query_nodes(4)
        assert len(queries) == 4

    def test_all_nodes_concatenates_sources(self):
        bench = Workbench(ExperimentConfig(sources=("Transit", "Baidu"), scale=0.01, theta=11))
        assert len(bench.all_nodes()) == len(bench.nodes_of("Transit")) + len(bench.nodes_of("Baidu"))

    def test_index_builders(self, bench):
        nodes = bench.nodes_of("Transit")
        assert len(bench.build_dits(nodes)) == len(nodes)
        assert len(bench.build_rtree(nodes)) == len(nodes)
        assert len(bench.build_sts3(nodes)) == len(nodes)
        assert len(bench.build_josie(nodes)) == len(nodes)
        assert len(bench.build_quadtree(nodes)) == len(nodes)


class TestTimeCall:
    def test_returns_time_and_result(self):
        elapsed, result = time_call(lambda: sum(range(1000)))
        assert elapsed >= 0.0
        assert result == sum(range(1000))

    def test_repeats_take_best(self):
        calls = []

        def work():
            calls.append(1)
            return len(calls)

        elapsed, result = time_call(work, repeats=3)
        assert len(calls) == 3
        assert result == 3


class TestReporting:
    ROWS = [
        {"method": "A", "time_ms": 1.2345, "k": 10},
        {"method": "B", "time_ms": 20.5, "k": 10},
    ]

    def test_format_table_contains_all_cells(self):
        text = format_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "method" in text and "time_ms" in text
        assert "1.234" in text and "20.500" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(self.ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "method,time_ms,k"
        assert len(lines) == 3

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""


class TestLightweightDrivers:
    def test_table1_rows(self):
        rows = table1_source_statistics(scale=0.005, seed=1)
        assert len(rows) == 5
        assert {row["source"] for row in rows} == {"Baidu", "BTAA", "NYU", "Transit", "UMN"}
        for row in rows:
            assert row["datasets"] >= 20
            assert row["points"] > 0

    def test_fig7_heatmaps_reflect_density_differences(self):
        heatmaps = fig7_source_heatmaps(scale=0.005, seed=1, theta=5)
        assert set(heatmaps) == {"Baidu", "BTAA", "NYU", "Transit", "UMN"}
        # Transit is a compact regional source: its densest coarse cell holds
        # a larger share of its datasets than BTAA's densest cell does.
        transit_top = heatmaps["Transit"][0]["datasets"]
        btaa_top = heatmaps["BTAA"][0]["datasets"]
        transit_total = len(table1_source_statistics(scale=0.005, seed=1))
        assert transit_top >= 1 and btaa_top >= 1
        assert transit_total == 5
