"""Regression: the DistanceEngine identity guard must survive index churn.

The PR-4 engine caches decoded coordinates and KD-trees per *dataset id*.
The PR-5 mutation paths make id reuse a routine event — a dataset is deleted
from a DITS-L index and a different dataset is inserted under the same id
(or an update re-grids it in place).  The cache must never serve the old
geometry for the new cells: entries are guarded by the identity of the
node's ``cells`` frozenset, and these tests pin that behaviour under the
exact churn sequences the local index now performs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode
from repro.core.distance import cell_set_distance
from repro.core.distance_engine import DistanceEngine
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node_at(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(
        name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID
    )


@pytest.fixture
def engine() -> DistanceEngine:
    return DistanceEngine(max_entries=64)


class TestIdReuseThroughIndexChurn:
    def test_delete_then_reinsert_same_id_refreshes_min_distances(self, engine):
        query = node_at("query", {(0, 0), (1, 1)})
        index = DITSLocalIndex(leaf_capacity=4)
        original = node_at("churned", {(10, 10), (11, 11)})
        index.build([original, node_at("bystander", {(100, 100)})])

        before = engine.min_distances(query, [index.get("churned")])
        assert before[0] == pytest.approx(
            cell_set_distance(query.cells, original.cells)
        )

        # Delete the dataset, insert a *different* one reusing the id — the
        # pattern a refreshed source produces.
        index.delete("churned")
        replacement = node_at("churned", {(200, 200), (201, 201)})
        index.insert(replacement)

        after = engine.min_distances(query, [index.get("churned")])
        assert after[0] == pytest.approx(
            cell_set_distance(query.cells, replacement.cells)
        )
        assert after[0] > before[0]
        info = engine.cache_info()
        assert info.invalidations >= 1

    def test_update_in_index_refreshes_within_delta(self, engine):
        query = node_at("query", {(0, 0)})
        index = DITSLocalIndex(leaf_capacity=4)
        near = node_at("mover", {(3, 3)})
        index.build([near, node_at("anchor", {(5, 5)})])

        assert engine.within_delta(query, index.get("mover"), 5.0)

        # Move the dataset far away through the index's update path.
        index.update(node_at("mover", {(200, 200)}))
        assert not engine.within_delta(query, index.get("mover"), 5.0)

        # And back near again: the predicate must flip back, not replay a
        # cached verdict from either earlier geometry.
        index.update(node_at("mover", {(2, 2)}))
        assert engine.within_delta(query, index.get("mover"), 5.0)

    def test_batched_predicates_after_randomised_churn(self, engine):
        rng = np.random.default_rng(31)
        index = DITSLocalIndex(leaf_capacity=3)
        names = [f"ds-{i:02d}" for i in range(12)]

        def random_node(name: str) -> DatasetNode:
            ox, oy = int(rng.integers(0, 250)), int(rng.integers(0, 250))
            return node_at(name, {(ox, oy), (min(ox + 2, 255), min(oy + 2, 255))})

        index.build([random_node(name) for name in names])
        query = node_at("query", {(128, 128), (129, 129)})

        for _ in range(40):
            victim = names[int(rng.integers(0, len(names)))]
            if rng.integers(0, 2) == 0:
                index.delete(victim)
                index.insert(random_node(victim))
            else:
                index.update(random_node(victim))
            # Every answer must reflect the *current* geometry exactly.
            candidates = [index.get(name) for name in names]
            distances = engine.min_distances(query, candidates)
            for candidate, got in zip(candidates, distances):
                assert got == pytest.approx(
                    cell_set_distance(query.cells, candidate.cells)
                )
            mask = engine.within_delta_many(query, candidates, 40.0)
            for candidate, verdict in zip(candidates, mask):
                assert verdict == (
                    cell_set_distance(query.cells, candidate.cells) <= 40.0
                )
