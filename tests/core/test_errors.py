"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    DatasetNotFoundError,
    EmptyDatasetError,
    IndexNotBuiltError,
    InvalidParameterError,
    ReproError,
    SourceNotFoundError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            InvalidParameterError,
            EmptyDatasetError,
            DatasetNotFoundError,
            IndexNotBuiltError,
            SourceNotFoundError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_value_error_compatibility(self):
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(EmptyDatasetError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(DatasetNotFoundError, KeyError)
        assert issubclass(SourceNotFoundError, KeyError)

    def test_runtime_error_compatibility(self):
        assert issubclass(IndexNotBuiltError, RuntimeError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise DatasetNotFoundError("missing")
