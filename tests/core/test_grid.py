"""Tests for the grid partition and cell encoding."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox, Point
from repro.core.grid import WORLD_SPACE, Grid


class TestGridConstruction:
    def test_invalid_theta_rejected(self):
        with pytest.raises(InvalidParameterError):
            Grid(theta=0)
        with pytest.raises(InvalidParameterError):
            Grid(theta=25)

    def test_degenerate_space_rejected(self):
        with pytest.raises(InvalidParameterError):
            Grid(theta=4, space=BoundingBox(0, 0, 0, 1))

    def test_counts(self):
        grid = Grid(theta=3)
        assert grid.cells_per_side == 8
        assert grid.total_cells == 64

    def test_cell_dimensions(self):
        grid = Grid(theta=2, space=BoundingBox(0, 0, 8, 4))
        assert grid.cell_width == 2.0
        assert grid.cell_height == 1.0


class TestPointMapping:
    def test_bottom_left_is_cell_zero(self):
        grid = Grid(theta=2, space=BoundingBox(0, 0, 4, 4))
        assert grid.cell_id_of(Point(0.1, 0.1)) == 0

    def test_paper_example_cells(self):
        # Fig. 2: theta=2 over a square space; cell (1, 0) -> id 1, (0, 1) -> 2.
        grid = Grid(theta=2, space=BoundingBox(0, 0, 4, 4))
        assert grid.cell_id_of(Point(1.5, 0.5)) == 1
        assert grid.cell_id_of(Point(0.5, 1.5)) == 2
        assert grid.cell_id_of(Point(3.5, 3.5)) == grid.total_cells - 1

    def test_out_of_space_points_clamped(self):
        grid = Grid(theta=2, space=BoundingBox(0, 0, 4, 4))
        assert grid.cell_id_of(Point(-10, -10)) == 0
        assert grid.cell_id_of(Point(100, 100)) == grid.total_cells - 1

    def test_cell_ids_of_deduplicates(self):
        grid = Grid(theta=2, space=BoundingBox(0, 0, 4, 4))
        cells = grid.cell_ids_of([Point(0.1, 0.1), Point(0.2, 0.2), Point(3.9, 3.9)])
        assert len(cells) == 2

    def test_accepts_raw_sequences(self):
        grid = Grid(theta=4)
        assert grid.cell_id_of((0.0, 0.0)) == grid.cell_id_of(Point(0.0, 0.0))


class TestCellGeometry:
    def test_center_round_trips(self):
        grid = Grid(theta=6)
        for cell in [0, 17, 321, grid.total_cells - 1]:
            assert grid.cell_id_of(grid.cell_center(cell)) == cell

    def test_cell_box_contains_center(self):
        grid = Grid(theta=5)
        for cell in [0, 3, 100]:
            assert grid.cell_box(cell).contains_point(grid.cell_center(cell))

    def test_invalid_cell_rejected(self):
        grid = Grid(theta=2)
        with pytest.raises(InvalidParameterError):
            grid.coords_of_cell(grid.total_cells)
        with pytest.raises(InvalidParameterError):
            grid.coords_of_cell(-1)

    def test_cell_id_from_coords_bounds(self):
        grid = Grid(theta=2)
        with pytest.raises(InvalidParameterError):
            grid.cell_id_from_coords(4, 0)

    def test_cell_grid_distance(self):
        grid = Grid(theta=3)
        origin = grid.cell_id_from_coords(0, 0)
        right = grid.cell_id_from_coords(1, 0)
        diagonal = grid.cell_id_from_coords(1, 1)
        assert grid.cell_grid_distance(origin, right) == pytest.approx(1.0)
        assert grid.cell_grid_distance(origin, diagonal) == pytest.approx(math.sqrt(2))


class TestRegionQueries:
    def test_cells_in_box_counts(self):
        grid = Grid(theta=3, space=BoundingBox(0, 0, 8, 8))
        cells = grid.cells_in_box(BoundingBox(0.5, 0.5, 2.5, 1.5))
        assert len(cells) == 3 * 2

    def test_cells_in_box_outside_space(self):
        grid = Grid(theta=3, space=BoundingBox(0, 0, 8, 8))
        assert grid.cells_in_box(BoundingBox(20, 20, 30, 30)) == []

    def test_neighbours_interior(self):
        grid = Grid(theta=3)
        cell = grid.cell_id_from_coords(3, 3)
        assert len(grid.neighbours_of(cell)) == 8

    def test_neighbours_corner(self):
        grid = Grid(theta=3)
        cell = grid.cell_id_from_coords(0, 0)
        assert len(grid.neighbours_of(cell)) == 3

    def test_neighbours_invalid_radius(self):
        grid = Grid(theta=3)
        with pytest.raises(InvalidParameterError):
            grid.neighbours_of(0, radius=-1)


class TestRescaling:
    def test_rescale_between_resolutions(self):
        coarse = Grid(theta=4)
        fine = Grid(theta=8)
        point = Point(12.3, 45.6)
        fine_cell = fine.cell_id_of(point)
        coarse_cell = coarse.cell_id_of(point)
        assert fine.rescale_cell(fine_cell, coarse) == coarse_cell

    def test_rescale_identity(self):
        grid = Grid(theta=5)
        for cell in [0, 7, 100]:
            assert grid.rescale_cell(cell, grid) == cell


class TestGridProperties:
    @given(
        st.integers(min_value=2, max_value=10),
        st.floats(min_value=-179.9, max_value=179.9, allow_nan=False),
        st.floats(min_value=-89.9, max_value=89.9, allow_nan=False),
    )
    def test_point_maps_into_its_cell_box(self, theta, x, y):
        grid = Grid(theta=theta)
        cell = grid.cell_id_of(Point(x, y))
        box = grid.cell_box(cell)
        # Allow for boundary rounding: the point is inside or on the border.
        assert box.expanded(1e-9).contains_point(Point(x, y))

    @given(st.integers(min_value=2, max_value=8))
    def test_world_space_cells_cover_range(self, theta):
        grid = Grid(theta=theta, space=WORLD_SPACE)
        assert grid.cell_id_of(Point(-180, -90)) == 0
        assert 0 <= grid.cell_id_of(Point(179.9, 89.9)) < grid.total_cells

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=-170, max_value=170, allow_nan=False),
        st.floats(min_value=-80, max_value=80, allow_nan=False),
    )
    def test_center_roundtrip_property(self, theta, x, y):
        grid = Grid(theta=theta)
        cell = grid.cell_id_of(Point(x, y))
        assert grid.cell_id_of(grid.cell_center(cell)) == cell
