"""Tests for cell-based distances and the Lemma 4 node distance bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.distance import (
    cell_distance,
    cell_set_distance,
    exact_node_distance,
    grid_cell_set_distance,
    node_distance_bounds,
    node_distance_lower_bound,
    node_distance_upper_bound,
    point_set_distance,
)
from repro.core.errors import EmptyDatasetError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid

GRID = Grid(theta=6, space=BoundingBox(0, 0, 64, 64))


def cell(x: int, y: int) -> int:
    return GRID.cell_id_from_coords(x, y)


class TestCellDistance:
    def test_adjacent_cells(self):
        assert cell_distance(cell(0, 0), cell(1, 0)) == pytest.approx(1.0)
        assert cell_distance(cell(0, 0), cell(0, 1)) == pytest.approx(1.0)

    def test_diagonal_cells(self):
        assert cell_distance(cell(0, 0), cell(1, 1)) == pytest.approx(math.sqrt(2))

    def test_same_cell(self):
        assert cell_distance(cell(5, 5), cell(5, 5)) == 0.0

    def test_example3_distances(self):
        # Example 3 of the paper on the Fig. 2 grid: dist(S_D1, S_D2) = 1,
        # dist(S_D1, S_D3) = 1, dist(S_D2, S_D3) = sqrt(2).
        grid = Grid(theta=2, space=BoundingBox(0, 0, 4, 4))
        d1 = frozenset({9, 11})
        d2 = frozenset({1, 3})
        d3 = frozenset({12, 13})
        assert cell_set_distance(d1, d2) == pytest.approx(1.0)
        assert cell_set_distance(d1, d3) == pytest.approx(1.0)
        assert cell_set_distance(d2, d3) == pytest.approx(math.sqrt(2))
        # Keep the grid fixture honest: the IDs above are valid cells of it.
        assert grid_cell_set_distance(grid, d1, d2) == pytest.approx(1.0)


class TestCellSetDistance:
    def test_zero_when_sharing_a_cell(self):
        assert cell_set_distance({cell(0, 0), cell(3, 3)}, {cell(3, 3)}) == 0.0

    def test_minimum_over_pairs(self):
        a = {cell(0, 0), cell(10, 10)}
        b = {cell(0, 5), cell(20, 20)}
        assert cell_set_distance(a, b) == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            cell_set_distance(set(), {1})
        with pytest.raises(EmptyDatasetError):
            cell_set_distance({1}, set())

    def test_kdtree_path_matches_small_path(self):
        # Build two large, disjoint blocks so the KD-tree branch is taken and
        # compare against the obvious geometric answer.
        a = {cell(x, y) for x in range(0, 20) for y in range(0, 20)}
        b = {cell(x, y) for x in range(30, 50) for y in range(0, 20)}
        assert len(a) * len(b) > 2_048
        # Closest columns are x=19 and x=30, so the gap is 11 cells.
        assert cell_set_distance(a, b) == pytest.approx(11.0)

    def test_symmetry(self):
        a = {cell(1, 1), cell(2, 5)}
        b = {cell(9, 9), cell(4, 4)}
        assert cell_set_distance(a, b) == pytest.approx(cell_set_distance(b, a))


class TestPointSetDistance:
    def test_basic(self):
        assert point_set_distance([(0, 0)], [(3, 4)]) == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            point_set_distance([], [(1, 1)])

    def test_many_points_match_scalar_loop(self):
        rng = __import__("numpy").random.default_rng(0)
        pts_a = [(float(x), float(y)) for x, y in rng.normal(size=(60, 2))]
        pts_b = [(float(x), float(y)) for x, y in rng.normal(size=(60, 2))]
        expected = min(
            math.hypot(ax - bx, ay - by) for ax, ay in pts_a for bx, by in pts_b
        )
        assert point_set_distance(pts_a, pts_b) == pytest.approx(expected, abs=0)

    def test_blocked_broadcast_matches_single_block(self):
        # 300 x 1000 pairs spans multiple row blocks of the bounded-memory
        # broadcast; the minimum must match the unblocked computation.
        import numpy as np

        rng = np.random.default_rng(1)
        pts_a = rng.uniform(-50, 50, size=(300, 2))
        pts_b = rng.uniform(-50, 50, size=(1000, 2))
        expected = float(
            np.hypot(
                pts_a[:, None, 0] - pts_b[None, :, 0],
                pts_a[:, None, 1] - pts_b[None, :, 1],
            ).min()
        )
        got = point_set_distance(map(tuple, pts_a), map(tuple, pts_b))
        assert got == pytest.approx(expected, abs=0)

    def test_huge_coordinates_do_not_overflow(self):
        # hypot semantics: squaring 1e200 would overflow to inf.
        assert point_set_distance([(1e200, 0.0)], [(0.0, 0.0)]) == pytest.approx(1e200)

    def test_point_objects_accepted(self):
        from repro.core.geometry import Point

        assert point_set_distance([Point(0, 0)], [Point(0, 2)]) == pytest.approx(2.0)


class TestNodeDistanceBounds:
    def make_node(self, name, cells):
        return DatasetNode.from_cells(name, cells, GRID)

    def test_paper_example6_style_bounds(self):
        # Example 6 of the paper: two 2x2 blocks of cells whose pivots are a
        # few cells apart; the exact distance must fall inside the Lemma 4
        # bounds computed from pivots and radii.
        query = self.make_node("q", {cell(0, 5), cell(1, 6), cell(0, 6), cell(1, 5)})
        data = self.make_node("d", {cell(5, 2), cell(6, 1), cell(5, 1), cell(6, 2)})
        lower, upper = node_distance_bounds(query, data)
        exact = exact_node_distance(query, data)
        assert lower <= exact <= upper
        pivot_distance = query.pivot.distance_to(data.pivot)
        assert lower == pytest.approx(max(pivot_distance - query.radius - data.radius, 0.0))
        assert upper == pytest.approx(pivot_distance + query.radius + data.radius)

    def test_bounds_sandwich_exact_distance(self):
        a = self.make_node("a", {cell(0, 0), cell(2, 1), cell(1, 3)})
        b = self.make_node("b", {cell(20, 20), cell(22, 25), cell(30, 21)})
        lower, upper = node_distance_bounds(a, b)
        exact = exact_node_distance(a, b)
        assert lower <= exact + 1e-9
        assert exact <= upper + 1e-9

    def test_lower_bound_clamped_at_zero(self):
        a = self.make_node("a", {cell(0, 0), cell(5, 5)})
        b = self.make_node("b", {cell(1, 1), cell(6, 6)})
        assert node_distance_lower_bound(a, b) >= 0.0

    def test_individual_bound_helpers_match_combined(self):
        a = self.make_node("a", {cell(0, 0), cell(3, 3)})
        b = self.make_node("b", {cell(10, 10), cell(12, 14)})
        lower, upper = node_distance_bounds(a, b)
        assert node_distance_lower_bound(a, b) == pytest.approx(lower)
        assert node_distance_upper_bound(a, b) == pytest.approx(upper)


class TestBoundProperties:
    cells_strategy = st.sets(
        st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63)),
        min_size=1,
        max_size=15,
    )

    @settings(max_examples=60, deadline=None)
    @given(cells_strategy, cells_strategy)
    def test_lemma4_sandwich(self, coords_a, coords_b):
        node_a = DatasetNode.from_cells("a", {cell(x, y) for x, y in coords_a}, GRID)
        node_b = DatasetNode.from_cells("b", {cell(x, y) for x, y in coords_b}, GRID)
        lower, upper = node_distance_bounds(node_a, node_b)
        exact = exact_node_distance(node_a, node_b)
        assert lower - 1e-9 <= exact <= upper + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(cells_strategy, cells_strategy)
    def test_exact_distance_symmetry(self, coords_a, coords_b):
        set_a = {cell(x, y) for x, y in coords_a}
        set_b = {cell(x, y) for x, y in coords_b}
        assert cell_set_distance(set_a, set_b) == pytest.approx(cell_set_distance(set_b, set_a))
