"""Tests for the batched distance engine: kernels, cache lifetime, stats."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.distance import (
    cell_distance,
    cell_set_distance,
    exact_node_distance,
)
from repro.core.distance_engine import (
    KDTREE_PAIR_THRESHOLD,
    DistanceEngine,
    cell_coords_of_array,
    get_engine,
    set_engine,
)
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.stats import distance_engine_stats
from repro.utils.zorder import zorder_decode

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def cell(x: int, y: int) -> int:
    return GRID.cell_id_from_coords(x, y)


def make_node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {cell(x, y) for x, y in coords}, GRID)


def brute_distance(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Definition 6 by exhaustive pairwise hypot over decoded coordinates."""
    best = math.inf
    for ca in node_a.cells:
        ax, ay = zorder_decode(ca)
        for cb in node_b.cells:
            bx, by = zorder_decode(cb)
            best = min(best, math.hypot(ax - bx, ay - by))
    return best


def random_nodes(count: int, seed: int, spread: int = 200) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, spread)), int(rng.integers(0, spread))
        coords = {
            (
                min(ox + int(rng.integers(0, 20)), 255),
                min(oy + int(rng.integers(0, 20)), 255),
            )
            for _ in range(int(rng.integers(1, 25)))
        }
        nodes.append(make_node(f"ds-{i:03d}", coords))
    return nodes


class TestBatchedKernels:
    def test_min_distances_matches_pairwise_reference(self):
        engine = DistanceEngine()
        query = make_node("q", {(10, 10), (12, 15), (11, 11)})
        candidates = random_nodes(25, seed=7)
        batched = engine.min_distances(query, candidates)
        expected = [cell_set_distance(query.cells, c.cells) for c in candidates]
        assert batched.shape == (25,)
        # Integer grid coordinates make every path exact: bit-identical.
        assert batched.tolist() == expected

    def test_min_distances_matches_brute_force(self):
        engine = DistanceEngine()
        query = make_node("q", {(0, 0), (5, 9)})
        candidates = random_nodes(10, seed=3)
        batched = engine.min_distances(query, candidates)
        for got, candidate in zip(batched, candidates):
            assert got == pytest.approx(brute_distance(query, candidate), abs=0)

    def test_min_distances_large_query_takes_tree_path(self):
        engine = DistanceEngine()
        query = make_node("q", {(x, y) for x in range(40) for y in range(40)})
        candidates = [
            make_node("far", {(200, 200)}),
            make_node("near", {(41, 0)}),
            make_node("inside", {(10, 10), (250, 250)}),
        ]
        assert len(query.cells) * sum(len(c.cells) for c in candidates) > 2_048
        batched = engine.min_distances(query, candidates)
        assert batched.tolist() == [
            cell_set_distance(query.cells, c.cells) for c in candidates
        ]

    def test_min_distances_empty_candidates(self):
        engine = DistanceEngine()
        query = make_node("q", {(1, 1)})
        result = engine.min_distances(query, [])
        assert result.size == 0

    def test_within_delta_many_matches_min_distances(self):
        engine = DistanceEngine()
        query = make_node("q", {(50, 50), (60, 60)})
        candidates = random_nodes(40, seed=11)
        mins = engine.min_distances(query, candidates)
        for delta in (0.0, 1.0, 5.0, 17.5, 300.0):
            mask = engine.within_delta_many(query, candidates, delta)
            assert mask.tolist() == (mins <= delta).tolist()

    def test_within_delta_many_exact_at_realized_distance(self):
        # Two single-cell nodes exactly 5 apart (3-4-5 triangle): delta at the
        # realized distance is connected, one ulp below is not.
        engine = DistanceEngine()
        query = make_node("q", {(0, 0)})
        candidate = make_node("c", {(3, 4)})
        assert engine.within_delta_many(query, [candidate], 5.0).tolist() == [True]
        below = float(np.nextafter(5.0, 0.0))
        assert engine.within_delta_many(query, [candidate], below).tolist() == [False]
        assert engine.within_delta(query, candidate, 5.0)
        assert not engine.within_delta(query, candidate, below)

    def test_within_delta_zero_is_shared_cell(self):
        engine = DistanceEngine()
        a = make_node("a", {(1, 1), (9, 9)})
        b = make_node("b", {(9, 9), (30, 30)})
        c = make_node("c", {(2, 1)})
        assert engine.within_delta(a, b, 0.0)
        assert not engine.within_delta(a, c, 0.0)
        assert engine.within_delta_many(a, [b, c], 0.0).tolist() == [True, False]

    def test_sub_cell_delta_behaves_like_zero(self):
        # Distinct cells are >= 1 apart on the integer grid, so any delta < 1
        # reduces to shared-cell membership.
        engine = DistanceEngine()
        a = make_node("a", {(4, 4)})
        adjacent = make_node("b", {(5, 4)})
        assert not engine.within_delta(a, adjacent, 0.999)
        assert engine.within_delta(a, adjacent, 1.0)

    def test_negative_delta_rejected(self):
        engine = DistanceEngine()
        a = make_node("a", {(0, 0)})
        with pytest.raises(InvalidParameterError):
            engine.within_delta(a, a, -0.5)
        with pytest.raises(InvalidParameterError):
            engine.within_delta_many(a, [a], -0.5)

    def test_single_cell_sets(self):
        engine = DistanceEngine()
        a = make_node("a", {(7, 7)})
        b = make_node("b", {(7, 9)})
        assert engine.pair_distance(a, b) == cell_distance(cell(7, 7), cell(7, 9))
        assert engine.min_distances(a, [b]).tolist() == [2.0]
        assert engine.pair_distance(a, a) == 0.0

    def test_connected_mask_matches_distance_predicate(self):
        engine = DistanceEngine()
        query = make_node("q", {(30, 30), (35, 32)})
        candidates = random_nodes(40, seed=13)
        for delta in (0.0, 1.0, 6.0, 25.0, 400.0):
            mask = engine.connected_mask(query, candidates, delta)
            expected = [
                cell_set_distance(query.cells, c.cells) <= delta for c in candidates
            ]
            assert mask.tolist() == expected

    def test_connected_mask_validates_delta_and_empty(self):
        engine = DistanceEngine()
        query = make_node("q", {(0, 0)})
        assert engine.connected_mask(query, [], 1.0).size == 0
        with pytest.raises(InvalidParameterError):
            engine.connected_mask(query, [query], -1.0)

    def test_pair_distance_matches_cell_set_distance(self):
        engine = DistanceEngine()
        nodes = random_nodes(12, seed=5)
        for i, node_a in enumerate(nodes):
            for node_b in nodes[i:]:
                assert engine.pair_distance(node_a, node_b) == cell_set_distance(
                    node_a.cells, node_b.cells
                )


class TestSharedCellEarlyExit:
    def test_shared_cell_at_kdtree_threshold_boundary(self):
        # Pair counts exactly at, just below and just above the KD-tree
        # switch-over must all take the distance-0 early exit.
        shared = (128, 128)
        small = make_node("small", {shared, (0, 0)})  # 2 cells
        for count, name in ((1_024, "at"), (1_023, "below"), (1_025, "above")):
            coords = {(x, y) for x in range(40) for y in range(40)}
            coords = set(list(coords)[: count - 1]) | {shared}
            other = make_node(name, coords)
            pairs = len(small.cells) * len(other.cells)
            assert (
                pairs == 2 * count
                and abs(pairs - KDTREE_PAIR_THRESHOLD) <= 2
            )
            assert cell_set_distance(small.cells, other.cells) == 0.0
            assert DistanceEngine().pair_distance(small, other) == 0.0

    def test_large_disjoint_sets_tree_path(self):
        a = make_node("a", {(x, y) for x in range(30) for y in range(30)})
        b = make_node("b", {(x, y) for x in range(80, 110) for y in range(30)})
        assert len(a.cells) * len(b.cells) > KDTREE_PAIR_THRESHOLD
        engine = DistanceEngine()
        assert engine.pair_distance(a, b) == 51.0
        assert engine.within_delta(a, b, 51.0)
        assert not engine.within_delta(a, b, 50.999)


class TestGeometryCache:
    def test_cache_is_bounded_and_evicts(self):
        engine = DistanceEngine(max_entries=4)
        nodes = random_nodes(10, seed=1)
        for node in nodes:
            engine.coords_of(node)
        info = engine.cache_info()
        assert info.currsize <= 4
        assert info.evictions == 6
        assert info.maxsize == 4

    def test_hits_and_misses_counted(self):
        engine = DistanceEngine()
        node = make_node("a", {(1, 2), (3, 4)})
        engine.coords_of(node)
        engine.coords_of(node)
        info = engine.cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_same_id_different_cells_invalidates(self):
        # Re-registering a dataset id with new cells (refresh, another grid,
        # CoverageSearch's merged node) must never serve stale geometry.
        engine = DistanceEngine()
        first = make_node("ds", {(0, 0)})
        second = make_node("ds", {(100, 100)})
        probe = make_node("probe", {(0, 1)})
        assert engine.pair_distance(first, probe) == 1.0
        assert engine.pair_distance(second, probe) == pytest.approx(
            math.hypot(100, 99)
        )
        assert engine.cache_info().invalidations >= 1

    def test_tree_reused_across_calls(self):
        engine = DistanceEngine()
        query = make_node("q", {(x, y) for x in range(50) for y in range(50)})
        others = random_nodes(5, seed=9)
        for other in others:
            engine.within_delta(query, other, 2.0)
        assert engine.cache_info().trees_built <= 1 + len(others)

    def test_clear_preserves_counters(self):
        engine = DistanceEngine()
        engine.coords_of(make_node("a", {(1, 1)}))
        engine.clear()
        info = engine.cache_info()
        assert info.currsize == 0
        assert info.misses == 1

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            DistanceEngine(max_entries=0)

    def test_cache_size_env_knob_read_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTANCE_CACHE_SIZE", "7")
        assert DistanceEngine().max_entries == 7
        monkeypatch.setenv("REPRO_DISTANCE_CACHE_SIZE", "not-a-number")
        with pytest.raises(InvalidParameterError):
            DistanceEngine()
        monkeypatch.delenv("REPRO_DISTANCE_CACHE_SIZE")
        assert DistanceEngine().max_entries == 4096

    def test_default_engine_swap(self):
        replacement = DistanceEngine(max_entries=8)
        previous = set_engine(replacement)
        try:
            assert get_engine() is replacement
            exact_node_distance(make_node("a", {(2, 2)}), make_node("b", {(9, 9)}))
            assert replacement.cache_info().misses >= 1
        finally:
            set_engine(previous)

    def test_stats_surface(self):
        engine = DistanceEngine(max_entries=16)
        engine.coords_of(make_node("a", {(0, 0), (1, 1)}))
        stats = distance_engine_stats(engine)
        assert stats["currsize"] == 1
        assert stats["maxsize"] == 16
        for key in ("hits", "misses", "evictions", "invalidations",
                    "trees_built", "batch_queries", "pair_queries"):
            assert key in stats
        # Default-engine variant reports the process-wide engine.
        assert set(distance_engine_stats()) == set(stats)


class TestCoordsHelper:
    def test_cell_coords_roundtrip(self):
        node = make_node("a", {(3, 5), (10, 2)})
        coords = cell_coords_of_array(node.cells_array)
        decoded = {tuple(int(v) for v in row) for row in coords}
        assert decoded == {(3, 5), (10, 2)}


coords_strategy = st.sets(
    st.tuples(
        st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255)
    ),
    min_size=1,
    max_size=40,
)
delta_strategy = st.one_of(
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    st.sampled_from([0.0, 1.0, 2.0, 5.0, math.sqrt(2)]),
)


class TestKernelProperties:
    @settings(max_examples=80, deadline=None)
    @given(coords_strategy, coords_strategy, delta_strategy)
    def test_within_delta_equals_distance_predicate(self, coords_a, coords_b, delta):
        engine = DistanceEngine()
        node_a = make_node("a", coords_a)
        node_b = make_node("b", coords_b)
        expected = cell_set_distance(node_a.cells, node_b.cells) <= delta
        assert engine.within_delta(node_a, node_b, delta) == expected
        assert engine.within_delta_many(node_a, [node_b], delta).tolist() == [expected]

    @settings(max_examples=60, deadline=None)
    @given(coords_strategy, st.lists(coords_strategy, min_size=1, max_size=6))
    def test_min_distances_equals_pairwise(self, query_coords, candidate_coords):
        engine = DistanceEngine()
        query = make_node("q", query_coords)
        candidates = [
            make_node(f"c{i}", coords) for i, coords in enumerate(candidate_coords)
        ]
        batched = engine.min_distances(query, candidates)
        expected = [cell_set_distance(query.cells, c.cells) for c in candidates]
        assert batched.tolist() == expected
