"""Tests for OJSP/CJSP problem definitions, scoring and brute-force solvers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import (
    CoverageQuery,
    CoverageResult,
    OverlapQuery,
    OverlapResult,
    ScoredDataset,
    brute_force_coverage,
    brute_force_overlap,
    coverage_of,
    marginal_gain,
    overlap_of,
)

GRID = Grid(theta=6, space=BoundingBox(0, 0, 64, 64))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


class TestScoring:
    def test_overlap_of(self):
        q = node("q", {(0, 0), (1, 1), (2, 2)})
        d = node("d", {(1, 1), (2, 2), (3, 3)})
        assert overlap_of(q, d) == 2

    def test_coverage_of(self):
        q = node("q", {(0, 0)})
        d1 = node("d1", {(0, 0), (1, 1)})
        d2 = node("d2", {(2, 2)})
        assert coverage_of(q, []) == 1
        assert coverage_of(q, [d1]) == 2
        assert coverage_of(q, [d1, d2]) == 3

    def test_marginal_gain(self):
        d = node("d", {(0, 0), (1, 1), (2, 2)})
        assert marginal_gain(d, set()) == 3
        assert marginal_gain(d, set(d.cells)) == 0
        assert marginal_gain(d, {next(iter(d.cells))}) == 2


class TestQueryValidation:
    def test_overlap_query_requires_positive_k(self):
        q = node("q", {(0, 0)})
        with pytest.raises(InvalidParameterError):
            OverlapQuery(query=q, k=0)

    def test_coverage_query_requires_valid_parameters(self):
        q = node("q", {(0, 0)})
        with pytest.raises(InvalidParameterError):
            CoverageQuery(query=q, k=0, delta=1.0)
        with pytest.raises(InvalidParameterError):
            CoverageQuery(query=q, k=3, delta=-1.0)


class TestResultContainers:
    def test_overlap_result_orders_by_score(self):
        result = OverlapResult.from_pairs([("b", 2.0), ("a", 5.0), ("c", 2.0)])
        assert result.dataset_ids == ["a", "b", "c"]
        assert result.scores == [5.0, 2.0, 2.0]
        assert len(result) == 3

    def test_coverage_result_gain(self):
        result = CoverageResult(
            entries=(ScoredDataset("a", 3.0), ScoredDataset("b", 2.0)),
            total_coverage=10,
            query_coverage=5,
        )
        assert result.gain_over_query == 5
        assert result.dataset_ids == ["a", "b"]
        assert len(list(result)) == 2


class TestBruteForceOverlap:
    def test_top_k_by_intersection(self):
        q = node("q", {(0, 0), (1, 1), (2, 2), (3, 3)})
        candidates = [
            node("full", {(0, 0), (1, 1), (2, 2), (3, 3)}),
            node("half", {(0, 0), (1, 1), (9, 9)}),
            node("none", {(8, 8)}),
        ]
        result = brute_force_overlap(q, candidates, k=2)
        assert result.dataset_ids == ["full", "half"]
        assert result.scores == [4.0, 2.0]

    def test_k_larger_than_corpus(self):
        q = node("q", {(0, 0)})
        result = brute_force_overlap(q, [node("only", {(0, 0)})], k=10)
        assert result.dataset_ids == ["only"]

    def test_invalid_k(self):
        q = node("q", {(0, 0)})
        with pytest.raises(InvalidParameterError):
            brute_force_overlap(q, [], k=0)


class TestBruteForceCoverage:
    def test_respects_connectivity(self):
        q = node("q", {(0, 0)})
        near = node("near", {(1, 0), (2, 0)})
        far = node("far", {(30, 30), (31, 31), (32, 32)})
        result = brute_force_coverage(q, [near, far], k=1, delta=1.0)
        # "far" has more cells but is unreachable; "near" must be chosen.
        assert result.dataset_ids == ["near"]
        assert result.total_coverage == 3

    def test_indirect_connection_allowed(self):
        q = node("q", {(0, 0)})
        bridge = node("bridge", {(1, 0)})
        island = node("island", {(2, 0), (2, 1), (3, 0)})
        result = brute_force_coverage(q, [bridge, island], k=2, delta=1.0)
        assert set(result.dataset_ids) == {"bridge", "island"}
        assert result.total_coverage == 5

    def test_empty_candidates(self):
        q = node("q", {(0, 0), (1, 1)})
        result = brute_force_coverage(q, [], k=3, delta=1.0)
        assert result.dataset_ids == []
        assert result.total_coverage == 2

    def test_invalid_k(self):
        q = node("q", {(0, 0)})
        with pytest.raises(InvalidParameterError):
            brute_force_coverage(q, [], k=0, delta=1.0)

    def test_selection_is_connected_to_query(self):
        q = node("q", {(5, 5)})
        candidates = [
            node("a", {(6, 5), (7, 5)}),
            node("b", {(8, 5), (9, 5)}),
            node("c", {(20, 20), (21, 21)}),
        ]
        result = brute_force_coverage(q, candidates, k=2, delta=1.0)
        chosen = [c for c in candidates if c.dataset_id in result.dataset_ids]
        assert satisfies_spatial_connectivity([q, *chosen], delta=1.0)
        assert "c" not in result.dataset_ids


class TestBruteForceProperties:
    coords = st.sets(
        st.tuples(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)),
        min_size=1,
        max_size=5,
    )

    @settings(max_examples=30, deadline=None)
    @given(coords, st.lists(coords, min_size=1, max_size=5), st.integers(min_value=1, max_value=3))
    def test_overlap_scores_are_sorted_and_correct(self, query_coords, candidate_coords, k):
        query = node("q", query_coords)
        candidates = [node(f"d{i}", coords) for i, coords in enumerate(candidate_coords)]
        result = brute_force_overlap(query, candidates, k)
        assert result.scores == sorted(result.scores, reverse=True)
        for entry in result:
            candidate = next(c for c in candidates if c.dataset_id == entry.dataset_id)
            assert entry.score == overlap_of(query, candidate)

    @settings(max_examples=20, deadline=None)
    @given(coords, st.lists(coords, min_size=1, max_size=4), st.integers(min_value=1, max_value=3))
    def test_coverage_result_is_connected_and_at_most_k(self, query_coords, candidate_coords, k):
        query = node("q", query_coords)
        candidates = [node(f"d{i}", coords) for i, coords in enumerate(candidate_coords)]
        result = brute_force_coverage(query, candidates, k, delta=2.0)
        assert len(result) <= k
        chosen = [c for c in candidates if c.dataset_id in result.dataset_ids]
        assert satisfies_spatial_connectivity([query, *chosen], delta=2.0)
        assert result.total_coverage == coverage_of(query, chosen)
