"""Tests for points and bounding boxes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import BoundingBox, Point

finite = st.floats(min_value=-1000, max_value=1000, allow_nan=False)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        point = Point(12.5, -7.25)
        assert point.distance_to(point) == 0.0

    def test_as_tuple_and_iter(self):
        point = Point(1.5, 2.5)
        assert point.as_tuple() == (1.5, 2.5)
        assert list(point) == [1.5, 2.5]

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestBoundingBoxConstruction:
    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)
        with pytest.raises(ValueError):
            BoundingBox(0, 1, 1, 0)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 5), Point(3, 2), Point(2, 4)])
        assert box.as_tuple() == (1, 2, 3, 5)

    def test_from_points_accepts_sequences(self):
        box = BoundingBox.from_points([(0, 0), (2, 3)])
        assert box.as_tuple() == (0, 0, 2, 3)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_union_of(self):
        combined = BoundingBox.union_of([BoundingBox(0, 0, 1, 1), BoundingBox(2, 2, 3, 3)])
        assert combined.as_tuple() == (0, 0, 3, 3)

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.union_of([])


class TestBoundingBoxDerived:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.extent(0) == 4
        assert box.extent(1) == 3

    def test_extent_invalid_dimension(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).extent(2)

    def test_center_and_radius(self):
        box = BoundingBox(0, 0, 6, 8)
        assert box.center == Point(3, 4)
        assert box.radius == pytest.approx(5.0)

    def test_degenerate_box_has_zero_radius(self):
        box = BoundingBox(2, 2, 2, 2)
        assert box.radius == 0.0
        assert box.area == 0.0


class TestBoundingBoxPredicates:
    def test_intersects_overlapping(self):
        assert BoundingBox(0, 0, 2, 2).intersects(BoundingBox(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert BoundingBox(0, 0, 1, 1).intersects(BoundingBox(1, 0, 2, 1))

    def test_disjoint_boxes_do_not_intersect(self):
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(2, 2, 3, 3))

    def test_contains_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(Point(1, 1))
        assert box.contains_point(Point(0, 2))
        assert not box.contains_point(Point(3, 1))

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        assert outer.contains_box(BoundingBox(1, 1, 2, 2))
        assert not outer.contains_box(BoundingBox(5, 5, 11, 6))


class TestBoundingBoxOperations:
    def test_intersection(self):
        result = BoundingBox(0, 0, 2, 2).intersection(BoundingBox(1, 1, 3, 3))
        assert result is not None
        assert result.as_tuple() == (1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert BoundingBox(0, 0, 1, 1).intersection(BoundingBox(5, 5, 6, 6)) is None

    def test_union(self):
        assert BoundingBox(0, 0, 1, 1).union(BoundingBox(2, 2, 3, 3)).as_tuple() == (0, 0, 3, 3)

    def test_expanded(self):
        assert BoundingBox(1, 1, 2, 2).expanded(1).as_tuple() == (0, 0, 3, 3)

    def test_min_distance_between_disjoint_boxes(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(4, 5, 6, 7)
        assert a.min_distance_to(b) == pytest.approx(math.hypot(3, 4))

    def test_min_distance_zero_when_intersecting(self):
        assert BoundingBox(0, 0, 2, 2).min_distance_to(BoundingBox(1, 1, 3, 3)) == 0.0

    def test_min_distance_to_point(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.min_distance_to_point(Point(4, 5)) == pytest.approx(5.0)
        assert box.min_distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_enlargement(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.enlargement(BoundingBox(0, 0, 2, 1)) == pytest.approx(1.0)
        assert box.enlargement(BoundingBox(0.2, 0.2, 0.8, 0.8)) == 0.0


class TestBoundingBoxProperties:
    @given(finite, finite, finite, finite, finite, finite, finite, finite)
    def test_union_contains_both(self, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
        a = BoundingBox(min(ax1, ax2), min(ay1, ay2), max(ax1, ax2), max(ay1, ay2))
        b = BoundingBox(min(bx1, bx2), min(by1, by2), max(bx1, bx2), max(by1, by2))
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(finite, finite, finite, finite, finite, finite, finite, finite)
    def test_min_distance_symmetry(self, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
        a = BoundingBox(min(ax1, ax2), min(ay1, ay2), max(ax1, ax2), max(ay1, ay2))
        b = BoundingBox(min(bx1, bx2), min(by1, by2), max(bx1, bx2), max(by1, by2))
        assert a.min_distance_to(b) == pytest.approx(b.min_distance_to(a))

    @given(finite, finite, finite, finite)
    def test_intersection_within_both(self, x1, y1, x2, y2):
        a = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        b = BoundingBox(min(x1, x2) - 1, min(y1, y2) - 1, max(x1, x2) + 1, max(y1, y2) + 1)
        inter = a.intersection(b)
        assert inter is not None
        assert b.contains_box(inter)
        assert a.contains_box(inter)
