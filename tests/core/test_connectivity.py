"""Tests for direct/indirect connectivity and the connectivity graph."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connectivity import (
    ConnectivityGraph,
    connected_components,
    is_directly_connected,
    satisfies_spatial_connectivity,
)
from repro.core.dataset import DatasetNode
from repro.core.distance import exact_node_distance
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid

GRID = Grid(theta=6, space=BoundingBox(0, 0, 64, 64))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


class TestDirectConnectivity:
    def test_overlapping_nodes_always_connected(self):
        a = node("a", {(0, 0), (1, 1)})
        b = node("b", {(1, 1), (5, 5)})
        assert is_directly_connected(a, b, delta=0.0)

    def test_adjacent_nodes_connected_at_delta_one(self):
        a = node("a", {(0, 0)})
        b = node("b", {(1, 0)})
        assert is_directly_connected(a, b, delta=1.0)
        assert not is_directly_connected(a, b, delta=0.5)

    def test_distant_nodes_need_large_delta(self):
        a = node("a", {(0, 0)})
        b = node("b", {(10, 0)})
        assert not is_directly_connected(a, b, delta=5.0)
        assert is_directly_connected(a, b, delta=10.0)

    def test_negative_delta_rejected(self):
        a = node("a", {(0, 0)})
        with pytest.raises(InvalidParameterError):
            is_directly_connected(a, a, delta=-1.0)

    def test_matches_exact_distance_predicate(self):
        a = node("a", {(0, 0), (3, 4)})
        b = node("b", {(8, 8), (9, 2)})
        for delta in (0.0, 2.0, 5.0, 8.0, 12.0):
            assert is_directly_connected(a, b, delta) == (exact_node_distance(a, b) <= delta)


class TestExample3:
    """Example 3 of the paper: D1-D2 direct, D1-D3 direct, D2-D3 indirect at delta=1."""

    def setup_method(self):
        grid = Grid(theta=2, space=BoundingBox(0, 0, 4, 4))
        self.d1 = DatasetNode.from_cells("D1", {9, 11}, grid)
        self.d2 = DatasetNode.from_cells("D2", {1, 3}, grid)
        self.d3 = DatasetNode.from_cells("D3", {12, 13}, grid)

    def test_direct_relations(self):
        assert is_directly_connected(self.d1, self.d2, delta=1.0)
        assert is_directly_connected(self.d1, self.d3, delta=1.0)
        assert not is_directly_connected(self.d2, self.d3, delta=1.0)

    def test_collection_satisfies_spatial_connectivity(self):
        assert satisfies_spatial_connectivity([self.d1, self.d2, self.d3], delta=1.0)

    def test_without_the_bridge_not_connected(self):
        assert not satisfies_spatial_connectivity([self.d2, self.d3], delta=1.0)


class TestConnectivityGraph:
    def test_add_node_reports_direct_neighbours(self):
        graph = ConnectivityGraph(delta=1.0)
        a = node("a", {(0, 0)})
        b = node("b", {(1, 0)})
        c = node("c", {(10, 10)})
        assert graph.add_node(a) == set()
        assert graph.add_node(b) == {"a"}
        assert graph.add_node(c) == set()

    def test_components_and_connectivity(self):
        graph = ConnectivityGraph(delta=1.0)
        graph.add_nodes([node("a", {(0, 0)}), node("b", {(1, 0)}), node("c", {(10, 10)})])
        assert graph.are_connected("a", "b")
        assert not graph.are_connected("a", "c")
        assert graph.components() == [{"a", "b"}, {"c"}]
        assert not graph.is_fully_connected()

    def test_indirect_connection_through_chain(self):
        graph = ConnectivityGraph(delta=1.0)
        graph.add_nodes(
            [node("a", {(0, 0)}), node("b", {(1, 0)}), node("c", {(2, 0)}), node("d", {(3, 0)})]
        )
        assert graph.are_connected("a", "d")
        assert graph.is_fully_connected()

    def test_unknown_ids_not_connected(self):
        graph = ConnectivityGraph(delta=1.0)
        graph.add_node(node("a", {(0, 0)}))
        assert not graph.are_connected("a", "missing")

    def test_duplicate_add_returns_existing_neighbours(self):
        graph = ConnectivityGraph(delta=1.0)
        a = node("a", {(0, 0)})
        b = node("b", {(1, 0)})
        graph.add_node(a)
        graph.add_node(b)
        assert graph.add_node(b) == {"a"}
        assert len(graph) == 2

    def test_is_connected_to_any(self):
        graph = ConnectivityGraph(delta=1.0)
        graph.add_nodes([node("a", {(0, 0)}), node("b", {(10, 10)})])
        probe = node("p", {(1, 0)})
        assert graph.is_connected_to_any(probe, ["a"])
        assert not graph.is_connected_to_any(probe, ["b"])

    def test_adjacency_view(self):
        graph = ConnectivityGraph(delta=1.0)
        graph.add_nodes([node("a", {(0, 0)}), node("b", {(1, 0)})])
        adjacency = graph.adjacency()
        assert adjacency["a"] == {"b"}
        assert adjacency["b"] == {"a"}

    def test_negative_delta_rejected(self):
        with pytest.raises(InvalidParameterError):
            ConnectivityGraph(delta=-0.1)

    def test_empty_collection_is_connected(self):
        assert satisfies_spatial_connectivity([], delta=1.0)
        assert ConnectivityGraph(delta=1.0).is_fully_connected()


class TestConnectivityProperties:
    coords = st.sets(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20)),
        min_size=1,
        max_size=6,
    )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(coords, min_size=2, max_size=5), st.floats(min_value=0, max_value=10))
    def test_components_partition_nodes(self, node_coords, delta):
        nodes = [node(f"n{i}", coords) for i, coords in enumerate(node_coords)]
        components = connected_components(nodes, delta)
        all_ids = {n.dataset_id for n in nodes}
        seen: set[str] = set()
        for component in components:
            assert not (component & seen)
            seen |= component
        assert seen == all_ids

    @settings(max_examples=40, deadline=None)
    @given(st.lists(coords, min_size=2, max_size=5))
    def test_larger_delta_never_splits_components(self, node_coords):
        nodes = [node(f"n{i}", coords) for i, coords in enumerate(node_coords)]
        small = len(connected_components(nodes, 1.0))
        large = len(connected_components(nodes, 10.0))
        assert large <= small
