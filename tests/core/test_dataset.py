"""Tests for spatial datasets, cell sets and dataset nodes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dataset import CellSet, DatasetNode, SpatialDataset
from repro.core.errors import EmptyDatasetError
from repro.core.geometry import BoundingBox, Point
from repro.core.grid import Grid

GRID = Grid(theta=6, space=BoundingBox(0, 0, 64, 64))


class TestSpatialDataset:
    def test_from_coordinates(self):
        dataset = SpatialDataset.from_coordinates("d", [(1, 2), (3, 4)])
        assert len(dataset) == 2
        assert dataset.points[0] == Point(1.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            SpatialDataset(dataset_id="d", points=())

    def test_bounding_box(self):
        dataset = SpatialDataset.from_coordinates("d", [(1, 5), (4, 2)])
        assert dataset.bounding_box.as_tuple() == (1, 2, 4, 5)

    def test_iteration(self):
        dataset = SpatialDataset.from_coordinates("d", [(0, 0), (1, 1)])
        assert [p.as_tuple() for p in dataset] == [(0.0, 0.0), (1.0, 1.0)]

    def test_to_cell_set(self):
        dataset = SpatialDataset.from_coordinates("d", [(0.5, 0.5), (0.6, 0.6), (10.5, 0.5)])
        cell_set = dataset.to_cell_set(GRID)
        assert cell_set.dataset_id == "d"
        assert len(cell_set) == 2

    def test_to_node_matches_cell_set(self):
        dataset = SpatialDataset.from_coordinates("d", [(0.5, 0.5), (10.5, 20.5)])
        node = dataset.to_node(GRID)
        assert node.cells == dataset.to_cell_set(GRID).cells
        assert node.point_count == 2


class TestCellSet:
    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            CellSet(dataset_id="d", cells=frozenset())

    def test_membership_and_length(self):
        cell_set = CellSet(dataset_id="d", cells=frozenset({1, 2, 3}))
        assert 2 in cell_set
        assert 9 not in cell_set
        assert len(cell_set) == 3
        assert cell_set.coverage == 3

    def test_overlap_with(self):
        a = CellSet(dataset_id="a", cells=frozenset({1, 2, 3}))
        b = CellSet(dataset_id="b", cells=frozenset({2, 3, 4}))
        assert a.overlap_with(b) == 2
        assert a.overlap_with({5, 6}) == 0

    def test_union_with(self):
        a = CellSet(dataset_id="a", cells=frozenset({1, 2}))
        assert a.union_with({2, 3}) == frozenset({1, 2, 3})

    def test_clipped_to(self):
        a = CellSet(dataset_id="a", cells=frozenset({1, 2, 3}))
        clipped = a.clipped_to({2, 3, 9})
        assert clipped is not None
        assert clipped.cells == frozenset({2, 3})

    def test_clipped_to_nothing_returns_none(self):
        a = CellSet(dataset_id="a", cells=frozenset({1, 2}))
        assert a.clipped_to({7, 8}) is None


class TestDatasetNode:
    def test_from_cells_builds_mbr_in_grid_coordinates(self):
        cells = {GRID.cell_id_from_coords(1, 1), GRID.cell_id_from_coords(4, 3)}
        node = DatasetNode.from_cells("d", cells, GRID)
        assert node.rect.as_tuple() == (1, 1, 4, 3)
        assert node.pivot == Point(2.5, 2.0)
        assert node.radius == pytest.approx(node.rect.radius)

    def test_empty_cells_rejected(self):
        with pytest.raises(EmptyDatasetError):
            DatasetNode.from_cells("d", set(), GRID)

    def test_from_dataset(self):
        dataset = SpatialDataset.from_coordinates("d", [(0.5, 0.5), (10.5, 20.5)])
        node = DatasetNode.from_dataset(dataset, GRID)
        assert node.dataset_id == "d"
        assert node.point_count == 2
        assert node.coverage == 2

    def test_overlap_with(self):
        node_a = DatasetNode.from_cells("a", {1, 2, 3}, GRID)
        node_b = DatasetNode.from_cells("b", {3, 4}, GRID)
        assert node_a.overlap_with(node_b) == 1
        assert node_a.overlap_with({1, 9}) == 1

    def test_as_cell_set(self):
        node = DatasetNode.from_cells("a", {1, 2}, GRID)
        assert node.as_cell_set().cells == frozenset({1, 2})

    def test_wire_payload_is_serialisable(self):
        node = DatasetNode.from_cells("a", {3, 1, 2}, GRID)
        payload = node.wire_payload()
        assert payload["id"] == "a"
        assert payload["cells"] == [1, 2, 3]
        assert len(payload["rect"]) == 4

    def test_merged_with_unions_everything(self):
        node_a = DatasetNode.from_cells("a", {GRID.cell_id_from_coords(0, 0)}, GRID)
        node_b = DatasetNode.from_cells("b", {GRID.cell_id_from_coords(5, 5)}, GRID)
        merged = node_a.merged_with(node_b, merged_id="m")
        assert merged.dataset_id == "m"
        assert merged.cells == node_a.cells | node_b.cells
        assert merged.rect.contains_box(node_a.rect)
        assert merged.rect.contains_box(node_b.rect)

    def test_from_cell_set_constructor(self):
        cell_set = CellSet(dataset_id="cs", cells=frozenset({5, 6}))
        node = DatasetNode.from_cell_set(cell_set, GRID)
        assert node.dataset_id == "cs"
        assert node.cells == cell_set.cells


class TestDatasetNodeProperties:
    cells_strategy = st.sets(
        st.integers(min_value=0, max_value=GRID.total_cells - 1), min_size=1, max_size=40
    )

    @given(cells_strategy)
    def test_coverage_equals_cell_count(self, cells):
        node = DatasetNode.from_cells("d", cells, GRID)
        assert node.coverage == len(cells)

    @given(cells_strategy, cells_strategy)
    def test_overlap_symmetry(self, cells_a, cells_b):
        node_a = DatasetNode.from_cells("a", cells_a, GRID)
        node_b = DatasetNode.from_cells("b", cells_b, GRID)
        assert node_a.overlap_with(node_b) == node_b.overlap_with(node_a)

    @given(cells_strategy, cells_strategy)
    def test_merge_coverage_is_union_size(self, cells_a, cells_b):
        node_a = DatasetNode.from_cells("a", cells_a, GRID)
        node_b = DatasetNode.from_cells("b", cells_b, GRID)
        merged = node_a.merged_with(node_b)
        assert merged.coverage == len(set(cells_a) | set(cells_b))
