"""Property tests: the Grid batch APIs match the scalar conversion paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox, Point
from repro.core.grid import WORLD_SPACE, Grid

finite_lon = st.floats(min_value=-200.0, max_value=200.0, allow_nan=False)
finite_lat = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
point_lists = st.lists(st.tuples(finite_lon, finite_lat), min_size=1, max_size=100)


class TestCellIdsOfBatch:
    @given(point_lists, st.integers(min_value=2, max_value=14))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_path(self, pairs, theta):
        """The batch discretisation equals the per-point scalar loop, even
        for points outside the data space (clamped to border cells)."""
        grid = Grid(theta=theta)
        scalar = {grid.cell_id_of(pair) for pair in pairs}
        batch = grid.cell_ids_of_batch(pairs)
        assert batch.tolist() == sorted(scalar)
        assert grid.cell_ids_of(pairs) == scalar

    def test_accepts_points_sequences_and_arrays(self):
        grid = Grid(theta=10)
        raw = [(12.5, 42.1), (-170.0, -89.9), (0.0, 0.0)]
        as_points = [Point(x, y) for x, y in raw]
        as_array = np.array(raw, dtype=np.float64)
        expected = grid.cell_ids_of_batch(raw).tolist()
        assert grid.cell_ids_of_batch(as_points).tolist() == expected
        assert grid.cell_ids_of_batch(as_array).tolist() == expected

    def test_mixed_input_kinds(self):
        grid = Grid(theta=8)
        mixed = [Point(1.0, 2.0), (3.0, 4.0)]
        assert grid.cell_ids_of_batch(mixed).tolist() == sorted(
            {grid.cell_id_of(p) for p in mixed}
        )

    def test_empty_input(self):
        grid = Grid(theta=8)
        assert grid.cell_ids_of_batch([]).size == 0
        assert grid.cell_ids_of([]) == set()

    def test_result_is_sorted_unique(self):
        grid = Grid(theta=4, space=BoundingBox(0, 0, 16, 16))
        batch = grid.cell_ids_of_batch([(1.5, 1.5), (1.5, 1.5), (0.5, 0.5)])
        assert batch.tolist() == sorted(set(batch.tolist()))


class TestCellsToCoordsBatch:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_decode(self, cells):
        grid = Grid(theta=10)
        cols, rows = grid.cells_to_coords_batch(np.array(cells, dtype=np.int64))
        expected = [grid.coords_of_cell(cell) for cell in cells]
        assert list(zip(cols.tolist(), rows.tolist())) == expected

    def test_rejects_out_of_grid_cells(self):
        grid = Grid(theta=4)
        with pytest.raises(InvalidParameterError):
            grid.cells_to_coords_batch(np.array([grid.total_cells], dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            grid.cells_to_coords_batch(np.array([-1], dtype=np.int64))


class TestNonFiniteAndExtremeCoordinates:
    def test_nan_coordinates_raise(self):
        grid = Grid(theta=10)
        with pytest.raises(ValueError):
            grid.cell_ids_of_batch([(float("nan"), 0.0)])
        with pytest.raises(ValueError):
            grid.cell_ids_of_batch([(0.0, float("inf"))])

    def test_astronomically_large_values_clamp_to_far_border(self):
        grid = Grid(theta=10)
        # Must match the scalar clamp (no int64 overflow to the wrong side).
        for point in [(1e300, 0.0), (-1e300, 0.0), (0.0, 1e300)]:
            assert grid.cell_ids_of_batch([point]).tolist() == [grid.cell_id_of(point)]


class TestWorldSpaceClamping:
    def test_out_of_range_points_clamp_to_borders(self):
        grid = Grid(theta=6)
        outside = [(-1000.0, 0.0), (1000.0, 0.0), (0.0, -1000.0), (0.0, 1000.0)]
        batch = set(grid.cell_ids_of_batch(outside).tolist())
        scalar = {grid.cell_id_of(p) for p in outside}
        assert batch == scalar
        assert WORLD_SPACE.width > 0  # sanity: default space in use


class TestCellCentersOfBatch:
    @given(point_lists, st.integers(min_value=2, max_value=14))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_cell_center(self, pairs, theta):
        """Batch-decoded centres are bit-identical to the scalar path."""
        grid = Grid(theta=theta)
        cell_ids = grid.cell_ids_of_batch(pairs)
        xs, ys = grid.cell_centers_of_batch(cell_ids)
        for cell_id, x, y in zip(cell_ids.tolist(), xs.tolist(), ys.tolist()):
            center = grid.cell_center(cell_id)
            assert (x, y) == (center.x, center.y)

    def test_empty_vector(self):
        grid = Grid(theta=6)
        xs, ys = grid.cell_centers_of_batch(np.empty(0, dtype=np.int64))
        assert xs.size == 0 and ys.size == 0

    def test_invalid_cell_rejected(self):
        grid = Grid(theta=2)
        with pytest.raises(InvalidParameterError):
            grid.cell_centers_of_batch(np.array([grid.total_cells], dtype=np.int64))
