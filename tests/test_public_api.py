"""Tests for the package's public API surface and documentation discipline."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.dataset",
    "repro.core.grid",
    "repro.core.geometry",
    "repro.core.distance",
    "repro.core.distance_engine",
    "repro.core.connectivity",
    "repro.core.problems",
    "repro.index",
    "repro.index.dits",
    "repro.index.dits_global",
    "repro.index.dits_global_sharded",
    "repro.search",
    "repro.search.overlap",
    "repro.search.coverage",
    "repro.distributed",
    "repro.distributed.framework",
    "repro.data",
    "repro.bench",
    "repro.cli",
]


class TestExports:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_importable_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_every_submodule_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ and module.__doc__.strip()):
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"


class TestApiConventions:
    def test_search_classes_share_interface(self):
        from repro.search import (
            BruteForceOverlap,
            JosieOverlap,
            OverlapSearch,
            QuadTreeOverlap,
            RTreeOverlap,
            STS3Overlap,
        )

        for cls in (OverlapSearch, RTreeOverlap, JosieOverlap, QuadTreeOverlap, STS3Overlap, BruteForceOverlap):
            assert hasattr(cls, "search")
            assert hasattr(cls, "search_node")
            assert isinstance(cls.name, str)

    def test_coverage_classes_share_interface(self):
        from repro.search import CoverageSearch, StandardGreedy, StandardGreedyWithDITS

        for cls in (CoverageSearch, StandardGreedy, StandardGreedyWithDITS):
            assert hasattr(cls, "search")
            assert hasattr(cls, "search_node")

    def test_index_registry_consistent(self):
        from repro.index import DATASET_INDEX_CLASSES
        from repro.index.base import DatasetIndex

        for name, cls in DATASET_INDEX_CLASSES.items():
            assert issubclass(cls, DatasetIndex)
            assert cls.name == name or cls.name in name or name in cls.name
