"""Edge-case behaviour shared by both DITS-G variants.

Every test runs against the monolithic index and several sharded
configurations (single shard, many shards, deferred rebuilds), so the two
implementations cannot drift apart on the awkward inputs: empty indexes,
every summary landing in one shard, re-registering an existing source and
unregistering the last one.
"""

from __future__ import annotations

import pytest

from repro.core.errors import IndexNotBuiltError, SourceNotFoundError
from repro.core.geometry import BoundingBox
from repro.index.dits_global import DITSGlobalIndex, SourceSummary
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy

VARIANTS = {
    "monolithic": lambda: DITSGlobalIndex(leaf_capacity=2),
    "sharded-1": lambda: ShardedDITSGlobalIndex(ShardPolicy(shard_count=1), leaf_capacity=2),
    "sharded-5": lambda: ShardedDITSGlobalIndex(ShardPolicy(shard_count=5), leaf_capacity=2),
    "sharded-16-deferred": lambda: ShardedDITSGlobalIndex(
        ShardPolicy(shard_count=16, defer_rebuild=True), leaf_capacity=2
    ),
}


@pytest.fixture(params=sorted(VARIANTS), ids=sorted(VARIANTS))
def index(request):
    return VARIANTS[request.param]()


def summary(source_id: str, min_x, min_y, max_x, max_y, count=5) -> SourceSummary:
    return SourceSummary(
        source_id=source_id, rect=BoundingBox(min_x, min_y, max_x, max_y), dataset_count=count
    )


EVERYWHERE = BoundingBox(-180.0, -90.0, 180.0, 90.0)


class TestEmptyIndex:
    def test_no_candidates(self, index):
        assert index.candidate_sources(BoundingBox(0, 0, 1, 1)) == []
        assert index.candidate_sources(BoundingBox(0, 0, 1, 1), delta_geo=50.0) == []

    def test_registry_empty(self, index):
        assert len(index) == 0
        assert index.source_ids() == []
        assert list(index.all_summaries()) == []
        assert index.node_count() == 0
        assert "anything" not in index

    def test_root_raises(self, index):
        with pytest.raises(IndexNotBuiltError):
            _ = index.root

    def test_unregister_unknown_raises(self, index):
        with pytest.raises(SourceNotFoundError):
            index.unregister("ghost")

    def test_summary_of_unknown_raises(self, index):
        with pytest.raises(SourceNotFoundError):
            index.summary_of("ghost")


class TestLastSource:
    def test_unregister_last_source_empties_index(self, index):
        index.register(summary("only", 0, 0, 2, 2))
        assert index.candidate_sources(BoundingBox(1, 1, 3, 3)) != []
        index.unregister("only")
        assert len(index) == 0
        assert index.candidate_sources(BoundingBox(1, 1, 3, 3)) == []
        assert index.node_count() == 0
        with pytest.raises(IndexNotBuiltError):
            _ = index.root
        # The index remains usable after being emptied.
        index.register(summary("again", 5, 5, 6, 6))
        assert [s.source_id for s in index.candidate_sources(EVERYWHERE)] == ["again"]


class TestReRegistration:
    def test_re_register_updates_in_place(self, index):
        index.register(summary("dup", 0, 0, 1, 1, count=3))
        index.register(summary("dup", 10, 10, 11, 11, count=9))
        assert len(index) == 1
        assert index.summary_of("dup").dataset_count == 9
        # The old region no longer matches; the new one does.
        assert index.candidate_sources(BoundingBox(-1, -1, 2, 2)) == []
        hits = index.candidate_sources(BoundingBox(9, 9, 12, 12))
        assert [s.source_id for s in hits] == ["dup"]

    def test_re_register_same_rect_is_idempotent(self, index):
        s = summary("same", 0, 0, 4, 4)
        index.register(s)
        index.register(s)
        assert len(index) == 1
        assert [c.source_id for c in index.candidate_sources(EVERYWHERE)] == ["same"]


class TestDegenerateDistributions:
    def test_coincident_pivots_land_together(self, index):
        # Identical MBRs -> identical pivots; in a sharded index they all
        # land in one shard, every other shard stays empty.
        for i in range(10):
            index.register(summary(f"stack{i}", 7, 7, 9, 9))
        hits = index.candidate_sources(BoundingBox(8, 8, 8.5, 8.5))
        assert [s.source_id for s in hits] == [f"stack{i}" for i in range(10)]
        if isinstance(index, ShardedDITSGlobalIndex):
            sizes = index.shard_sizes()
            assert sorted(sizes, reverse=True)[0] == 10
            assert sum(1 for size in sizes if size) == 1

    def test_more_shards_than_sources(self, index):
        index.register(summary("a", 0, 0, 1, 1))
        index.register(summary("b", 50, 50, 51, 51))
        hits = index.candidate_sources(EVERYWHERE)
        assert [s.source_id for s in hits] == ["a", "b"]
        if isinstance(index, ShardedDITSGlobalIndex):
            assert sum(index.shard_sizes()) == 2

    def test_delta_reaches_across_empty_space(self, index):
        index.register(summary("west", 0, 0, 1, 1))
        index.register(summary("east", 30, 0, 31, 1))
        near_west = BoundingBox(3, 0, 4, 1)
        assert index.candidate_sources(near_west) == []
        reached = index.candidate_sources(near_west, delta_geo=5.0)
        assert [s.source_id for s in reached] == ["west"]
        both = index.candidate_sources(near_west, delta_geo=40.0)
        assert [s.source_id for s in both] == ["east", "west"]
