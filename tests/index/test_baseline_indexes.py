"""Tests for the QuadTree, R-tree, STS3 and Josie baseline indexes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.errors import DatasetNotFoundError, InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.inverted import STS3Index
from repro.index.josie import JosieIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def random_nodes(count: int, seed: int = 0) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, 230)), int(rng.integers(0, 230))
        coords = {(ox + int(rng.integers(0, 15)), oy + int(rng.integers(0, 15))) for _ in range(8)}
        nodes.append(node(f"ds-{i}", coords))
    return nodes


class TestQuadTree:
    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            QuadTreeIndex(capacity=0)

    def test_build_and_occurrence_count(self):
        nodes = random_nodes(10, seed=1)
        index = QuadTreeIndex()
        index.build(nodes)
        assert index.total_occurrences() == sum(len(n.cells) for n in nodes)
        assert index.node_count() >= 1

    def test_occurrences_in_region(self):
        a = node("a", {(0, 0), (1, 1)})
        b = node("b", {(100, 100)})
        index = QuadTreeIndex()
        index.build([a, b])
        found = list(index.occurrences_in(BoundingBox(-1, -1, 5, 5)))
        assert {dataset_id for _, dataset_id in found} == {"a"}

    def test_insert_and_delete(self):
        nodes = random_nodes(8, seed=2)
        index = QuadTreeIndex()
        index.build(nodes[:5])
        for extra in nodes[5:]:
            index.insert(extra)
        assert len(index) == 8
        index.delete("ds-0")
        assert len(index) == 7
        found_ids = {dataset_id for _, dataset_id in index.occurrences_in(BoundingBox(0, 0, 256, 256))}
        assert "ds-0" not in found_ids

    def test_subdivision_respects_capacity_until_max_depth(self):
        dense = [node(f"dense-{i}", {(5, 5)}) for i in range(12)]
        index = QuadTreeIndex(capacity=2)
        index.build(dense)
        # All items share one cell so depth capping must terminate subdivision.
        assert index.node_count() >= 1
        assert len(list(index.occurrences_in(BoundingBox(0, 0, 10, 10)))) == 12

    def test_empty_build(self):
        index = QuadTreeIndex()
        index.build([])
        assert index.node_count() == 0
        assert list(index.occurrences_in(BoundingBox(0, 0, 1, 1))) == []


class TestRTree:
    def test_invalid_fanout(self):
        with pytest.raises(InvalidParameterError):
            RTreeIndex(max_entries=1)

    def test_bulk_load_contains_everything(self):
        nodes = random_nodes(40, seed=3)
        index = RTreeIndex(max_entries=4)
        index.build(nodes)
        found = {n.dataset_id for n in index.intersecting(BoundingBox(0, 0, 256, 256))}
        assert found == {n.dataset_id for n in nodes}

    def test_intersecting_filters_by_mbr(self):
        a = node("a", {(0, 0), (5, 5)})
        b = node("b", {(200, 200), (210, 210)})
        index = RTreeIndex()
        index.build([a, b])
        found = {n.dataset_id for n in index.intersecting(BoundingBox(0, 0, 10, 10))}
        assert found == {"a"}

    def test_mbr_invariant_after_bulk_load(self):
        nodes = random_nodes(30, seed=4)
        index = RTreeIndex(max_entries=4)
        index.build(nodes)

        def check(tree_node):
            if tree_node.is_leaf():
                for entry in tree_node.entries:
                    assert tree_node.rect.contains_box(entry.rect)
            else:
                for child in tree_node.children:
                    assert tree_node.rect.contains_box(child.rect)
                    check(child)

        assert index.root is not None
        check(index.root)

    def test_insert_overflow_splits(self):
        index = RTreeIndex(max_entries=3)
        index.build(random_nodes(3, seed=5))
        for extra in random_nodes(9, seed=6):
            renamed = DatasetNode(
                dataset_id="x-" + extra.dataset_id,
                rect=extra.rect,
                cells=extra.cells,
                point_count=extra.point_count,
            )
            index.insert(renamed)
        assert len(index) == 12
        found = {n.dataset_id for n in index.intersecting(BoundingBox(0, 0, 256, 256))}
        assert len(found) == 12

    def test_delete(self):
        nodes = random_nodes(10, seed=7)
        index = RTreeIndex(max_entries=4)
        index.build(nodes)
        index.delete("ds-3")
        found = {n.dataset_id for n in index.intersecting(BoundingBox(0, 0, 256, 256))}
        assert "ds-3" not in found
        assert len(found) == 9
        with pytest.raises(DatasetNotFoundError):
            index.delete("ds-3")

    def test_within_distance(self):
        a = node("a", {(0, 0)})
        b = node("b", {(50, 0)})
        index = RTreeIndex()
        index.build([a, b])
        near = {n.dataset_id for n in index.within_distance(BoundingBox(10, 0, 11, 1), 5.0)}
        assert near == set()
        near = {n.dataset_id for n in index.within_distance(BoundingBox(10, 0, 11, 1), 15.0)}
        assert near == {"a"}

    def test_update_changes_node(self):
        nodes = random_nodes(6, seed=8)
        index = RTreeIndex(max_entries=4)
        index.build(nodes)
        replacement = node("ds-2", {(250, 250)})
        index.update(replacement)
        found = {n.dataset_id for n in index.intersecting(BoundingBox(245, 245, 256, 256))}
        assert "ds-2" in found


class TestSTS3:
    def test_posting_lists(self):
        a = node("a", {(0, 0), (1, 1)})
        b = node("b", {(1, 1)})
        index = STS3Index()
        index.build([a, b])
        shared_cell = GRID.cell_id_from_coords(1, 1)
        assert index.posting_list(shared_cell) == {"a", "b"}
        assert index.posting_list(GRID.cell_id_from_coords(99, 99)) == set()

    def test_overlap_counts(self):
        a = node("a", {(0, 0), (1, 1), (2, 2)})
        b = node("b", {(1, 1), (9, 9)})
        index = STS3Index()
        index.build([a, b])
        counts = index.overlap_counts(a.cells)
        assert counts["a"] == 3
        assert counts["b"] == 1

    def test_insert_delete_round_trip(self):
        nodes = random_nodes(6, seed=9)
        index = STS3Index()
        index.build(nodes[:4])
        index.insert(nodes[4])
        index.insert(nodes[5])
        assert index.posting_count() == sum(len(n.cells) for n in nodes)
        index.delete("ds-5")
        assert "ds-5" not in index
        counts = index.overlap_counts(nodes[5].cells)
        assert "ds-5" not in counts

    def test_distinct_cells(self):
        a = node("a", {(0, 0)})
        b = node("b", {(0, 0), (1, 0)})
        index = STS3Index()
        index.build([a, b])
        assert index.distinct_cells() == 2
        assert index.posting_count() == 3


class TestJosie:
    def test_postings_sorted_by_size(self):
        small = node("small", {(0, 0)})
        big = node("big", {(0, 0), (1, 1), (2, 2)})
        index = JosieIndex()
        index.build([big, small])
        postings = index.posting_list(GRID.cell_id_from_coords(0, 0))
        assert [p.dataset_id for p in postings] == ["small", "big"]
        assert postings[1].size == 3

    def test_token_frequency(self):
        a = node("a", {(0, 0)})
        b = node("b", {(0, 0)})
        index = JosieIndex()
        index.build([a, b])
        assert index.token_frequency(GRID.cell_id_from_coords(0, 0)) == 2
        assert index.token_frequency(GRID.cell_id_from_coords(9, 9)) == 0

    def test_top_k_matches_brute_force(self):
        nodes = random_nodes(30, seed=10)
        index = JosieIndex()
        index.build(nodes)
        for query in nodes[:5]:
            expected = sorted(
                (
                    (n.dataset_id, len(n.cells & query.cells))
                    for n in nodes
                    if n.cells & query.cells
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )[:5]
            got = index.top_k_overlap(query.cells, 5)
            assert [score for _, score in got] == [score for _, score in expected]

    def test_empty_query(self):
        index = JosieIndex()
        index.build(random_nodes(3, seed=11))
        assert index.top_k_overlap([], 3) == []

    def test_insert_and_delete_keep_results_exact(self):
        nodes = random_nodes(12, seed=12)
        index = JosieIndex()
        index.build(nodes[:8])
        for extra in nodes[8:]:
            index.insert(extra)
        index.delete("ds-1")
        remaining = [n for n in nodes if n.dataset_id != "ds-1"]
        query = nodes[2]
        expected = sorted(
            (
                (n.dataset_id, len(n.cells & query.cells))
                for n in remaining
                if n.cells & query.cells
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )[:4]
        assert [s for _, s in index.top_k_overlap(query.cells, 4)] == [s for _, s in expected]

    def test_posting_count(self):
        nodes = random_nodes(5, seed=13)
        index = JosieIndex()
        index.build(nodes)
        assert index.posting_count() == sum(len(n.cells) for n in nodes)


class TestCrossIndexConsistency:
    """All indexes must agree on membership-level bookkeeping."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=500))
    def test_all_indexes_report_same_len(self, count, seed):
        nodes = random_nodes(count, seed=seed)
        for index_cls in (QuadTreeIndex, RTreeIndex, STS3Index, JosieIndex):
            index = index_cls()
            index.build(nodes)
            assert len(index) == count
            assert sorted(index.dataset_ids()) == sorted(n.dataset_id for n in nodes)
