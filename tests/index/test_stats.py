"""Tests for index memory accounting (Fig. 8 right)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index import DATASET_INDEX_CLASSES
from repro.index.dits_global import DITSGlobalIndex, SourceSummary
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy
from repro.index.stats import global_index_stats, index_memory_bytes

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def random_nodes(count: int, cells_per_node: int, seed: int = 0) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, 200)), int(rng.integers(0, 200))
        coords = {
            GRID.cell_id_from_coords(ox + int(rng.integers(0, 30)), oy + int(rng.integers(0, 30)))
            for _ in range(cells_per_node)
        }
        nodes.append(DatasetNode.from_cells(f"ds-{i}", coords, GRID))
    return nodes


class TestIndexMemory:
    def test_positive_for_all_indexes(self):
        nodes = random_nodes(25, 10, seed=1)
        for name, index_cls in DATASET_INDEX_CLASSES.items():
            index = index_cls()
            index.build(nodes)
            assert index_memory_bytes(index) > 0, name

    def test_memory_grows_with_cell_count(self):
        # Every cell-storing index must grow when datasets cover more cells;
        # the R-tree stores only MBRs and entry references, so it is exempt.
        small = random_nodes(25, 5, seed=2)
        large = random_nodes(25, 25, seed=2)
        for name, index_cls in DATASET_INDEX_CLASSES.items():
            if name == "Rtree":
                continue
            index_small = index_cls()
            index_small.build(small)
            index_large = index_cls()
            index_large.build(large)
            assert index_memory_bytes(index_large) > index_memory_bytes(index_small), name

    def test_relative_ordering_matches_cost_model(self):
        # Fig. 8 shape under our cost model: QuadTree (one item per cell
        # occurrence plus O(N) tree nodes) is the largest; among the
        # inverted-index family STS3 is cheaper than Josie because its
        # postings carry no position/size metadata; DITS-L outweighs the
        # plain R-tree because its leaves add the inverted index.
        nodes = random_nodes(60, 20, seed=3)
        sizes = {}
        for name, index_cls in DATASET_INDEX_CLASSES.items():
            index = index_cls()
            index.build(nodes)
            sizes[name] = index_memory_bytes(index)
        assert sizes["QuadTree"] == max(sizes.values())
        assert sizes["STS3"] < sizes["Josie"]
        assert sizes["DITS-L"] > sizes["Rtree"]

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            index_memory_bytes(object())  # type: ignore[arg-type]

    def test_empty_dits_is_zero(self):
        from repro.index.dits import DITSLocalIndex

        index = DITSLocalIndex()
        index.build([])
        assert index_memory_bytes(index) == 0


def global_summaries(count: int) -> list[SourceSummary]:
    return [
        SourceSummary(f"g{i}", BoundingBox(i * 5.0, 0.0, i * 5.0 + 2.0, 2.0), 10)
        for i in range(count)
    ]


class TestGlobalIndexStats:
    def test_monolithic_stats(self):
        index = DITSGlobalIndex(leaf_capacity=2)
        index.register_all(global_summaries(6))
        stats = global_index_stats(index)
        assert stats["variant"] == "monolithic"
        assert stats["sources"] == 6
        assert stats["tree_nodes"] == index.node_count() > 1
        assert stats["rebuilds"] == 1  # node_count forced the single build
        assert stats["memory_bytes"] > 0
        assert "shard_count" not in stats

    def test_sharded_stats(self):
        index = ShardedDITSGlobalIndex(ShardPolicy(shard_count=4), leaf_capacity=2)
        index.register_all(global_summaries(8))
        stats = global_index_stats(index)
        assert stats["variant"] == "sharded"
        assert stats["sources"] == 8
        assert stats["shard_count"] == 4
        assert sum(stats["shard_sizes"]) == 8
        assert stats["tree_nodes"] == index.node_count()
        assert stats["rebuilds"] >= 1
        assert stats["memory_bytes"] > 0

    def test_empty_indexes(self):
        for index in (DITSGlobalIndex(), ShardedDITSGlobalIndex()):
            stats = global_index_stats(index)
            assert stats["sources"] == 0
            assert stats["tree_nodes"] == 0
            assert stats["memory_bytes"] == 0
