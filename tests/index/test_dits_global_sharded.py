"""Differential parity suite: sharded DITS-G must equal the monolith bit-for-bit.

The sharded global index is a pure scalability refactor — for every shard
count, every churn sequence and every query, ``candidate_sources`` must
return *exactly* the ordered list the monolithic index returns.  These tests
drive both variants through seeded random summary sets and
register/unregister churn sequences (the pattern that kept PR 1's cell-set
backends and PR 2's dispatch modes bit-identical) and additionally pin both
variants against a brute-force flat filter, so a bug in the shared tree
traversal cannot hide by breaking both sides the same way.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.distributed.executor import ExecutionPolicy, SourceDispatcher
from repro.index.dits_global import (
    DITSGlobalIndex,
    SourceSummary,
    summary_may_contain,
)
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy

SHARD_COUNTS = (1, 2, 7, 16)

#: Mixed-scale region: clustered sources plus a few continent-wide ones.
REGION = BoundingBox(-120.0, 10.0, -60.0, 55.0)


def random_summary(rng: np.random.Generator, ident: int) -> SourceSummary:
    """A random source summary; occasionally degenerate (point-like MBR)."""
    cx = rng.uniform(REGION.min_x, REGION.max_x)
    cy = rng.uniform(REGION.min_y, REGION.max_y)
    if rng.random() < 0.1:
        half_w = half_h = 0.0
    elif rng.random() < 0.2:
        half_w, half_h = rng.uniform(10.0, 40.0, size=2)
    else:
        half_w, half_h = rng.uniform(0.1, 3.0, size=2)
    return SourceSummary(
        source_id=f"s{ident:04d}",
        rect=BoundingBox(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
        dataset_count=int(rng.integers(1, 500)),
    )


def random_query_rects(rng: np.random.Generator, count: int) -> list[BoundingBox]:
    rects = []
    for _ in range(count):
        cx = rng.uniform(REGION.min_x - 20, REGION.max_x + 20)
        cy = rng.uniform(REGION.min_y - 20, REGION.max_y + 20)
        half_w, half_h = rng.uniform(0.05, 8.0, size=2)
        rects.append(BoundingBox(cx - half_w, cy - half_h, cx + half_w, cy + half_h))
    return rects


DELTAS = (0.0, 0.75, 12.0)


def ordered_ids(candidates) -> list[str]:
    return [summary.source_id for summary in candidates]


def flat_reference(index: DITSGlobalIndex, rect: BoundingBox, delta: float) -> list[str]:
    """Brute-force candidate list straight from the pruning predicate."""
    pivot, radius = rect.center, rect.radius
    return [
        s.source_id
        for s in index.all_summaries()
        if summary_may_contain(s.rect, rect, pivot, radius, delta)
    ]


def assert_parity(mono: DITSGlobalIndex, sharded: ShardedDITSGlobalIndex, queries, check_flat=True):
    for rect in queries:
        for delta in DELTAS:
            expected = mono.candidate_sources(rect, delta)
            actual = sharded.candidate_sources(rect, delta)
            assert ordered_ids(actual) == ordered_ids(expected)
            assert actual == expected  # full summaries, not just IDs
            if check_flat:
                assert ordered_ids(expected) == flat_reference(mono, rect, delta)


# ---------------------------------------------------------------------- #
# Seeded differential parity: bulk registration
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
@pytest.mark.parametrize("seed", [3, 17])
class TestBulkParity:
    def test_bulk_registration_parity(self, shard_count, seed):
        rng = np.random.default_rng(seed)
        summaries = [random_summary(rng, i) for i in range(80)]
        mono = DITSGlobalIndex(leaf_capacity=4)
        sharded = ShardedDITSGlobalIndex(
            ShardPolicy(shard_count=shard_count), leaf_capacity=4
        )
        mono.register_all(summaries)
        sharded.register_all(summaries)
        assert len(sharded) == len(mono) == 80
        assert sharded.source_ids() == mono.source_ids()
        assert_parity(mono, sharded, random_query_rects(rng, 12))

    def test_deferred_mode_parity(self, shard_count, seed):
        rng = np.random.default_rng(seed + 1000)
        summaries = [random_summary(rng, i) for i in range(40)]
        mono = DITSGlobalIndex(leaf_capacity=4)
        sharded = ShardedDITSGlobalIndex(
            ShardPolicy(shard_count=shard_count, defer_rebuild=True), leaf_capacity=4
        )
        mono.register_all(summaries)
        sharded.register_all(summaries)
        # Deferred mode has not built anything yet.
        assert sharded.rebuild_count == 0
        assert_parity(mono, sharded, random_query_rects(rng, 8))
        assert sharded.rebuild_count > 0


# ---------------------------------------------------------------------- #
# Seeded differential parity: register/unregister churn sequences
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
@pytest.mark.parametrize("seed", [5, 23])
class TestChurnParity:
    def test_churn_sequence_parity(self, shard_count, seed):
        rng = np.random.default_rng(seed)
        mono = DITSGlobalIndex(leaf_capacity=4)
        sharded = ShardedDITSGlobalIndex(
            ShardPolicy(shard_count=shard_count), leaf_capacity=4
        )
        live: list[str] = []
        next_id = 0
        queries = random_query_rects(rng, 4)
        for step in range(120):
            op = rng.random()
            if op < 0.55 or not live:
                summary = random_summary(rng, next_id)
                next_id += 1
                live.append(summary.source_id)
                mono.register(summary)
                sharded.register(summary)
            elif op < 0.8:
                # Refresh an existing source with a brand-new rect: the new
                # pivot may migrate it to a different shard.
                victim = live[int(rng.integers(len(live)))]
                refreshed = SourceSummary(
                    source_id=victim,
                    rect=random_summary(rng, 0).rect,
                    dataset_count=int(rng.integers(1, 500)),
                )
                mono.register(refreshed)
                sharded.register(refreshed)
            else:
                victim = live.pop(int(rng.integers(len(live))))
                mono.unregister(victim)
                sharded.unregister(victim)
            if step % 15 == 0:
                assert_parity(mono, sharded, queries, check_flat=False)
        assert sharded.source_ids() == mono.source_ids()
        assert sum(sharded.shard_sizes()) == len(mono)
        assert_parity(mono, sharded, random_query_rects(rng, 10))

    def test_parallel_dispatch_parity(self, shard_count, seed):
        """Fanning shard pruning over a thread pool changes nothing."""
        rng = np.random.default_rng(seed + 7)
        summaries = [random_summary(rng, i) for i in range(60)]
        serial = ShardedDITSGlobalIndex(
            ShardPolicy(shard_count=shard_count), leaf_capacity=4
        )
        with SourceDispatcher(ExecutionPolicy(max_workers=4)) as dispatcher:
            parallel = ShardedDITSGlobalIndex(
                ShardPolicy(shard_count=shard_count),
                leaf_capacity=4,
                dispatcher=dispatcher,
                parallel_threshold=1,
            )
            serial.register_all(summaries)
            parallel.register_all(summaries)
            for rect in random_query_rects(rng, 10):
                for delta in DELTAS:
                    assert parallel.candidate_sources(rect, delta) == serial.candidate_sources(
                        rect, delta
                    )


# ---------------------------------------------------------------------- #
# Hypothesis: arbitrary float geometry cannot break parity
# ---------------------------------------------------------------------- #
coord = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False, width=32)
extent = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, width=32)


@st.composite
def summary_sets(draw):
    count = draw(st.integers(min_value=1, max_value=24))
    summaries = []
    for i in range(count):
        x, y = draw(coord), draw(coord)
        w, h = draw(extent), draw(extent)
        summaries.append(
            SourceSummary(f"h{i}", BoundingBox(x, y - h, x + w, y), dataset_count=1)
        )
    return summaries


@given(
    summaries=summary_sets(),
    qx=coord,
    qy=coord,
    qw=extent,
    delta=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    shard_count=st.sampled_from(SHARD_COUNTS),
)
@settings(max_examples=40, deadline=None)
def test_property_parity(summaries, qx, qy, qw, delta, shard_count):
    mono = DITSGlobalIndex(leaf_capacity=3)
    sharded = ShardedDITSGlobalIndex(ShardPolicy(shard_count=shard_count), leaf_capacity=3)
    mono.register_all(summaries)
    sharded.register_all(summaries)
    rect = BoundingBox(qx, qy, qx + qw, qy + qw)
    expected = mono.candidate_sources(rect, delta)
    assert sharded.candidate_sources(rect, delta) == expected
    assert ordered_ids(expected) == flat_reference(mono, rect, delta)


# ---------------------------------------------------------------------- #
# ShardPolicy behaviour
# ---------------------------------------------------------------------- #
class TestShardPolicy:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            ShardPolicy(shard_count=0)
        with pytest.raises(InvalidParameterError):
            ShardPolicy(zorder_bits=0)
        with pytest.raises(InvalidParameterError):
            ShardPolicy(zorder_bits=17)

    def test_single_shard_maps_everything_to_zero(self):
        policy = ShardPolicy(shard_count=1)
        rng = np.random.default_rng(0)
        assert all(policy.shard_of(random_summary(rng, i)) == 0 for i in range(20))

    def test_shards_within_range_and_deterministic(self):
        policy = ShardPolicy(shard_count=7)
        rng = np.random.default_rng(1)
        for i in range(50):
            summary = random_summary(rng, i)
            shard = policy.shard_of(summary)
            assert 0 <= shard < 7
            assert policy.shard_of(summary) == shard

    def test_out_of_space_pivots_are_clamped(self):
        policy = ShardPolicy(shard_count=4)
        far = SourceSummary("far", BoundingBox(500.0, 500.0, 501.0, 501.0), 1)
        assert 0 <= policy.shard_of(far) < 4

    def test_distinct_regions_use_multiple_shards(self):
        policy = ShardPolicy(shard_count=16)
        rng = np.random.default_rng(2)
        shards = {policy.shard_of(random_summary(rng, i)) for i in range(200)}
        assert len(shards) > 1

    def test_pivot_move_migrates_shard(self):
        policy = ShardPolicy(shard_count=16)
        index = ShardedDITSGlobalIndex(policy)
        west = SourceSummary("roam", BoundingBox(-170.0, -80.0, -169.0, -79.0), 1)
        east = SourceSummary("roam", BoundingBox(169.0, 79.0, 170.0, 80.0), 1)
        assert policy.shard_of(west) != policy.shard_of(east)
        index.register(west)
        before = index.shard_of("roam")
        index.register(east)
        after = index.shard_of("roam")
        assert before != after
        assert len(index) == 1
        assert sum(index.shard_sizes()) == 1
        # The old shard no longer answers for the migrated source.
        hits = index.candidate_sources(BoundingBox(-171.0, -81.0, -168.0, -78.0))
        assert hits == []
        hits = index.candidate_sources(BoundingBox(168.0, 78.0, 171.0, 81.0))
        assert ordered_ids(hits) == ["roam"]


# ---------------------------------------------------------------------- #
# Incremental registration: only the touched shard rebuilds
# ---------------------------------------------------------------------- #
class TestIncrementalRebuilds:
    def test_register_touches_single_shard(self):
        rng = np.random.default_rng(9)
        index = ShardedDITSGlobalIndex(ShardPolicy(shard_count=8), leaf_capacity=4)
        index.register_all(random_summary(rng, i) for i in range(64))
        populated = sum(1 for size in index.shard_sizes() if size)
        baseline = index.rebuild_count
        assert baseline == populated  # one build per populated shard
        index.register(random_summary(rng, 1000))
        assert index.rebuild_count == baseline + 1  # exactly one shard rebuilt

    def test_deferred_churn_batches_rebuilds(self):
        rng = np.random.default_rng(10)
        index = ShardedDITSGlobalIndex(
            ShardPolicy(shard_count=8, defer_rebuild=True), leaf_capacity=4
        )
        index.register_all(random_summary(rng, i) for i in range(64))
        for i in range(64, 96):
            index.register(random_summary(rng, i))
        assert index.rebuild_count == 0
        index.candidate_sources(BoundingBox(*REGION.as_tuple()))
        first_query = index.rebuild_count
        assert first_query == sum(1 for size in index.shard_sizes() if size)
        index.candidate_sources(BoundingBox(*REGION.as_tuple()))
        assert index.rebuild_count == first_query  # clean shards stay built
