"""Tests for the DITS-L local index (construction, structure, maintenance)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.errors import (
    DatasetNotFoundError,
    IndexNotBuiltError,
    InvalidParameterError,
)
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex, InternalNode, LeafNode, _median_split

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID)


def random_nodes(count: int, seed: int = 0, cells_per_node: int = 6) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        origin_x = int(rng.integers(0, 240))
        origin_y = int(rng.integers(0, 240))
        coords = {
            (origin_x + int(rng.integers(0, 12)), origin_y + int(rng.integers(0, 12)))
            for _ in range(cells_per_node)
        }
        nodes.append(node(f"ds-{i}", coords))
    return nodes


def collect_leaf_ids(index: DITSLocalIndex) -> list[str]:
    ids: list[str] = []
    for leaf in index.leaves():
        ids.extend(leaf.dataset_ids())
    return ids


class TestConstruction:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            DITSLocalIndex(leaf_capacity=0)

    def test_empty_index(self):
        index = DITSLocalIndex()
        index.build([])
        assert len(index) == 0
        assert not index.is_built()
        with pytest.raises(IndexNotBuiltError):
            _ = index.root

    def test_single_dataset_is_single_leaf(self):
        index = DITSLocalIndex(leaf_capacity=4)
        index.build([node("only", {(1, 1)})])
        assert index.is_built()
        assert index.root.is_leaf()
        assert index.height() == 1
        assert index.node_count() == 1

    def test_every_dataset_lands_in_exactly_one_leaf(self):
        nodes = random_nodes(40, seed=1)
        index = DITSLocalIndex(leaf_capacity=5)
        index.build(nodes)
        leaf_ids = collect_leaf_ids(index)
        assert sorted(leaf_ids) == sorted(n.dataset_id for n in nodes)

    def test_leaf_capacity_respected_after_build(self):
        nodes = random_nodes(60, seed=2)
        index = DITSLocalIndex(leaf_capacity=7)
        index.build(nodes)
        for leaf in index.leaves():
            assert len(leaf) <= 7

    def test_internal_rects_enclose_children(self):
        nodes = random_nodes(50, seed=3)
        index = DITSLocalIndex(leaf_capacity=6)
        index.build(nodes)

        def check(tree_node):
            if isinstance(tree_node, InternalNode):
                assert tree_node.rect.contains_box(tree_node.left.rect)
                assert tree_node.rect.contains_box(tree_node.right.rect)
                check(tree_node.left)
                check(tree_node.right)
            else:
                assert isinstance(tree_node, LeafNode)
                for entry in tree_node.entries:
                    assert tree_node.rect.contains_box(entry.rect)

        check(index.root)

    def test_parent_pointers_consistent(self):
        nodes = random_nodes(30, seed=4)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)

        def check(tree_node):
            if isinstance(tree_node, InternalNode):
                assert tree_node.left.parent is tree_node
                assert tree_node.right.parent is tree_node
                check(tree_node.left)
                check(tree_node.right)

        assert index.root.parent is None
        check(index.root)

    def test_height_logarithmic(self):
        nodes = random_nodes(64, seed=5)
        index = DITSLocalIndex(leaf_capacity=2)
        index.build(nodes)
        # 64 datasets with capacity 2 needs at least 32 leaves -> height >= 6,
        # and the median split keeps it close to balanced.
        assert 6 <= index.height() <= 12

    def test_leaf_inverted_index_matches_entries(self):
        nodes = random_nodes(25, seed=6)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        for leaf in index.leaves():
            expected: dict[int, set[str]] = {}
            for entry in leaf.entries:
                for cell in entry.cells:
                    expected.setdefault(cell, set()).add(entry.dataset_id)
            assert {cell: set(ids) for cell, ids in leaf.inverted.items()} == expected

    def test_root_summary(self):
        nodes = random_nodes(20, seed=7)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        rect, pivot, radius, count = index.root_summary()
        assert count == 20
        assert rect.contains_point(pivot)
        assert radius == pytest.approx(rect.radius)


class TestMedianSplit:
    def test_split_is_non_trivial(self):
        nodes = random_nodes(9, seed=8)
        left, right = _median_split(nodes, 0)
        assert len(left) + len(right) == 9
        assert left and right

    def test_split_orders_by_dimension(self):
        nodes = random_nodes(10, seed=9)
        left, right = _median_split(nodes, 1)
        max_left = max(entry.pivot.y for entry in left)
        min_right = min(entry.pivot.y for entry in right)
        assert max_left <= min_right + 1e-9

    def test_split_single_entry_rejected(self):
        with pytest.raises(ValueError):
            _median_split(random_nodes(1), 0)

    def test_identical_pivots_still_split(self):
        same = [node(f"same-{i}", {(5, 5)}) for i in range(6)]
        left, right = _median_split(same, 0)
        assert left and right


class TestLookups:
    def test_get_and_contains(self):
        nodes = random_nodes(10, seed=10)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        assert index.get("ds-3").dataset_id == "ds-3"
        assert "ds-3" in index
        assert "nope" not in index
        with pytest.raises(DatasetNotFoundError):
            index.get("nope")

    def test_leaf_for(self):
        nodes = random_nodes(10, seed=11)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes)
        leaf = index.leaf_for("ds-0")
        assert "ds-0" in leaf.dataset_ids()
        with pytest.raises(DatasetNotFoundError):
            index.leaf_for("missing")

    def test_dataset_ids_sorted(self):
        nodes = random_nodes(10, seed=12)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes)
        assert index.dataset_ids() == sorted(n.dataset_id for n in nodes)

    def test_visit_can_prune(self):
        nodes = random_nodes(20, seed=13)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes)
        visited = []
        index.visit(lambda tree_node: (visited.append(tree_node), False)[1])
        assert len(visited) == 1  # pruned immediately after the root


class TestMaintenance:
    def test_insert_into_empty_index(self):
        index = DITSLocalIndex(leaf_capacity=4)
        index.build([])
        index.insert(node("first", {(0, 0)}))
        assert len(index) == 1
        assert index.is_built()

    def test_insert_duplicate_rejected(self):
        index = DITSLocalIndex(leaf_capacity=4)
        index.build([node("a", {(0, 0)})])
        with pytest.raises(ValueError):
            index.insert(node("a", {(1, 1)}))

    def test_insert_splits_overfull_leaf(self):
        index = DITSLocalIndex(leaf_capacity=2)
        index.build(random_nodes(2, seed=14))
        for extra in random_nodes(6, seed=15):
            renamed = DatasetNode(
                dataset_id="x-" + extra.dataset_id,
                rect=extra.rect,
                cells=extra.cells,
                point_count=extra.point_count,
            )
            index.insert(renamed)
        assert len(index) == 8
        for leaf in index.leaves():
            assert len(leaf) <= 2
        assert sorted(collect_leaf_ids(index)) == sorted(index.dataset_ids())

    def test_delete_reduces_and_keeps_structure(self):
        nodes = random_nodes(20, seed=16)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes)
        for victim in ["ds-0", "ds-7", "ds-13"]:
            index.delete(victim)
            assert victim not in index
        assert len(index) == 17
        assert sorted(collect_leaf_ids(index)) == sorted(index.dataset_ids())

    def test_delete_unknown_rejected(self):
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(random_nodes(5, seed=17))
        with pytest.raises(DatasetNotFoundError):
            index.delete("ghost")

    def test_delete_everything_empties_index(self):
        nodes = random_nodes(6, seed=18)
        index = DITSLocalIndex(leaf_capacity=2)
        index.build(nodes)
        for entry in nodes:
            index.delete(entry.dataset_id)
        assert len(index) == 0
        assert not index.is_built()

    def test_update_replaces_cells(self):
        nodes = random_nodes(12, seed=19)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes)
        replacement = node("ds-4", {(200, 200), (201, 201)})
        index.update(replacement)
        assert index.get("ds-4").cells == replacement.cells
        leaf = index.leaf_for("ds-4")
        assert leaf.rect.contains_box(replacement.rect)

    def test_update_unknown_rejected(self):
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(random_nodes(5, seed=20))
        with pytest.raises(DatasetNotFoundError):
            index.update(node("ghost", {(0, 0)}))

    def test_refit_after_insert_keeps_mbr_invariant(self):
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(random_nodes(15, seed=21))
        index.insert(node("far-away", {(250, 250)}))

        def check(tree_node):
            if isinstance(tree_node, InternalNode):
                assert tree_node.rect.contains_box(tree_node.left.rect)
                assert tree_node.rect.contains_box(tree_node.right.rect)
                check(tree_node.left)
                check(tree_node.right)

        check(index.root)
        assert index.root.rect.contains_point(index.get("far-away").pivot)


class TestStructureProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10_000))
    def test_build_preserves_all_datasets(self, count, capacity, seed):
        nodes = random_nodes(count, seed=seed)
        index = DITSLocalIndex(leaf_capacity=capacity)
        index.build(nodes)
        assert sorted(collect_leaf_ids(index)) == sorted(n.dataset_id for n in nodes)
        for leaf in index.leaves():
            assert len(leaf) <= max(capacity, 1)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=5, max_value=25), st.integers(min_value=0, max_value=1000))
    def test_insert_then_delete_round_trip(self, count, seed):
        nodes = random_nodes(count, seed=seed)
        index = DITSLocalIndex(leaf_capacity=3)
        index.build(nodes[: count // 2])
        for entry in nodes[count // 2:]:
            index.insert(entry)
        for entry in nodes[count // 2:]:
            index.delete(entry.dataset_id)
        assert sorted(index.dataset_ids()) == sorted(
            n.dataset_id for n in nodes[: count // 2]
        )
