"""Tests for the DITS-G global index over source summaries."""

from __future__ import annotations

import pytest

from repro.core.errors import IndexNotBuiltError, InvalidParameterError, SourceNotFoundError
from repro.core.geometry import BoundingBox
from repro.index.dits_global import DITSGlobalIndex, SourceSummary


def summary(source_id: str, min_x, min_y, max_x, max_y, count=10) -> SourceSummary:
    return SourceSummary(
        source_id=source_id, rect=BoundingBox(min_x, min_y, max_x, max_y), dataset_count=count
    )


class TestRegistration:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            DITSGlobalIndex(leaf_capacity=0)

    def test_register_and_lookup(self):
        index = DITSGlobalIndex()
        index.register(summary("s1", 0, 0, 10, 10))
        assert "s1" in index
        assert len(index) == 1
        assert index.summary_of("s1").dataset_count == 10

    def test_register_all(self):
        index = DITSGlobalIndex()
        index.register_all([summary("a", 0, 0, 1, 1), summary("b", 5, 5, 6, 6)])
        assert index.source_ids() == ["a", "b"]

    def test_register_refreshes_existing(self):
        index = DITSGlobalIndex()
        index.register(summary("s1", 0, 0, 10, 10, count=5))
        index.register(summary("s1", 0, 0, 20, 20, count=8))
        assert len(index) == 1
        assert index.summary_of("s1").dataset_count == 8

    def test_unregister(self):
        index = DITSGlobalIndex()
        index.register(summary("s1", 0, 0, 10, 10))
        index.unregister("s1")
        assert "s1" not in index
        with pytest.raises(SourceNotFoundError):
            index.unregister("s1")

    def test_unknown_summary_lookup(self):
        index = DITSGlobalIndex()
        with pytest.raises(SourceNotFoundError):
            index.summary_of("missing")

    def test_root_requires_registration(self):
        index = DITSGlobalIndex()
        with pytest.raises(IndexNotBuiltError):
            _ = index.root


class TestTreeStructure:
    def test_tree_splits_when_over_capacity(self):
        index = DITSGlobalIndex(leaf_capacity=2)
        for i in range(6):
            index.register(summary(f"s{i}", i * 10, 0, i * 10 + 5, 5))
        assert index.node_count() > 1
        assert not index.root.is_leaf()

    def test_single_source_is_leaf_root(self):
        index = DITSGlobalIndex(leaf_capacity=2)
        index.register(summary("only", 0, 0, 1, 1))
        assert index.root.is_leaf()
        assert index.node_count() == 1


class TestCandidateSelection:
    def build(self) -> DITSGlobalIndex:
        index = DITSGlobalIndex(leaf_capacity=2)
        index.register_all(
            [
                summary("west", 0, 0, 10, 10),
                summary("middle", 20, 0, 30, 10),
                summary("east", 50, 0, 60, 10),
            ]
        )
        return index

    def test_intersecting_sources_are_candidates(self):
        index = self.build()
        candidates = index.candidate_sources(BoundingBox(5, 5, 25, 8))
        assert [c.source_id for c in candidates] == ["middle", "west"]

    def test_disjoint_query_yields_nothing_with_zero_delta(self):
        index = self.build()
        assert index.candidate_sources(BoundingBox(40, 20, 45, 25)) == []

    def test_delta_extends_reach(self):
        index = self.build()
        # The query sits 5 units east of "east"; a 10-unit threshold reaches it.
        candidates = index.candidate_sources(BoundingBox(65, 0, 66, 1), delta_geo=10.0)
        assert "east" in [c.source_id for c in candidates]

    def test_empty_index_returns_no_candidates(self):
        index = DITSGlobalIndex()
        assert index.candidate_sources(BoundingBox(0, 0, 1, 1)) == []

    def test_all_summaries_iterates_everything(self):
        index = self.build()
        assert [s.source_id for s in index.all_summaries()] == ["east", "middle", "west"]

    def test_candidates_subset_of_all_sources(self):
        index = self.build()
        candidates = index.candidate_sources(BoundingBox(0, 0, 100, 100), delta_geo=5.0)
        assert {c.source_id for c in candidates} <= set(index.source_ids())
        assert len(candidates) == 3


class TestLazyRebuilds:
    """Mutations must not reconstruct the tree; the next query does, once."""

    def build_queryable(self) -> DITSGlobalIndex:
        index = DITSGlobalIndex(leaf_capacity=2)
        index.register_all([summary(f"s{i}", i * 10, 0, i * 10 + 5, 5) for i in range(8)])
        return index

    def test_registration_burst_costs_one_rebuild(self):
        index = self.build_queryable()
        assert index.rebuild_count == 0
        index.candidate_sources(BoundingBox(0, 0, 100, 10))
        assert index.rebuild_count == 1
        # Clean index: further queries reuse the tree.
        index.candidate_sources(BoundingBox(0, 0, 100, 10))
        index.candidate_sources(BoundingBox(2, 2, 3, 3), delta_geo=4.0)
        assert index.node_count() > 1
        assert index.rebuild_count == 1

    def test_unregister_rebuilds_lazily_on_next_query(self):
        index = self.build_queryable()
        index.candidate_sources(BoundingBox(0, 0, 100, 10))
        assert index.rebuild_count == 1
        index.unregister("s3")
        index.unregister("s5")
        assert index.rebuild_count == 1  # nothing rebuilt yet
        hits = index.candidate_sources(BoundingBox(0, 0, 100, 10))
        assert index.rebuild_count == 2  # both removals amortised into one
        assert "s3" not in [s.source_id for s in hits]
        assert len(hits) == 6

    def test_interleaved_churn_counts_one_rebuild_per_query(self):
        index = self.build_queryable()
        for round_no in range(3):
            index.register(summary(f"extra{round_no}", 200 + round_no, 0, 201 + round_no, 1))
            index.unregister(f"s{round_no}")
            index.candidate_sources(BoundingBox(0, 0, 300, 10))
            assert index.rebuild_count == round_no + 1

    def test_registry_reads_do_not_rebuild(self):
        index = self.build_queryable()
        assert index.source_ids()
        assert index.summary_of("s0").dataset_count == 10
        assert len(index) == 8
        assert "s1" in index
        assert list(index.all_summaries())
        assert index.rebuild_count == 0


class TestSourceSummary:
    def test_derived_quantities(self):
        s = summary("s", 0, 0, 4, 3)
        assert s.pivot.as_tuple() == (2.0, 1.5)
        assert s.radius == pytest.approx(2.5)

    def test_wire_payload(self):
        s = summary("s", 0, 0, 4, 3, count=7)
        payload = s.wire_payload()
        assert payload["source"] == "s"
        assert payload["count"] == 7
        assert len(payload["rect"]) == 4
