"""Tests for DITS-L incremental rebalancing (scapegoat rebuilds, merges, refits)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex, InternalNode, LeafNode
from repro.index.dits_rebalance import RebalancePolicy

GRID = Grid(theta=9, space=BoundingBox(0, 0, 512, 512))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    return DatasetNode.from_cells(
        name, {GRID.cell_id_from_coords(x, y) for x, y in coords}, GRID
    )


def point_node(name: str, x: int, y: int) -> DatasetNode:
    return node(name, {(x, y)})


def random_nodes(count: int, seed: int = 0) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox = int(rng.integers(0, 490))
        oy = int(rng.integers(0, 490))
        coords = {
            (ox + int(rng.integers(0, 10)), oy + int(rng.integers(0, 10)))
            for _ in range(int(rng.integers(3, 9)))
        }
        nodes.append(node(f"ds-{i}", coords))
    return nodes


def assert_structure_valid(index: DITSLocalIndex) -> None:
    """Sizes, parent pointers, MBRs and the leaf registry are all consistent."""
    if not index.is_built():
        assert len(index) == 0
        return
    root = index.root  # flushes any deferred refits first
    assert root.parent is None
    seen_ids: list[str] = []

    def check(tree_node) -> tuple[int, BoundingBox]:
        if isinstance(tree_node, LeafNode):
            assert tree_node.entries, "empty leaves must be collapsed"
            assert tree_node.size == len(tree_node.entries)
            tight = BoundingBox.union_of(entry.rect for entry in tree_node.entries)
            assert tree_node.rect == tight, "leaf MBR must be exact after a flush"
            for entry in tree_node.entries:
                assert index.leaf_for(entry.dataset_id) is tree_node
                seen_ids.append(entry.dataset_id)
            return tree_node.size, tree_node.rect
        assert isinstance(tree_node, InternalNode)
        assert tree_node.left.parent is tree_node
        assert tree_node.right.parent is tree_node
        left_size, left_rect = check(tree_node.left)
        right_size, right_rect = check(tree_node.right)
        assert tree_node.size == left_size + right_size
        assert tree_node.rect == left_rect.union(right_rect), (
            "internal MBR must equal the union of its children after a flush"
        )
        return tree_node.size, tree_node.rect

    total, _ = check(root)
    assert total == len(index)
    assert sorted(seen_ids) == index.dataset_ids()


def assert_alpha_balanced(index: DITSLocalIndex) -> None:
    policy = index.rebalance_policy
    if not index.is_built():
        return

    def check(tree_node) -> None:
        if isinstance(tree_node, InternalNode):
            if tree_node.size >= policy.min_rebuild_size:
                heavier = max(tree_node.left.size, tree_node.right.size)
                assert heavier <= policy.alpha * tree_node.size, (
                    f"alpha-balance violated: {tree_node.left.size}/"
                    f"{tree_node.right.size} under size {tree_node.size}"
                )
            check(tree_node.left)
            check(tree_node.right)

    check(index.root)


class TestPolicyValidation:
    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0, 1.5])
    def test_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(InvalidParameterError):
            RebalancePolicy(alpha=alpha)

    def test_min_rebuild_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            RebalancePolicy(min_rebuild_size=1)

    def test_default_policy_enabled(self):
        index = DITSLocalIndex()
        assert index.rebalance_policy.enabled
        assert not index.rebalance_policy.deferred_refit


class TestScapegoatRebuilds:
    def test_drifting_inserts_stay_balanced(self):
        """A monotone insert stream grows a spine without rebalancing."""
        index = DITSLocalIndex(leaf_capacity=2)
        skewed = DITSLocalIndex(
            leaf_capacity=2, rebalance=RebalancePolicy(enabled=False)
        )
        for i in range(128):
            index.insert(point_node(f"d-{i:03d}", 2 * i, 2 * i))
            skewed.insert(point_node(f"d-{i:03d}", 2 * i, 2 * i))
        assert index.rebalance_stats.rebalance_count > 0
        assert skewed.rebalance_stats.rebalance_count == 0
        assert index.height() < skewed.height()
        # 128 datasets at capacity 2 need >= 64 leaves: balanced depth ~7+1.
        assert index.height() <= 2 * 8
        assert_alpha_balanced(index)
        assert_structure_valid(index)
        assert_structure_valid(skewed)

    def test_alpha_invariant_after_mixed_churn(self):
        nodes = random_nodes(120, seed=3)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes[:80])
        rng = np.random.default_rng(11)
        live = [n.dataset_id for n in nodes[:80]]
        extra = iter(nodes[80:])
        for step in range(120):
            kind = step % 3
            if kind == 0:
                fresh = next(extra, None)
                if fresh is not None:
                    index.insert(fresh)
                    live.append(fresh.dataset_id)
            elif kind == 1 and live:
                victim = live.pop(int(rng.integers(0, len(live))))
                index.delete(victim)
            elif live:
                moved = live[int(rng.integers(0, len(live)))]
                index.update(
                    point_node(moved, int(rng.integers(0, 500)), int(rng.integers(0, 500)))
                )
            assert_alpha_balanced(index)
        assert_structure_valid(index)

    def test_disabled_policy_never_rebuilds(self):
        index = DITSLocalIndex(leaf_capacity=2, rebalance=RebalancePolicy(enabled=False))
        for i in range(64):
            index.insert(point_node(f"d-{i:03d}", 3 * i, 3 * i))
        stats = index.rebalance_stats
        assert stats.rebalance_count == 0
        assert stats.leaf_merges == 0
        assert_structure_valid(index)

    def test_rebuild_preserves_lookup_registry(self):
        index = DITSLocalIndex(leaf_capacity=2)
        for i in range(64):
            index.insert(point_node(f"d-{i:03d}", 4 * i, 0))
        assert index.rebalance_stats.rebalance_count > 0
        for i in range(64):
            leaf = index.leaf_for(f"d-{i:03d}")
            assert f"d-{i:03d}" in leaf.dataset_ids()


class TestLeafUnderflowMerge:
    def test_delete_storm_merges_underfull_leaves(self):
        nodes = random_nodes(90, seed=5)
        index = DITSLocalIndex(leaf_capacity=16)
        index.build(nodes)
        for victim in [n.dataset_id for n in nodes[:78]]:
            index.delete(victim)
        assert index.rebalance_stats.leaf_merges > 0
        assert_structure_valid(index)

    def test_merge_requires_room_in_sibling(self):
        # Two leaves: one full (16), one shrinking to 1.  16 + 1 > 16 would
        # overflow, so the underfull leaf must survive un-merged until the
        # sibling has room.
        left = [point_node(f"l-{i:02d}", i, 0) for i in range(16)]
        right = [point_node(f"r-{i:02d}", 400 + i, 400) for i in range(4)]
        index = DITSLocalIndex(leaf_capacity=16)
        index.build(left + right)
        for i in range(3):
            index.delete(f"r-{i:02d}")
        assert_structure_valid(index)
        assert "r-03" in index

    def test_merges_disabled_by_policy(self):
        nodes = random_nodes(90, seed=6)
        index = DITSLocalIndex(
            leaf_capacity=16, rebalance=RebalancePolicy(merge_underflow=False)
        )
        index.build(nodes)
        for victim in [n.dataset_id for n in nodes[:78]]:
            index.delete(victim)
        assert index.rebalance_stats.leaf_merges == 0
        assert_structure_valid(index)


class TestDeferredRefit:
    def test_burst_defers_then_flush_tightens(self):
        nodes = random_nodes(60, seed=7)
        index = DITSLocalIndex(
            leaf_capacity=5, rebalance=RebalancePolicy(deferred_refit=True)
        )
        index.build(nodes)
        for victim in [n.dataset_id for n in nodes[:20]]:
            index.delete(victim)
        stats = index.rebalance_stats
        assert stats.deferred_refits > 0
        flushes_before = stats.refit_flushes
        # Observing the tree (as any query does) flushes the burst once...
        assert_structure_valid(index)
        assert stats.refit_flushes == flushes_before + 1
        # ...and a quiescent re-observation does not flush again.
        index.height()
        assert stats.refit_flushes == flushes_before + 1

    def test_deferred_and_eager_reach_identical_rects(self):
        nodes = random_nodes(70, seed=8)
        eager = DITSLocalIndex(leaf_capacity=5)
        deferred = DITSLocalIndex(
            leaf_capacity=5, rebalance=RebalancePolicy(deferred_refit=True)
        )
        eager.build(nodes)
        deferred.build(nodes)
        rng = np.random.default_rng(9)
        live = [n.dataset_id for n in nodes]
        for step in range(40):
            if step % 2 == 0 and live:
                victim = live.pop(int(rng.integers(0, len(live))))
                eager.delete(victim)
                deferred.delete(victim)
            elif live:
                moved = live[int(rng.integers(0, len(live)))]
                replacement = point_node(
                    moved, int(rng.integers(0, 500)), int(rng.integers(0, 500))
                )
                eager.update(replacement)
                deferred.update(replacement)
        assert_structure_valid(eager)
        assert_structure_valid(deferred)

    def test_mutations_between_queries_stay_conservative(self):
        """Mid-burst MBRs may be loose but must always cover their content."""
        nodes = random_nodes(40, seed=10)
        index = DITSLocalIndex(
            leaf_capacity=4, rebalance=RebalancePolicy(deferred_refit=True)
        )
        index.build(nodes)
        for victim in [n.dataset_id for n in nodes[:10]]:
            index.delete(victim)
        # Walk the raw tree without flushing: every node must contain its
        # descendants even while re-tightening is deferred.
        stack = [index._root]
        while stack:
            tree_node = stack.pop()
            if isinstance(tree_node, LeafNode):
                for entry in tree_node.entries:
                    assert tree_node.rect.contains_box(entry.rect)
            else:
                assert tree_node.rect.contains_box(tree_node.left.rect)
                assert tree_node.rect.contains_box(tree_node.right.rect)
                stack.extend(tree_node.children())


class TestUpdateRelocation:
    def test_far_move_relocates_to_another_leaf(self):
        """Regression: an in-place far move used to bloat the old leaf's MBR."""
        cluster_a = [point_node(f"a-{i:02d}", i, i) for i in range(8)]
        cluster_b = [point_node(f"b-{i:02d}", 480 + i, 480 + i) for i in range(8)]
        index = DITSLocalIndex(leaf_capacity=8)
        index.build(cluster_a + cluster_b)
        old_leaf = index.leaf_for("a-00")
        moved = point_node("a-00", 500, 500)
        index.update(moved)
        new_leaf = index.leaf_for("a-00")
        assert new_leaf is not old_leaf
        assert "a-00" not in old_leaf.dataset_ids()
        # The old leaf's MBR must not retain the stale far-away extent.
        tight = BoundingBox.union_of(entry.rect for entry in old_leaf.entries)
        assert old_leaf.rect == tight
        assert not old_leaf.rect.contains_box(moved.rect)
        assert_structure_valid(index)

    def test_near_move_stays_in_place(self):
        cluster = [point_node(f"a-{i:02d}", i * 2, 0) for i in range(6)]
        index = DITSLocalIndex(leaf_capacity=8)
        index.build(cluster)
        leaf = index.leaf_for("a-03")
        index.update(point_node("a-03", 7, 1))
        assert index.leaf_for("a-03") is leaf
        assert_structure_valid(index)

    def test_update_preserves_dataset_count(self):
        nodes = random_nodes(30, seed=12)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes)
        rng = np.random.default_rng(13)
        for _ in range(25):
            moved = nodes[int(rng.integers(0, len(nodes)))].dataset_id
            index.update(
                point_node(moved, int(rng.integers(0, 500)), int(rng.integers(0, 500)))
            )
        assert len(index) == 30
        assert_structure_valid(index)


class TestDeepTreeRegression:
    def test_height_survives_pathological_depth(self):
        """Satellite fix: ``height()`` must not recurse once per tree level.

        With rebalancing disabled, a monotone insert stream at capacity 1
        builds a spine deeper than the default interpreter recursion limit;
        the previous recursive ``height()`` raised ``RecursionError`` here.
        """
        deep_grid = Grid(theta=11, space=BoundingBox(0, 0, 2048, 2048))
        index = DITSLocalIndex(
            leaf_capacity=1, rebalance=RebalancePolicy(enabled=False)
        )
        depth = 1100
        for i in range(depth):
            # Strictly monotone diagonal pivots keep every insert in the
            # rightmost leaf, growing the tree by one level per insert.
            index.insert(
                DatasetNode.from_cells(
                    f"d-{i:04d}", {deep_grid.cell_id_from_coords(i, i)}, deep_grid
                )
            )
        measured = index.height()
        assert measured > 1000  # deep enough to have overflowed the old recursion
        assert index.node_count() == 2 * depth - 1

    def test_rebalancer_keeps_same_stream_shallow(self):
        index = DITSLocalIndex(leaf_capacity=1)
        for i in range(300):
            index.insert(
                point_node(f"d-{i:04d}", i % 512, i // 512)
            )
        # log2(300) ~ 8.2; alpha=0.65 keeps the height within ~1.6x of that.
        assert index.height() <= 16
        assert_alpha_balanced(index)
