"""Tests for the counted posting lists, full-cell sets and leaf ordinals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DatasetNode
from repro.core.errors import DatasetNotFoundError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))


def node(name: str, coords: set[tuple[int, int]]) -> DatasetNode:
    cells = {GRID.cell_id_from_coords(x, y) for x, y in coords}
    return DatasetNode.from_cells(name, cells, GRID)


def random_nodes(count: int, seed: int = 0) -> list[DatasetNode]:
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(count):
        ox, oy = int(rng.integers(0, 200)), int(rng.integers(0, 200))
        coords = {
            (ox + int(rng.integers(0, 20)), oy + int(rng.integers(0, 20)))
            for _ in range(int(rng.integers(3, 15)))
        }
        nodes.append(node(f"ds-{i}", coords))
    return nodes


class TestCountedPostings:
    def test_posting_iteration_yields_dataset_ids(self):
        index = DITSLocalIndex(leaf_capacity=10)
        index.build([node("a", {(0, 0), (1, 0)}), node("b", {(0, 0)})])
        leaf = index.leaf_for("a")
        shared = GRID.cell_id_from_coords(0, 0)
        assert sorted(leaf.inverted[shared]) == ["a", "b"]
        assert len(leaf.inverted[shared]) == 2

    def test_remove_entry_shrinks_postings(self):
        index = DITSLocalIndex(leaf_capacity=10)
        index.build([node("a", {(0, 0), (1, 0)}), node("b", {(0, 0)})])
        leaf = index.leaf_for("a")
        removed = leaf.remove_entry("a")
        assert removed.dataset_id == "a"
        shared = GRID.cell_id_from_coords(0, 0)
        lone = GRID.cell_id_from_coords(1, 0)
        assert list(leaf.inverted[shared]) == ["b"]
        assert lone not in leaf.inverted

    def test_remove_missing_entry_raises(self):
        index = DITSLocalIndex(leaf_capacity=10)
        index.build([node("a", {(0, 0)})])
        with pytest.raises(DatasetNotFoundError):
            index.leaf_for("a").remove_entry("zzz")


class TestFullCells:
    def test_full_cells_are_cells_shared_by_every_entry(self):
        index = DITSLocalIndex(leaf_capacity=10)
        index.build(
            [
                node("a", {(0, 0), (1, 0), (2, 0)}),
                node("b", {(0, 0), (1, 0)}),
                node("c", {(0, 0), (3, 3)}),
            ]
        )
        leaf = index.leaf_for("a")
        assert leaf.full_cells == {GRID.cell_id_from_coords(0, 0)}

    def test_full_cells_track_additions_and_removals(self):
        index = DITSLocalIndex(leaf_capacity=10)
        index.build([node("a", {(0, 0), (1, 0)}), node("b", {(0, 0), (1, 0)})])
        leaf = index.leaf_for("a")
        assert leaf.full_cells == {
            GRID.cell_id_from_coords(0, 0),
            GRID.cell_id_from_coords(1, 0),
        }
        leaf.add_entry(node("c", {(0, 0)}))
        assert leaf.full_cells == {GRID.cell_id_from_coords(0, 0)}
        leaf.remove_entry("c")
        assert leaf.full_cells == {
            GRID.cell_id_from_coords(0, 0),
            GRID.cell_id_from_coords(1, 0),
        }

    def test_full_cells_match_definition_on_random_build(self):
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(random_nodes(30, seed=3))
        for leaf in index.leaves():
            expected = {
                cell
                for cell, postings in leaf.inverted.items()
                if len(postings) == len(leaf.entries)
            }
            assert leaf.full_cells == expected


class TestLeafOrdinals:
    def test_ordinals_follow_left_to_right_leaf_order(self):
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(random_nodes(30, seed=1))
        ordinals = index.leaf_ordinals()
        leaves = list(index.leaves())
        assert [ordinals[id(leaf)] for leaf in leaves] == list(range(len(leaves)))
        assert index.leaf_ordinal(leaves[-1]) == len(leaves) - 1

    def test_ordinals_stable_across_identical_builds(self):
        first = DITSLocalIndex(leaf_capacity=4)
        first.build(random_nodes(30, seed=2))
        second = DITSLocalIndex(leaf_capacity=4)
        second.build(random_nodes(30, seed=2))
        first_by_content = {
            tuple(leaf.dataset_ids()): first.leaf_ordinal(leaf) for leaf in first.leaves()
        }
        second_by_content = {
            tuple(leaf.dataset_ids()): second.leaf_ordinal(leaf) for leaf in second.leaves()
        }
        assert first_by_content == second_by_content

    def test_ordinals_refresh_after_structural_change(self):
        nodes = random_nodes(20, seed=4)
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(nodes[:-1])
        before = set(index.leaf_ordinals().values())
        index.insert(nodes[-1])
        after = index.leaf_ordinals()
        assert set(after.values()) == set(range(len(list(index.leaves()))))
        assert before == set(range(len(before)))

    def test_foreign_leaf_rejected(self):
        index = DITSLocalIndex(leaf_capacity=4)
        index.build(random_nodes(10, seed=5))
        other = DITSLocalIndex(leaf_capacity=4)
        other.build(random_nodes(10, seed=6))
        foreign = next(iter(other.leaves()))
        with pytest.raises(ValueError):
            index.leaf_ordinal(foreign)


class TestSearchStatsOrdinals:
    def test_candidate_leaf_ids_are_stable_ordinals(self):
        from repro.search.overlap import OverlapSearch

        nodes = random_nodes(40, seed=7)
        results = []
        for _ in range(2):
            index = DITSLocalIndex(leaf_capacity=4)
            index.build(nodes)
            search = OverlapSearch(index)
            search.search_node(nodes[0], k=5)
            results.append(list(search.last_stats.candidate_leaf_ids))
        assert results[0] == results[1]
        assert results[0] == sorted(results[0])
        leaf_count = len(list(index.leaves()))
        assert all(0 <= ordinal < leaf_count for ordinal in results[0])
