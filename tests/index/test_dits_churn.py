"""Churn invariants: random mutation streams vs a freshly rebuilt DITS-L.

This is the harness the PR-5 rebalancer must pass (and the bar every future
mutation-path change must clear): hypothesis drives random interleaved
insert/update/delete sequences against every rebalance policy and both
cell-set backends, then asserts

(a) the leaf registry (``leaf_for``) and ``leaf_ordinals`` stay consistent
    with the ``leaves()`` traversal,
(b) every node's MBR equals the exact union of its descendants' rects (after
    the deferred-refit flush a query triggers), subtree sizes match, empty
    leaves are collapsed, and
(c) OverlapSearch and CoverageSearch answer bit-identically to a freshly
    bulk-built tree over the same datasets — for any tree shape the churn
    produced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.index.dits import DITSLocalIndex, InternalNode, LeafNode
from repro.index.dits_rebalance import RebalancePolicy
from repro.search.coverage import CoverageSearch
from repro.search.overlap import OverlapSearch
from repro.utils import cellsets

GRID = Grid(theta=8, space=BoundingBox(0, 0, 256, 256))

POLICIES = {
    "default": RebalancePolicy(),
    "deferred": RebalancePolicy(deferred_refit=True),
    "disabled": RebalancePolicy(enabled=False),
}


def make_node(name: str, rng: np.random.Generator) -> DatasetNode:
    ox = int(rng.integers(0, 244))
    oy = int(rng.integers(0, 244))
    cells = {
        GRID.cell_id_from_coords(ox + int(rng.integers(0, 12)), oy + int(rng.integers(0, 12)))
        for _ in range(int(rng.integers(2, 10)))
    }
    return DatasetNode.from_cells(name, cells, GRID)


def apply_ops(index: DITSLocalIndex, ops: list[int], seed: int) -> None:
    """Deterministically replay ``ops`` (0=insert, 1=delete, 2=update)."""
    rng = np.random.default_rng(seed)
    fresh = 0
    for op in ops:
        live = index.dataset_ids()
        if op == 0 or not live:
            index.insert(make_node(f"new-{fresh:04d}", rng))
            fresh += 1
        elif op == 1:
            index.delete(live[int(rng.integers(0, len(live)))])
        else:
            moved = live[int(rng.integers(0, len(live)))]
            index.update(make_node(moved, rng))


def check_registry_and_ordinals(index: DITSLocalIndex) -> None:
    """Invariant (a): leaf registry and ordinals agree with ``leaves()``."""
    leaves = list(index.leaves())
    ordinals = index.leaf_ordinals()
    assert len(ordinals) == len(leaves)
    for expected, leaf in enumerate(leaves):
        assert index.leaf_ordinal(leaf) == expected
    registry_ids: list[str] = []
    for leaf in leaves:
        for dataset_id in leaf.dataset_ids():
            assert index.leaf_for(dataset_id) is leaf
            registry_ids.append(dataset_id)
    assert sorted(registry_ids) == index.dataset_ids()


def check_tree_invariants(index: DITSLocalIndex) -> None:
    """Invariant (b): exact MBRs, consistent sizes, no empty leaves."""
    if not index.is_built():
        assert len(index) == 0
        return

    def check(node) -> tuple[int, BoundingBox]:
        if isinstance(node, LeafNode):
            assert node.entries
            assert node.size == len(node.entries)
            tight = BoundingBox.union_of(entry.rect for entry in node.entries)
            assert node.rect == tight
            return node.size, tight
        assert isinstance(node, InternalNode)
        assert node.left.parent is node
        assert node.right.parent is node
        left_size, left_rect = check(node.left)
        right_size, right_rect = check(node.right)
        assert node.size == left_size + right_size
        assert node.rect == left_rect.union(right_rect)
        return node.size, node.rect

    total, _ = check(index.root)
    assert total == len(index)


def check_search_parity(index: DITSLocalIndex, seed: int) -> None:
    """Invariant (c): bit-identical OJSP/CJSP answers vs a fresh rebuild."""
    rebuilt = DITSLocalIndex(leaf_capacity=index.leaf_capacity)
    rebuilt.build(list(index.nodes()))
    rng = np.random.default_rng(seed + 9999)
    queries = [make_node(f"__q{i}", rng) for i in range(3)]
    overlap_a, overlap_b = OverlapSearch(index), OverlapSearch(rebuilt)
    coverage_a, coverage_b = CoverageSearch(index), CoverageSearch(rebuilt)
    for k in (1, 4):
        for query in queries:
            got = [(e.dataset_id, e.score) for e in overlap_a.search_node(query, k).entries]
            want = [(e.dataset_id, e.score) for e in overlap_b.search_node(query, k).entries]
            assert got == want
            got = [
                (e.dataset_id, e.score)
                for e in coverage_a.search_node(query, k, 6.0).entries
            ]
            want = [
                (e.dataset_id, e.score)
                for e in coverage_b.search_node(query, k, 6.0).entries
            ]
            assert got == want


@pytest.fixture
def restore_backend():
    previous = cellsets.get_backend()
    yield
    cellsets.set_backend(previous)


class TestChurnInvariants:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("backend", ["vector", "frozenset"])
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ops=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=30),
        initial=st.integers(min_value=0, max_value=40),
        capacity=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_churn_keeps_all_invariants(
        self, restore_backend, policy_name, backend, ops, initial, capacity, seed
    ):
        cellsets.set_backend(backend)
        index = DITSLocalIndex(leaf_capacity=capacity, rebalance=POLICIES[policy_name])
        rng = np.random.default_rng(seed)
        index.build([make_node(f"ds-{i:04d}", rng) for i in range(initial)])
        apply_ops(index, ops, seed)
        check_registry_and_ordinals(index)
        check_tree_invariants(index)
        check_search_parity(index, seed)

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_drain_and_refill(self, policy_name):
        """Empty the index through churn, then grow it back."""
        index = DITSLocalIndex(leaf_capacity=3, rebalance=POLICIES[policy_name])
        rng = np.random.default_rng(42)
        nodes = [make_node(f"ds-{i:04d}", rng) for i in range(25)]
        index.build(nodes)
        for node in nodes:
            index.delete(node.dataset_id)
        assert len(index) == 0
        assert not index.is_built()
        for node in nodes:
            index.insert(node)
        check_registry_and_ordinals(index)
        check_tree_invariants(index)
        check_search_parity(index, 42)
