"""Smoke tests for the runnable examples.

The examples double as living documentation, so the suite executes the fast
ones end to end (the heavier federation example is exercised indirectly by
the distributed-framework tests and the communication benchmarks).
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    script = EXAMPLES_DIR / name
    assert script.exists(), script
    sys_path_before = list(sys.path)
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.path[:] = sys_path_before


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "municipal_planning.py",
            "multi_source_federation.py",
            "index_maintenance.py",
        } <= names

    def test_quickstart_runs(self, capsys):
        run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "OJSP: top-5 overlapping datasets" in output
        assert "CJSP: greedy coverage selection" in output
        assert "communication:" in output

    def test_municipal_planning_runs(self, capsys):
        run_example("municipal_planning.py")
        output = capsys.readouterr().out
        assert "Task 1 (OJSP)" in output
        assert "Task 2 (CJSP)" in output

    @pytest.mark.slow
    def test_index_maintenance_runs(self, capsys):
        run_example("index_maintenance.py")
        output = capsys.readouterr().out
        assert "exactness preserved" in output
        assert "full rebuild" in output
