"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def corpus_dir(tmp_path):
    """A small on-disk corpus generated through the CLI itself."""
    out = tmp_path / "corpus"
    exit_code = main(
        ["generate", "--profile", "Transit", "--scale", "0.01", "--seed", "3", "--out", str(out)]
    )
    assert exit_code == 0
    return out


@pytest.fixture()
def query_file(corpus_dir, tmp_path):
    """A query CSV: the first dataset of the generated corpus."""
    first_csv = sorted(corpus_dir.glob("*.csv"))[0]
    query_path = tmp_path / "query.csv"
    query_path.write_text(first_csv.read_text(encoding="utf-8"), encoding="utf-8")
    return query_path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "somewhere"])
        assert args.profile == "Transit"
        assert args.scale == pytest.approx(0.02)

    def test_coverage_has_delta(self):
        args = build_parser().parse_args(
            ["coverage", "--corpus", "c", "--query", "q", "--delta", "3.5"]
        )
        assert args.delta == pytest.approx(3.5)

    def test_federate_defaults(self):
        args = build_parser().parse_args(["federate", "--corpus", "c", "--query", "q"])
        assert args.sources == 3
        assert args.shards == 4
        assert args.mode == "overlap"


class TestGenerate:
    def test_writes_csv_files(self, corpus_dir):
        files = list(corpus_dir.glob("*.csv"))
        assert len(files) >= 20
        with files[0].open(newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert {"x", "y"} <= set(rows[0].keys())


class TestSearchCommands:
    def test_overlap_outputs_ranked_table(self, corpus_dir, query_file, capsys):
        exit_code = main(
            [
                "overlap",
                "--corpus", str(corpus_dir),
                "--query", str(query_file),
                "--theta", "12",
                "--k", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "OJSP top-3" in output
        assert "overlap_cells" in output
        # The query is one of the corpus datasets, so the top hit must share
        # every one of its cells (rank 1 appears in the table).
        assert "1" in output

    def test_coverage_outputs_selection_and_totals(self, corpus_dir, query_file, capsys):
        exit_code = main(
            [
                "coverage",
                "--corpus", str(corpus_dir),
                "--query", str(query_file),
                "--k", "3",
                "--delta", "10",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "CJSP selection" in output
        assert "coverage:" in output

    def test_stats_command(self, corpus_dir, capsys):
        exit_code = main(["stats", "--corpus", str(corpus_dir), "--theta", "11"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "corpus statistics" in output
        assert "build_ms" in output

    def test_federate_overlap_reports_shards(self, corpus_dir, query_file, capsys):
        exit_code = main(
            [
                "federate",
                "--corpus", str(corpus_dir),
                "--query", str(query_file),
                "--sources", "3",
                "--shards", "5",
                "--k", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "federated OJSP top-3 (3 sources)" in output
        assert "DITS-G global index" in output
        assert "rebuilds" in output
        assert "communication:" in output
        assert "src-" in output  # results carry the owning source

    def test_federate_coverage_mode(self, corpus_dir, query_file, capsys):
        exit_code = main(
            [
                "federate",
                "--corpus", str(corpus_dir),
                "--query", str(query_file),
                "--mode", "coverage",
                "--sources", "2",
                "--shards", "2",
                "--k", "3",
                "--delta", "8",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "federated CJSP selection" in output
        assert "marginal_gain" in output

    def test_federate_matches_single_source_overlap(self, corpus_dir, query_file, capsys):
        """One source, one shard reproduces the single-machine ranking."""
        assert main(
            ["overlap", "--corpus", str(corpus_dir), "--query", str(query_file), "--k", "3"]
        ) == 0
        single = capsys.readouterr().out
        assert main(
            [
                "federate",
                "--corpus", str(corpus_dir),
                "--query", str(query_file),
                "--sources", "1",
                "--shards", "1",
                "--k", "3",
            ]
        ) == 0
        federated = capsys.readouterr().out
        import re

        def ranked(text):
            return re.findall(r"\w+-D\d+", text)

        assert ranked(single), "expected ranked dataset IDs in the single-source table"
        assert ranked(federated) == ranked(single)

    @pytest.mark.parametrize("flag", ["--sources", "--shards"])
    def test_federate_rejects_zero_counts(self, corpus_dir, query_file, flag):
        with pytest.raises(SystemExit):
            main(
                [
                    "federate",
                    "--corpus", str(corpus_dir),
                    "--query", str(query_file),
                    flag, "0",
                ]
            )

    def test_missing_corpus_errors(self, tmp_path, query_file):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["overlap", "--corpus", str(empty), "--query", str(query_file)])

    def test_empty_query_errors(self, corpus_dir, tmp_path):
        bad_query = tmp_path / "empty_query.csv"
        bad_query.write_text("x,y\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["overlap", "--corpus", str(corpus_dir), "--query", str(bad_query)])


class TestLint:
    @pytest.fixture()
    def dirty_package(self, tmp_path):
        """A package seeded with one violation per checker family."""
        root = tmp_path / "dirty"
        root.mkdir()
        (root / "__init__.py").write_text("")
        (root / "locks.py").write_text(
            "import threading\n\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self.total = 0  # guarded-by: _lock\n"
            "        self._lock = threading.Lock()\n\n"
            "    def peek(self):\n"
            "        return self.total\n"
        )
        (root / "caches.py").write_text(
            "import functools\n\n"
            "@functools.lru_cache(maxsize=8192)\n"
            "def distance(cells: frozenset) -> float:\n"
            "    return 0.0\n"
        )
        (root / "hotpath.py").write_text(
            "import time\n\n"
            "def rank(items):  # parity-critical\n"
            "    return (sorted(items), time.perf_counter())\n"
        )
        (root / "exports.py").write_text('__all__ = ["does_not_exist"]\n')
        return root

    def test_shipped_tree_is_clean_in_strict_mode(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_seeded_violations_fail_with_all_families(self, dirty_package, capsys):
        assert main(["lint", "--root", str(dirty_package)]) == 1
        out = capsys.readouterr().out
        for code in ("REPRO101", "REPRO201", "REPRO301", "REPRO401"):
            assert code in out, f"{code} missing from lint output"

    def test_json_format_is_schema_stable(self, dirty_package, capsys):
        import json

        assert main(["lint", "--root", str(dirty_package), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint/v1"
        assert document["summary"]["finding_count"] == len(document["findings"])
        locations = [(f["path"], f["line"], f["code"]) for f in document["findings"]]
        assert locations == sorted(locations)

    def test_select_restricts_codes(self, dirty_package, capsys):
        assert main(["lint", "--root", str(dirty_package), "--select", "REPRO3"]) == 1
        out = capsys.readouterr().out
        assert "REPRO301" in out
        assert "REPRO101" not in out

    def test_strict_fails_on_stale_suppression(self, tmp_path, capsys):
        root = tmp_path / "stale"
        root.mkdir()
        (root / "__init__.py").write_text("")
        (root / "clean.py").write_text(
            "def fine() -> int:\n    return 1  # repro-lint: disable=REPRO301\n"
        )
        assert main(["lint", "--root", str(root)]) == 0
        assert main(["lint", "--root", str(root), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "stale suppression" in out
