"""Tests for the bounded top-k heap."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.heaps import BoundedTopK, CanonicalTopK


class TestBasics:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            BoundedTopK(0)
        with pytest.raises(ValueError):
            BoundedTopK(-3)

    def test_empty_heap(self):
        heap = BoundedTopK(3)
        assert len(heap) == 0
        assert not heap
        assert not heap.is_full()
        assert heap.kth_score() == float("-inf")
        assert heap.items() == []

    def test_keeps_largest_k(self):
        heap = BoundedTopK(3)
        for score in [5, 1, 9, 3, 7, 2]:
            heap.push(score, f"item-{score}")
        assert [score for score, _ in heap.items()] == [9, 7, 5]

    def test_kth_score_is_threshold(self):
        heap = BoundedTopK(2)
        heap.push(4, "a")
        heap.push(6, "b")
        assert heap.kth_score() == 4
        assert not heap.push(3, "c")
        assert heap.push(5, "d")
        assert heap.kth_score() == 5

    def test_push_returns_whether_retained(self):
        heap = BoundedTopK(1)
        assert heap.push(1, "a") is True
        assert heap.push(0, "b") is False
        assert heap.push(2, "c") is True

    def test_extend(self):
        heap = BoundedTopK(2)
        heap.extend([(1, "a"), (5, "b"), (3, "c")])
        assert [item for _, item in heap.items()] == ["b", "c"]

    def test_equal_scores_keep_insertion_order(self):
        heap = BoundedTopK(3)
        heap.push(2, "first")
        heap.push(2, "second")
        heap.push(2, "third")
        assert [item for _, item in heap.items()] == ["first", "second", "third"]

    def test_iteration_matches_items(self):
        heap = BoundedTopK(4)
        heap.extend([(i, str(i)) for i in range(10)])
        assert list(heap) == heap.items()


class TestProperties:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
           st.integers(min_value=1, max_value=10))
    def test_matches_sorted_topk(self, scores, k):
        heap = BoundedTopK(k)
        for index, score in enumerate(scores):
            heap.push(score, index)
        expected = sorted(scores, reverse=True)[:k]
        assert [score for score, _ in heap.items()] == expected

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_never_exceeds_k(self, scores, k):
        heap = BoundedTopK(k)
        for index, score in enumerate(scores):
            heap.push(score, index)
        assert len(heap) <= k
        assert heap.is_full() == (len(scores) >= k)


class TestCanonicalTopK:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            CanonicalTopK(0)

    def test_ties_broken_by_item_not_insertion_order(self):
        heap = CanonicalTopK(2)
        heap.push(2.0, "zebra")
        heap.push(2.0, "alpha")
        heap.push(2.0, "mango")
        assert [item for _, item in heap.items()] == ["alpha", "mango"]

    def test_contains_tracks_retained_items(self):
        heap = CanonicalTopK(2)
        heap.push(1.0, "a")
        heap.push(3.0, "b")
        heap.push(2.0, "c")
        assert "a" not in heap
        assert "b" in heap and "c" in heap

    def test_items_ordered_score_desc_then_item_asc(self):
        heap = CanonicalTopK(4)
        for score, item in [(1.0, "d"), (2.0, "b"), (2.0, "a"), (1.0, "c")]:
            heap.push(score, item)
        assert heap.items() == [(2.0, "a"), (2.0, "b"), (1.0, "c"), (1.0, "d")]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=30),
            ),
            min_size=1,
            max_size=40,
            unique_by=lambda pair: pair[1],
        ),
        st.integers(min_value=1, max_value=8),
        st.randoms(),
    )
    def test_insertion_order_invariance(self, pairs, k, rng):
        """The retained set is a pure function of the offered pairs."""
        shuffled = list(pairs)
        rng.shuffle(shuffled)
        heap_a, heap_b = CanonicalTopK(k), CanonicalTopK(k)
        for score, item in pairs:
            heap_a.push(float(score), item)
        for score, item in shuffled:
            heap_b.push(float(score), item)
        expected = sorted(
            ((float(s), i) for s, i in pairs), key=lambda p: (-p[0], p[1])
        )[:k]
        assert heap_a.items() == expected
        assert heap_b.items() == expected
