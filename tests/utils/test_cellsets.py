"""Property tests for the vectorized cell-set engine.

Every kernel must agree exactly with the Python ``set`` algebra it replaces,
and the batch z-order codecs must match the scalar functions element-wise —
these are the invariants that make the ``vector`` backend a drop-in
replacement for the ``frozenset`` reference backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import cellsets
from repro.utils.zorder import (
    zorder_decode,
    zorder_decode_batch,
    zorder_encode,
    zorder_encode_batch,
)

cell_lists = st.lists(st.integers(min_value=0, max_value=2**40), max_size=200)


class TestAsCellArray:
    def test_sorts_and_dedups(self):
        array = cellsets.as_cell_array([5, 1, 5, 3, 1])
        assert array.tolist() == [1, 3, 5]
        assert array.dtype == cellsets.CELL_DTYPE

    def test_accepts_frozenset_and_generator(self):
        assert cellsets.as_cell_array(frozenset({2, 9, 4})).tolist() == [2, 4, 9]
        assert cellsets.as_cell_array(iter([3, 2, 2])).tolist() == [2, 3]

    def test_ndarray_input_is_defensively_copied(self):
        source = np.array([1, 4, 9], dtype=np.int64)
        result = cellsets.as_cell_array(source)
        assert result.tolist() == [1, 4, 9]
        source[0] = 99  # later mutation must not corrupt the result
        assert result.tolist() == [1, 4, 9]

    def test_empty(self):
        assert cellsets.as_cell_array([]).size == 0

    @given(cell_lists)
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_set(self, values):
        assert cellsets.as_cell_array(values).tolist() == sorted(set(values))


class TestSizeKernels:
    @given(cell_lists, cell_lists)
    @settings(max_examples=100, deadline=None)
    def test_sizes_match_set_algebra(self, left, right):
        a = cellsets.as_cell_array(left)
        b = cellsets.as_cell_array(right)
        set_a, set_b = set(left), set(right)
        assert cellsets.intersection_size(a, b) == len(set_a & set_b)
        assert cellsets.union_size(a, b) == len(set_a | set_b)
        assert cellsets.difference_size(a, b) == len(set_a - set_b)
        assert cellsets.contains_all(a, b) == set_b.issubset(set_a)

    @given(cell_lists, cell_lists)
    @settings(max_examples=100, deadline=None)
    def test_materializing_kernels_match_set_algebra(self, left, right):
        a = cellsets.as_cell_array(left)
        b = cellsets.as_cell_array(right)
        set_a, set_b = set(left), set(right)
        assert cellsets.intersect(a, b).tolist() == sorted(set_a & set_b)
        assert cellsets.union(a, b).tolist() == sorted(set_a | set_b)
        assert cellsets.difference(a, b).tolist() == sorted(set_a - set_b)

    def test_disjoint_and_identical(self):
        a = cellsets.as_cell_array([1, 2, 3])
        b = cellsets.as_cell_array([10, 20])
        assert cellsets.intersection_size(a, b) == 0
        assert cellsets.intersection_size(a, a) == 3
        assert cellsets.union_size(a, a) == 3
        assert cellsets.difference_size(a, a) == 0


class TestBackendSwitch:
    def test_default_is_vector(self):
        assert cellsets.get_backend() in ("vector", "frozenset")

    def test_roundtrip(self):
        previous = cellsets.set_backend("frozenset")
        try:
            assert cellsets.get_backend() == "frozenset"
            assert not cellsets.use_vector()
        finally:
            cellsets.set_backend(previous)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            cellsets.set_backend("gpu")


class TestBatchZorder:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**31 - 1),
                st.integers(min_value=0, max_value=2**31 - 1),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_matches_scalar(self, pairs):
        xs = np.array([p[0] for p in pairs], dtype=np.int64)
        ys = np.array([p[1] for p in pairs], dtype=np.int64)
        batch = zorder_encode_batch(xs, ys)
        assert batch.tolist() == [zorder_encode(x, y) for x, y in pairs]

    @given(st.lists(st.integers(min_value=0, max_value=2**62 - 1), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_decode_matches_scalar(self, codes):
        array = np.array(codes, dtype=np.int64)
        xs, ys = zorder_decode_batch(array)
        expected = [zorder_decode(code) for code in codes]
        assert list(zip(xs.tolist(), ys.tolist())) == expected

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**31 - 1),
                st.integers(min_value=0, max_value=2**31 - 1),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, pairs):
        xs = np.array([p[0] for p in pairs], dtype=np.int64)
        ys = np.array([p[1] for p in pairs], dtype=np.int64)
        dx, dy = zorder_decode_batch(zorder_encode_batch(xs, ys))
        assert dx.tolist() == xs.tolist()
        assert dy.tolist() == ys.tolist()

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            zorder_encode_batch(np.array([-1]), np.array([0]))

    def test_oversized_coordinate_rejected(self):
        with pytest.raises(ValueError):
            zorder_encode_batch(np.array([2**31]), np.array([0]))

    def test_negative_code_rejected(self):
        with pytest.raises(ValueError):
            zorder_decode_batch(np.array([-1]))

    def test_empty_batches(self):
        assert zorder_encode_batch(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0
        xs, ys = zorder_decode_batch(np.array([], dtype=np.int64))
        assert xs.size == 0 and ys.size == 0
