"""Tests for the z-order (Morton) encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.zorder import (
    deinterleave_bits,
    interleave_bits,
    zorder_decode,
    zorder_encode,
)


class TestEncodeDecode:
    def test_origin_is_zero(self):
        assert zorder_encode(0, 0) == 0

    def test_paper_figure2_layout(self):
        # Fig. 2(a): a 4x4 grid where cell (1, 0) has ID 1, (0, 1) has ID 2,
        # (1, 1) has ID 3, and the top-right cell (3, 3) has ID 15.
        assert zorder_encode(1, 0) == 1
        assert zorder_encode(0, 1) == 2
        assert zorder_encode(1, 1) == 3
        assert zorder_encode(2, 0) == 4
        assert zorder_encode(3, 3) == 15

    def test_decode_inverts_encode_examples(self):
        for x, y in [(0, 0), (1, 2), (7, 5), (1023, 511), (2**14 - 1, 2**14 - 1)]:
            assert zorder_decode(zorder_encode(x, y)) == (x, y)

    def test_ids_cover_full_range_for_small_grid(self):
        side = 8
        codes = {zorder_encode(x, y) for x in range(side) for y in range(side)}
        assert codes == set(range(side * side))

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            zorder_encode(-1, 0)
        with pytest.raises(ValueError):
            zorder_encode(0, -1)

    def test_negative_code_rejected(self):
        with pytest.raises(ValueError):
            zorder_decode(-5)

    def test_coordinate_too_large_rejected(self):
        with pytest.raises(ValueError):
            interleave_bits(1 << 32)


class TestBitHelpers:
    def test_interleave_spreads_bits(self):
        assert interleave_bits(0b1011) == 0b1000101

    def test_deinterleave_collects_bits(self):
        assert deinterleave_bits(0b1000101) == 0b1011

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_deinterleave_inverts_interleave(self, value):
        assert deinterleave_bits(interleave_bits(value)) == value


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_roundtrip(self, x, y):
        assert zorder_decode(zorder_encode(x, y)) == (x, y)

    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=2**10 - 1),
    )
    def test_encoding_is_injective(self, x1, y1, x2, y2):
        if (x1, y1) != (x2, y2):
            assert zorder_encode(x1, y1) != zorder_encode(x2, y2)

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    def test_code_bounded_by_grid_size(self, x, y):
        code = zorder_encode(x, y)
        assert 0 <= code < (1 << 24)
