"""Tests for wire-size and deep-size estimation."""

from __future__ import annotations

from repro.distributed.messages import OverlapRequest
from repro.utils.sizeof import deep_size_of, encoded_size


class TestEncodedSize:
    def test_scalars(self):
        assert encoded_size(None) == 1
        assert encoded_size(True) == 1
        assert encoded_size(7) == 8
        assert encoded_size(3.14) == 8

    def test_string_counts_utf8_bytes(self):
        assert encoded_size("abc") == 4 + 3
        assert encoded_size("") == 4

    def test_containers_sum_elements(self):
        assert encoded_size([1, 2, 3]) == 4 + 3 * 8
        assert encoded_size({"a": 1}) == 4 + (4 + 1) + 8

    def test_longer_cell_list_costs_more(self):
        small = OverlapRequest(query_id="q", cells=(1, 2), query_rect=(0, 0, 1, 1), k=5)
        large = OverlapRequest(query_id="q", cells=tuple(range(100)), query_rect=(0, 0, 1, 1), k=5)
        assert encoded_size(large) > encoded_size(small)

    def test_wire_payload_hook_is_used(self):
        class Message:
            def wire_payload(self):
                return {"x": 1}

        assert encoded_size(Message()) == encoded_size({"x": 1})

    def test_object_without_payload_uses_dict(self):
        class Plain:
            def __init__(self):
                self.a = 1
                self.b = "zz"

        assert encoded_size(Plain()) == encoded_size({"a": 1, "b": "zz"})


class TestDeepSizeOf:
    def test_nested_structures_count_children(self):
        flat = [1, 2, 3]
        nested = [[1, 2, 3], [4, 5, 6]]
        assert deep_size_of(nested) > deep_size_of(flat)

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        duplicated = [list(range(100)), list(range(100))]
        aliased = [shared, shared]
        assert deep_size_of(aliased) < deep_size_of(duplicated)

    def test_handles_cycles(self):
        a: list = []
        a.append(a)
        assert deep_size_of(a) > 0

    def test_dict_counts_keys_and_values(self):
        assert deep_size_of({"key": "value"}) > deep_size_of({})
