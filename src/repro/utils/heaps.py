"""Bounded top-k heap used by the overlap search result queue.

Algorithm 2 of the paper maintains a result priority queue ``R`` holding the
``k`` best candidates seen so far, keyed by intersection size.  The queue must
support: insert, peek at the current worst (the k-th best), and replacement of
the worst element.  :class:`BoundedTopK` wraps :mod:`heapq` with exactly that
interface and deterministic tie-breaking on the item payload.
"""

from __future__ import annotations

import heapq
from typing import Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["BoundedTopK"]


class BoundedTopK(Generic[T]):
    """A min-heap that keeps only the ``k`` largest ``(score, item)`` pairs.

    Items with equal scores are broken by their insertion order so results
    are reproducible regardless of hash randomisation.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._k = k
        self._heap: list[tuple[float, int, T]] = []
        self._counter = 0

    @property
    def k(self) -> int:
        """Maximum number of retained items."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def is_full(self) -> bool:
        """Return ``True`` once ``k`` items are retained."""
        return len(self._heap) >= self._k

    def kth_score(self) -> float:
        """Score of the current k-th best item, ``-inf`` while not full.

        This is the threshold a new candidate must beat to enter the heap,
        mirroring ``R.peek()`` in Algorithm 2.
        """
        if not self.is_full():
            return float("-inf")
        return self._heap[0][0]

    def push(self, score: float, item: T) -> bool:
        """Offer ``item`` with ``score``; return ``True`` if it was retained."""
        entry = (score, self._counter, item)
        self._counter += 1
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            return True
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def extend(self, scored_items: Iterable[tuple[float, T]]) -> None:
        """Offer every ``(score, item)`` pair in ``scored_items``."""
        for score, item in scored_items:
            self.push(score, item)

    def items(self) -> list[tuple[float, T]]:
        """Return retained ``(score, item)`` pairs, best score first."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [(score, item) for score, _, item in ordered]

    def __iter__(self) -> Iterator[tuple[float, T]]:
        return iter(self.items())
