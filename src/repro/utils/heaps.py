"""Bounded top-k heaps used by the overlap search result queues.

Algorithm 2 of the paper maintains a result priority queue ``R`` holding the
``k`` best candidates seen so far, keyed by intersection size.  The queue must
support: insert, peek at the current worst (the k-th best), and replacement of
the worst element.  Two variants are provided:

* :class:`BoundedTopK` breaks score ties by *insertion order* — reproducible
  for a fixed scan order, which is what the data center's aggregation (a
  fixed candidate-source order) wants.
* :class:`CanonicalTopK` breaks score ties by the *item itself* (smallest
  first) both for retention and for the final ordering, so the retained set
  is a pure function of the offered ``(score, item)`` pairs — independent of
  the order they arrive in.  OverlapSearch uses it so results do not depend
  on the DITS-L tree shape (fresh build vs. incrementally rebalanced).
"""

from __future__ import annotations

import heapq
from typing import Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["BoundedTopK", "CanonicalTopK"]


class BoundedTopK(Generic[T]):
    """A min-heap that keeps only the ``k`` largest ``(score, item)`` pairs.

    Items with equal scores are broken by their insertion order so results
    are reproducible regardless of hash randomisation.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._k = k
        self._heap: list[tuple[float, int, T]] = []
        self._counter = 0

    @property
    def k(self) -> int:
        """Maximum number of retained items."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def is_full(self) -> bool:
        """Return ``True`` once ``k`` items are retained."""
        return len(self._heap) >= self._k

    def kth_score(self) -> float:
        """Score of the current k-th best item, ``-inf`` while not full.

        This is the threshold a new candidate must beat to enter the heap,
        mirroring ``R.peek()`` in Algorithm 2.
        """
        if not self.is_full():
            return float("-inf")
        return self._heap[0][0]

    def push(self, score: float, item: T) -> bool:
        """Offer ``item`` with ``score``; return ``True`` if it was retained."""
        entry = (score, self._counter, item)
        self._counter += 1
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            return True
        if score > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def extend(self, scored_items: Iterable[tuple[float, T]]) -> None:
        """Offer every ``(score, item)`` pair in ``scored_items``."""
        for score, item in scored_items:
            self.push(score, item)

    def items(self) -> list[tuple[float, T]]:
        """Return retained ``(score, item)`` pairs, best score first."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [(score, item) for score, _, item in ordered]

    def __iter__(self) -> Iterator[tuple[float, T]]:
        return iter(self.items())


class _ReverseOrder(Generic[T]):
    """Wrapper inverting the comparison order of its payload (for min-heaps)."""

    __slots__ = ("value",)

    def __init__(self, value: T) -> None:
        self.value = value

    def __lt__(self, other: "_ReverseOrder[T]") -> bool:
        return other.value < self.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseOrder) and other.value == self.value


class CanonicalTopK(Generic[T]):
    """A bounded top-k heap whose retained set ignores insertion order.

    Keeps the ``k`` largest ``(score, item)`` pairs where ties on ``score``
    are broken by the smallest ``item`` (items must be totally ordered, e.g.
    dataset-ID strings).  Offering the same multiset of pairs in any order
    yields the same retained set and the same :meth:`items` ordering
    ``(score desc, item asc)`` — which also matches the convention of the
    OJSP baseline methods.
    """

    __slots__ = ("_k", "_heap", "_members")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._k = k
        # Min-heap of (score, _ReverseOrder(item)): the root is the entry to
        # evict first — lowest score, largest item among equal scores.
        self._heap: list[tuple[float, _ReverseOrder[T]]] = []
        self._members: set[T] = set()

    @property
    def k(self) -> int:
        """Maximum number of retained items."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: T) -> bool:
        return item in self._members

    def is_full(self) -> bool:
        """Return ``True`` once ``k`` items are retained."""
        return len(self._heap) >= self._k

    def kth_score(self) -> float:
        """Score of the current k-th best item, ``-inf`` while not full."""
        if not self.is_full():
            return float("-inf")
        return self._heap[0][0]

    def push(self, score: float, item: T) -> bool:  # parity-critical
        """Offer ``item`` with ``score``; return ``True`` if it was retained."""
        entry = (score, _ReverseOrder(item))
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            self._members.add(item)
            return True
        if entry > self._heap[0]:
            _, evicted = heapq.heapreplace(self._heap, entry)
            self._members.discard(evicted.value)
            self._members.add(item)
            return True
        return False

    def items(self) -> list[tuple[float, T]]:  # parity-critical
        """Return retained ``(score, item)`` pairs: score desc, item asc."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1].value))
        return [(score, wrapped.value) for score, wrapped in ordered]

    def __iter__(self) -> Iterator[tuple[float, T]]:
        return iter(self.items())
