"""Z-order (Morton) curve encoding of 2-D grid coordinates.

The paper (Definition 4) identifies every grid cell by a single non-negative
integer obtained by interleaving the binary representations of its column and
row coordinates.  The interleaving gives consecutive IDs in the range
``[0, 2**theta * 2**theta - 1]`` and keeps spatially close cells numerically
close, which is what makes posting lists and prefix filters effective.

Only two operations are needed by the rest of the library:

``zorder_encode(x, y)``
    interleave two coordinates into a Morton code.

``zorder_decode(code)``
    split a Morton code back into ``(x, y)``.

Both are exact inverses of each other for coordinates up to 32 bits, which is
far beyond the resolutions used in the paper (theta <= 14).
"""

from __future__ import annotations

__all__ = ["zorder_encode", "zorder_decode", "interleave_bits", "deinterleave_bits"]

# Magic-number bit spreading for 32-bit coordinates (classic Morton tables).
_MASKS_SPREAD = (
    0x0000_0000_FFFF_FFFF,
    0x0000_FFFF_0000_FFFF,
    0x00FF_00FF_00FF_00FF,
    0x0F0F_0F0F_0F0F_0F0F,
    0x3333_3333_3333_3333,
    0x5555_5555_5555_5555,
)
_SHIFTS = (32, 16, 8, 4, 2, 1)


def interleave_bits(value: int) -> int:
    """Spread the bits of ``value`` so they occupy the even bit positions.

    ``0b1011`` becomes ``0b1000101``.  Values must fit in 32 bits.
    """
    if value < 0:
        raise ValueError(f"coordinate must be non-negative, got {value}")
    if value >= 1 << 32:
        raise ValueError(f"coordinate must fit in 32 bits, got {value}")
    result = value & _MASKS_SPREAD[0]
    for shift, mask in zip(_SHIFTS[1:], _MASKS_SPREAD[1:]):
        result = (result | (result << shift)) & mask
    return result


def deinterleave_bits(value: int) -> int:
    """Inverse of :func:`interleave_bits`: collect the even bit positions."""
    if value < 0:
        raise ValueError(f"code must be non-negative, got {value}")
    result = value & _MASKS_SPREAD[-1]
    for shift, mask in zip(reversed(_SHIFTS[1:]), reversed(_MASKS_SPREAD[:-1])):
        result = (result | (result >> shift)) & mask
    return result


def zorder_encode(x: int, y: int) -> int:
    """Encode grid coordinates ``(x, y)`` into a single Morton code.

    The x coordinate occupies the even bits and the y coordinate the odd
    bits, matching the paper's Fig. 2 where the bottom-left cell (0, 0) has
    ID 0 and cell (1, 0) has ID 1.
    """
    return interleave_bits(x) | (interleave_bits(y) << 1)


def zorder_decode(code: int) -> tuple[int, int]:
    """Decode a Morton code back into its ``(x, y)`` grid coordinates."""
    if code < 0:
        raise ValueError(f"code must be non-negative, got {code}")
    return deinterleave_bits(code), deinterleave_bits(code >> 1)
