"""Z-order (Morton) curve encoding of 2-D grid coordinates.

The paper (Definition 4) identifies every grid cell by a single non-negative
integer obtained by interleaving the binary representations of its column and
row coordinates.  The interleaving gives consecutive IDs in the range
``[0, 2**theta * 2**theta - 1]`` and keeps spatially close cells numerically
close, which is what makes posting lists and prefix filters effective.

Only two operations are needed by the rest of the library:

``zorder_encode(x, y)``
    interleave two coordinates into a Morton code.

``zorder_decode(code)``
    split a Morton code back into ``(x, y)``.

Both are exact inverses of each other for coordinates up to 32 bits, which is
far beyond the resolutions used in the paper (theta <= 14).

The scalar functions are kept for single-cell conversions; the hot paths
(dataset discretisation, MBR computation, baseline index construction) use
the batch variants ``zorder_encode_batch`` / ``zorder_decode_batch``, which
run the same magic-number bit spreading over whole ``numpy`` vectors in a
handful of C-level passes.  The batch encoders accept coordinates up to 31
bits so the resulting codes stay inside ``int64`` (theta <= 20 only needs 20
bits per axis).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zorder_encode",
    "zorder_decode",
    "zorder_encode_batch",
    "zorder_decode_batch",
    "interleave_bits",
    "deinterleave_bits",
]

# Magic-number bit spreading for 32-bit coordinates (classic Morton tables).
_MASKS_SPREAD = (
    0x0000_0000_FFFF_FFFF,
    0x0000_FFFF_0000_FFFF,
    0x00FF_00FF_00FF_00FF,
    0x0F0F_0F0F_0F0F_0F0F,
    0x3333_3333_3333_3333,
    0x5555_5555_5555_5555,
)
_SHIFTS = (32, 16, 8, 4, 2, 1)


def interleave_bits(value: int) -> int:
    """Spread the bits of ``value`` so they occupy the even bit positions.

    ``0b1011`` becomes ``0b1000101``.  Values must fit in 32 bits.
    """
    if value < 0:
        raise ValueError(f"coordinate must be non-negative, got {value}")
    if value >= 1 << 32:
        raise ValueError(f"coordinate must fit in 32 bits, got {value}")
    result = value & _MASKS_SPREAD[0]
    for shift, mask in zip(_SHIFTS[1:], _MASKS_SPREAD[1:]):
        result = (result | (result << shift)) & mask
    return result


def deinterleave_bits(value: int) -> int:
    """Inverse of :func:`interleave_bits`: collect the even bit positions."""
    if value < 0:
        raise ValueError(f"code must be non-negative, got {value}")
    result = value & _MASKS_SPREAD[-1]
    for shift, mask in zip(reversed(_SHIFTS[1:]), reversed(_MASKS_SPREAD[:-1])):
        result = (result | (result >> shift)) & mask
    return result


def zorder_encode(x: int, y: int) -> int:
    """Encode grid coordinates ``(x, y)`` into a single Morton code.

    The x coordinate occupies the even bits and the y coordinate the odd
    bits, matching the paper's Fig. 2 where the bottom-left cell (0, 0) has
    ID 0 and cell (1, 0) has ID 1.
    """
    return interleave_bits(x) | (interleave_bits(y) << 1)


def zorder_decode(code: int) -> tuple[int, int]:
    """Decode a Morton code back into its ``(x, y)`` grid coordinates."""
    if code < 0:
        raise ValueError(f"code must be non-negative, got {code}")
    return deinterleave_bits(code), deinterleave_bits(code >> 1)


# ---------------------------------------------------------------------- #
# Vectorized batch variants
# ---------------------------------------------------------------------- #
_MAX_BATCH_COORD = 1 << 31  # codes of 31-bit coordinates fit in int64


def _spread_bits_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`interleave_bits` over a uint64 vector (in place)."""
    values &= np.uint64(_MASKS_SPREAD[0])
    for shift, mask in zip(_SHIFTS[1:], _MASKS_SPREAD[1:]):
        values |= values << np.uint64(shift)
        values &= np.uint64(mask)
    return values


def _collect_bits_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`deinterleave_bits` over a uint64 vector (in place)."""
    values &= np.uint64(_MASKS_SPREAD[-1])
    for shift, mask in zip(reversed(_SHIFTS[1:]), reversed(_MASKS_SPREAD[:-1])):
        values |= values >> np.uint64(shift)
        values &= np.uint64(mask)
    return values


def zorder_encode_batch(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Encode coordinate vectors into a Morton-code vector (dtype int64).

    Matches :func:`zorder_encode` element-wise for coordinates in
    ``[0, 2**31)``; larger values would overflow the signed result dtype and
    raise.
    """
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    if xs.size:
        lo = min(int(xs.min()), int(ys.min()))
        hi = max(int(xs.max()), int(ys.max()))
        if lo < 0:
            raise ValueError(f"coordinate must be non-negative, got {lo}")
        if hi >= _MAX_BATCH_COORD:
            raise ValueError(f"batch coordinates must fit in 31 bits, got {hi}")
    even = _spread_bits_batch(xs.astype(np.uint64))
    odd = _spread_bits_batch(ys.astype(np.uint64))
    return (even | (odd << np.uint64(1))).astype(np.int64)


def zorder_decode_batch(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode a Morton-code vector into ``(xs, ys)`` int64 coordinate vectors.

    Matches :func:`zorder_decode` element-wise for non-negative codes.
    """
    codes = np.asarray(codes)
    if codes.size and int(codes.min()) < 0:
        raise ValueError(f"code must be non-negative, got {int(codes.min())}")
    unsigned = codes.astype(np.uint64)
    xs = _collect_bits_batch(unsigned.copy())
    ys = _collect_bits_batch(unsigned >> np.uint64(1))
    return xs.astype(np.int64), ys.astype(np.int64)
