"""Byte-size accounting used for communication-cost experiments.

The paper's Figs. 13/14 and 19/20 measure the number of bytes shipped between
the data center and the data sources.  Since our "network" is an in-process
simulated channel, we need a deterministic estimate of how many bytes a
message would occupy on the wire.  Two flavours are provided:

``encoded_size(obj)``
    the size of a compact, schema-less binary encoding (integers as 8 bytes,
    floats as 8 bytes, strings as UTF-8, containers as the sum of their
    elements plus a small header).  This is what the simulated channel uses
    because it approximates a realistic serialisation such as protobuf or
    msgpack rather than Python object overhead.

``deep_size_of(obj)``
    recursive :func:`sys.getsizeof`, used for index memory-footprint
    experiments (Fig. 8 right) where in-memory size is the quantity of
    interest.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping, Sequence, Set

__all__ = ["encoded_size", "deep_size_of"]

_CONTAINER_HEADER_BYTES = 4
_NUMBER_BYTES = 8


def encoded_size(obj: object) -> int:
    """Estimate the wire size in bytes of ``obj`` under a compact encoding."""
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, int) or isinstance(obj, float):
        return _NUMBER_BYTES
    if isinstance(obj, str):
        return _CONTAINER_HEADER_BYTES + len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return _CONTAINER_HEADER_BYTES + len(obj)
    if isinstance(obj, Mapping):
        return _CONTAINER_HEADER_BYTES + sum(
            encoded_size(key) + encoded_size(value) for key, value in obj.items()
        )
    if isinstance(obj, (Sequence, Set, frozenset)):
        return _CONTAINER_HEADER_BYTES + sum(encoded_size(item) for item in obj)
    if hasattr(obj, "wire_payload"):
        return encoded_size(obj.wire_payload())
    if hasattr(obj, "__dict__"):
        return encoded_size(vars(obj))
    return sys.getsizeof(obj)


def deep_size_of(obj: object, _seen: set[int] | None = None) -> int:
    """Recursive in-memory size of ``obj`` in bytes.

    Shared sub-objects are counted once; cycles are handled via the ``_seen``
    identity set.
    """
    seen = _seen if _seen is not None else set()
    obj_id = id(obj)
    if obj_id in seen:
        return 0
    seen.add(obj_id)

    size = sys.getsizeof(obj)
    if isinstance(obj, (str, bytes, bytearray, int, float, bool)) or obj is None:
        return size
    if isinstance(obj, Mapping):
        size += sum(
            deep_size_of(key, seen) + deep_size_of(value, seen)
            for key, value in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_size_of(item, seen) for item in obj)
    if hasattr(obj, "__dict__"):
        size += deep_size_of(vars(obj), seen)
    if hasattr(obj, "__slots__"):
        size += sum(
            deep_size_of(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size
