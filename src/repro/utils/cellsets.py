"""Vectorized cell-set engine: sorted-array kernels for cell-based datasets.

Every search algorithm in the paper ultimately reduces to set algebra over
*cell-based datasets* (Definition 5): intersection sizes for OJSP overlap
scores (Definition 7), difference sizes for CJSP marginal coverage gains
(Algorithm 3) and unions for the running covered set.  The seed reproduction
performed all of that with Python ``frozenset`` operations, which allocate a
hash probe per element; this module provides the vectorized alternative.

A cell set is represented as a **sorted, de-duplicated** ``numpy.int64``
vector.  On sorted vectors the three size kernels need no intermediate
result sets: membership of the smaller vector in the larger one is resolved
with one C-level :func:`numpy.searchsorted` sweep (a galloping merge), so

* ``intersection_size(a, b)`` costs ``O(min(m, n) * log(max(m, n)))``
  vectorized element compares and allocates one boolean mask,
* ``union_size`` and ``difference_size`` are derived from it by
  inclusion–exclusion without materializing the union/difference.

Two backends are exposed so the original ``frozenset`` code paths remain
available as a bit-for-bit reference implementation:

* ``"vector"`` (default) — the sorted-array kernels of this module;
* ``"frozenset"`` — the seed's pure-Python set algebra.

The active backend is selected with :func:`set_backend` (or the
``REPRO_CELLSET_BACKEND`` environment variable) and consulted by
``DatasetNode``/``OverlapSearch``/``CoverageSearch``.  Both backends are
required to produce identical search results; the property tests in
``tests/search/test_backend_parity.py`` enforce that.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

__all__ = [
    "CELL_DTYPE",
    "as_cell_array",
    "intersection_size",
    "union_size",
    "difference_size",
    "intersect",
    "union",
    "difference",
    "contains_all",
    "get_backend",
    "set_backend",
    "use_vector",
]

#: Canonical dtype of cell-ID vectors.  ``theta <= 20`` keeps Morton codes
#: below ``2**40``, far inside the int64 range.
CELL_DTYPE = np.int64

_VALID_BACKENDS = ("vector", "frozenset")

_backend = os.environ.get("REPRO_CELLSET_BACKEND", "vector")
if _backend not in _VALID_BACKENDS:
    raise ValueError(
        f"REPRO_CELLSET_BACKEND must be one of {_VALID_BACKENDS}, got {_backend!r}"
    )

_EMPTY = np.empty(0, dtype=CELL_DTYPE)


# ---------------------------------------------------------------------- #
# Backend selection
# ---------------------------------------------------------------------- #
def get_backend() -> str:
    """Name of the active cell-set backend (``"vector"`` or ``"frozenset"``)."""
    return _backend


def set_backend(name: str) -> str:
    """Select the cell-set backend; returns the previously active one."""
    global _backend
    if name not in _VALID_BACKENDS:
        raise ValueError(f"backend must be one of {_VALID_BACKENDS}, got {name!r}")
    previous = _backend
    _backend = name
    return previous


def use_vector() -> bool:
    """Whether the vectorized kernels are the active backend."""
    return _backend == "vector"


# ---------------------------------------------------------------------- #
# Construction
# ---------------------------------------------------------------------- #
def as_cell_array(cells: "Iterable[int] | np.ndarray") -> np.ndarray:
    """Sorted, de-duplicated int64 vector of cell IDs.

    Accepts any iterable of ints or an existing ndarray.  The result never
    aliases a caller-provided array, so it is safe to cache: later mutation
    of the input cannot corrupt a cached vector.
    """
    if isinstance(cells, np.ndarray):
        arr = cells.astype(CELL_DTYPE)  # defensive copy
    else:
        if not isinstance(cells, (list, tuple, set, frozenset)):
            cells = list(cells)
        arr = np.fromiter(cells, dtype=CELL_DTYPE, count=len(cells))
    if arr.size <= 1:
        return arr
    if np.all(arr[1:] > arr[:-1]):  # already sorted + unique
        return arr
    return np.unique(arr)


# ---------------------------------------------------------------------- #
# Size kernels (no intermediate set materialization)
# ---------------------------------------------------------------------- #
def _membership(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Boolean mask marking which sorted ``needles`` occur in sorted ``haystack``."""
    if needles.size == 0 or haystack.size == 0:
        return np.zeros(needles.size, dtype=bool)
    idx = np.searchsorted(haystack, needles)
    idx[idx == haystack.size] = haystack.size - 1
    return haystack[idx] == needles


def intersection_size(a: np.ndarray, b: np.ndarray) -> int:
    """``|a & b|`` for two sorted unique cell vectors."""
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return 0
    return int(np.count_nonzero(_membership(a, b)))


def union_size(a: np.ndarray, b: np.ndarray) -> int:
    """``|a | b|`` by inclusion–exclusion (no union is materialized)."""
    return int(a.size + b.size - intersection_size(a, b))


def difference_size(a: np.ndarray, b: np.ndarray) -> int:
    """``|a - b|``: cells of ``a`` not present in ``b``."""
    return int(a.size - intersection_size(a, b))


def contains_all(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether every cell of ``b`` occurs in ``a``."""
    if b.size == 0:
        return True
    if b.size > a.size:
        return False
    return bool(np.all(_membership(b, a)))


# ---------------------------------------------------------------------- #
# Materializing kernels
# ---------------------------------------------------------------------- #
def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted vector of the cells shared by ``a`` and ``b``."""
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return _EMPTY
    return a[_membership(a, b)]


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted vector of the cells of ``a`` or ``b`` (merge of two sorted runs)."""
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    merged = np.concatenate((a, b))
    merged.sort(kind="mergesort")  # two pre-sorted runs: near-linear merge
    keep = np.empty(merged.size, dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


def difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted vector of the cells of ``a`` absent from ``b``."""
    if a.size == 0 or b.size == 0:
        return a
    return a[~_membership(a, b)]
