"""Small generic utilities shared across the :mod:`repro` package.

The utilities are intentionally dependency-free (standard library plus
``numpy``) so they can be used from the lowest layers of the library (grid
encoding, index nodes) without creating import cycles.
"""

from repro.utils.heaps import BoundedTopK
from repro.utils.sizeof import deep_size_of, encoded_size
from repro.utils.zorder import zorder_decode, zorder_encode

__all__ = [
    "BoundedTopK",
    "deep_size_of",
    "encoded_size",
    "zorder_decode",
    "zorder_encode",
]
