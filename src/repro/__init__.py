"""repro: joinable search over multi-source spatial datasets (DITS).

This library reproduces the system described in "Joinable Search over
Multi-source Spatial Datasets: Overlap, Coverage, and Efficiency"
(ICDE 2025):

* the **grid / cell-based dataset** model (:mod:`repro.core`);
* the **DITS** index family — the DITS-L local index and DITS-G global index
  (:mod:`repro.index`) plus the four baseline indexes the paper compares
  against;
* the **OverlapSearch** (OJSP) and **CoverageSearch** (CJSP) algorithms and
  their baselines (:mod:`repro.search`);
* the **multi-source framework** with simulated communication accounting
  (:mod:`repro.distributed`);
* synthetic **data sources** mirroring the paper's five portals
  (:mod:`repro.data`) and the **experiment drivers** regenerating every
  table and figure of the evaluation (:mod:`repro.bench`).

Quickstart
----------
>>> from repro import MultiSourceFramework
>>> from repro.data import build_source_datasets
>>> framework = MultiSourceFramework(theta=12)
>>> _ = framework.add_source("Transit", build_source_datasets("Transit", scale=0.01))
>>> query = framework.query_from_points([(-77.0, 38.9), (-77.01, 38.91)])
>>> result = framework.overlap_search(query, k=3)
>>> len(result) <= 3
True
"""

from repro.core import (
    BoundingBox,
    CellSet,
    CoverageQuery,
    CoverageResult,
    DatasetNode,
    Grid,
    OverlapQuery,
    OverlapResult,
    Point,
    SpatialDataset,
)
from repro.distributed import DataCenter, DataSource, MultiSourceFramework
from repro.index import (
    DITSGlobalIndex,
    DITSLocalIndex,
    RebalancePolicy,
    ShardedDITSGlobalIndex,
    ShardPolicy,
)
from repro.search import CoverageSearch, OverlapSearch

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "CellSet",
    "CoverageQuery",
    "CoverageResult",
    "CoverageSearch",
    "DITSGlobalIndex",
    "DITSLocalIndex",
    "DataCenter",
    "DataSource",
    "DatasetNode",
    "Grid",
    "MultiSourceFramework",
    "OverlapQuery",
    "OverlapResult",
    "OverlapSearch",
    "Point",
    "RebalancePolicy",
    "ShardPolicy",
    "ShardedDITSGlobalIndex",
    "SpatialDataset",
    "__version__",
]
