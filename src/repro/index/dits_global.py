"""DITS-G: the global index held by the data center (Section V-B).

Each data source builds its own DITS-L and ships only its *root summary*
(MBR, pivot, radius, dataset count) to the data center, converted to
geographic coordinates so that sources gridded at different resolutions can
coexist.  The data center arranges these summaries into the same kind of
binary tree as DITS-L (without leaf inverted indexes) and uses it to answer
one question: *which sources could possibly contain results for this query?*

Pruning rules (Section VI-A):

* a source whose MBR does not intersect the query MBR cannot contribute to
  OJSP results;
* for CJSP, a source whose distance lower bound to the query exceeds the
  connectivity threshold ``delta`` cannot contain directly connected
  datasets.

The candidate set is *defined* as the set of summaries passing the
per-summary predicate (:func:`summary_may_contain`); internal tree nodes are
pruned with a bound (:func:`node_may_contain`) that is provably never
stricter than any contained summary's predicate, so the answer does not
depend on the shape of the tree.  That invariant is what allows the sharded
variant (:mod:`repro.index.dits_global_sharded`) — which builds one tree per
shard — to return bit-identical candidates.

Rebuilds are *lazy*: mutations only mark the tree dirty and the next query
(or explicit ``root``/``node_count`` access) rebuilds it once, so a batch of
``register``/``unregister`` calls costs a single reconstruction.
``rebuild_count`` exposes how many reconstructions actually happened.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import IndexNotBuiltError, InvalidParameterError, SourceNotFoundError
from repro.core.geometry import BoundingBox, Point

__all__ = [
    "SourceSummary",
    "DITSGlobalIndex",
    "summary_may_contain",
    "node_may_contain",
    "build_summary_tree",
]

DEFAULT_FANOUT = 4


@dataclass(frozen=True, slots=True)
class SourceSummary:
    """A data source's root-node summary in geographic coordinates."""

    source_id: str
    rect: BoundingBox
    dataset_count: int

    @property
    def pivot(self) -> Point:
        """Centre of the source's MBR."""
        return self.rect.center

    @property
    def radius(self) -> float:
        """Half of the MBR diagonal."""
        return self.rect.radius

    def wire_payload(self) -> dict[str, object]:
        """Compact payload for communication accounting."""
        return {
            "source": self.source_id,
            "rect": self.rect.as_tuple(),
            "count": self.dataset_count,
        }


class _GlobalNode:
    """Internal/leaf node of the global tree over source summaries."""

    __slots__ = ("rect", "pivot", "radius", "children", "summaries")

    def __init__(
        self,
        rect: BoundingBox,
        children: list["_GlobalNode"] | None = None,
        summaries: list[SourceSummary] | None = None,
    ) -> None:
        self.rect = rect
        self.pivot = rect.center
        self.radius = rect.radius
        self.children = children or []
        self.summaries = summaries or []

    def is_leaf(self) -> bool:
        return not self.children


def build_summary_tree(
    summaries: list[SourceSummary], leaf_capacity: int
) -> _GlobalNode:
    """Build the DITS-G binary tree over ``summaries`` (non-empty)."""
    rect = BoundingBox.union_of(summary.rect for summary in summaries)
    if len(summaries) <= leaf_capacity:
        return _GlobalNode(rect, summaries=summaries)
    split_dim = 0 if rect.width >= rect.height else 1
    ordered = sorted(
        summaries,
        key=lambda s: (s.pivot.x if split_dim == 0 else s.pivot.y, s.source_id),
    )
    midpoint = len(ordered) // 2
    left = build_summary_tree(ordered[:midpoint], leaf_capacity)
    right = build_summary_tree(ordered[midpoint:], leaf_capacity)
    return _GlobalNode(rect, children=[left, right])


def collect_candidates(
    root: _GlobalNode | None,
    query_rect: BoundingBox,
    delta_geo: float,
    out: list[SourceSummary],
) -> None:
    """Append every summary under ``root`` passing the pruning predicate."""
    if root is None:
        return
    query_pivot = query_rect.center
    query_radius = query_rect.radius
    stack = [root]
    while stack:
        node = stack.pop()
        if not node_may_contain(node.rect, query_rect, query_pivot, query_radius, delta_geo):
            continue
        if node.is_leaf():
            for summary in node.summaries:
                if summary_may_contain(
                    summary.rect, query_rect, query_pivot, query_radius, delta_geo
                ):
                    out.append(summary)
        else:
            stack.extend(node.children)


class DITSGlobalIndex:
    """The global index over registered data sources.

    Parameters
    ----------
    leaf_capacity:
        Maximum number of source summaries per leaf (the paper reuses the
        local leaf capacity ``f``; the number of sources is small so the
        default of 4 keeps the tree shallow but non-trivial).
    """

    def __init__(self, leaf_capacity: int = DEFAULT_FANOUT) -> None:
        if leaf_capacity <= 0:
            raise InvalidParameterError(f"leaf capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self._summaries: dict[str, SourceSummary] = {}
        self._root: _GlobalNode | None = None
        self._dirty = False
        self._rebuilds = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, summary: SourceSummary) -> None:
        """Register or refresh a source's root summary.

        The tree itself is only marked stale; the next query rebuilds it, so
        a burst of registrations costs one reconstruction, not one each.
        """
        with self._lock:
            self._summaries[summary.source_id] = summary
            self._dirty = True

    def register_all(self, summaries: Iterable[SourceSummary]) -> None:
        """Register several summaries at once."""
        with self._lock:
            for summary in summaries:
                self._summaries[summary.source_id] = summary
            self._dirty = True

    def unregister(self, source_id: str) -> None:
        """Remove a source from the global index (tree rebuilt lazily)."""
        with self._lock:
            if source_id not in self._summaries:
                raise SourceNotFoundError(source_id)
            del self._summaries[source_id]
            self._dirty = True

    def source_ids(self) -> list[str]:
        """IDs of all registered sources, sorted."""
        with self._lock:
            return sorted(self._summaries)

    def summary_of(self, source_id: str) -> SourceSummary:
        """The registered summary for ``source_id``."""
        with self._lock:
            try:
                return self._summaries[source_id]
            except KeyError as exc:
                raise SourceNotFoundError(source_id) from exc

    def __len__(self) -> int:
        with self._lock:
            return len(self._summaries)

    def __contains__(self, source_id: str) -> bool:
        with self._lock:
            return source_id in self._summaries

    # ------------------------------------------------------------------ #
    # Tree construction
    # ------------------------------------------------------------------ #
    def _ensure_built(self) -> _GlobalNode | None:
        """Rebuild the tree if stale; returns the (possibly None) root."""
        with self._lock:
            if self._dirty:
                summaries = list(self._summaries.values())
                self._root = (
                    build_summary_tree(summaries, self.leaf_capacity) if summaries else None
                )
                self._rebuilds += 1
                self._dirty = False
            return self._root

    @property
    def rebuild_count(self) -> int:
        """How many times the tree has actually been reconstructed."""
        with self._lock:
            return self._rebuilds

    @property
    def root(self) -> _GlobalNode:
        """Root of the global tree; raises if no source is registered."""
        root = self._ensure_built()
        if root is None:
            raise IndexNotBuiltError("no data sources registered with the global index")
        return root

    # ------------------------------------------------------------------ #
    # Candidate-source selection (query distribution strategy 1)
    # ------------------------------------------------------------------ #
    def candidate_sources(
        self,
        query_rect: BoundingBox,
        delta_geo: float = 0.0,
    ) -> list[SourceSummary]:
        """Sources whose region could contain OJSP/CJSP results for the query.

        Parameters
        ----------
        query_rect:
            MBR of the query in geographic coordinates.
        delta_geo:
            Connectivity threshold converted to geographic units.  ``0``
            keeps only sources whose MBR intersects the query (the OJSP
            rule); a positive value additionally keeps sources whose
            pivot-distance lower bound to the query is within the threshold
            (the CJSP rule).
        """
        candidates: list[SourceSummary] = []
        collect_candidates(self._ensure_built(), query_rect, delta_geo, candidates)
        candidates.sort(key=lambda summary: summary.source_id)
        return candidates

    def all_summaries(self) -> Iterator[SourceSummary]:
        """Iterate over every registered summary (used by broadcast baselines)."""
        with self._lock:
            snapshot = dict(self._summaries)
        for source_id in sorted(snapshot):
            yield snapshot[source_id]

    def node_count(self) -> int:
        """Number of nodes in the global tree."""
        root = self._ensure_built()
        if root is None:
            return 0
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count


def summary_may_contain(
    rect: BoundingBox,
    query_rect: BoundingBox,
    query_pivot: Point,
    query_radius: float,
    delta_geo: float,
) -> bool:
    """Pruning predicate of Section VI-A applied to one source summary."""
    if rect.intersects(query_rect):
        return True
    if delta_geo <= 0:
        return False
    pivot_distance = rect.center.distance_to(query_pivot)
    lower_bound = max(pivot_distance - rect.radius - query_radius, 0.0)
    return lower_bound <= delta_geo or math.isclose(lower_bound, delta_geo)


def node_may_contain(
    rect: BoundingBox,
    query_rect: BoundingBox,
    query_pivot: Point,
    query_radius: float,
    delta_geo: float,
) -> bool:
    """Whether a tree node could hold a summary passing :func:`summary_may_contain`.

    For any summary under the node, the summary's pivot lies inside the node
    rect and its radius is at most the node radius, so
    ``min_distance_to_point(query_pivot) - rect.radius - query_radius`` is a
    lower bound on every contained summary's own pruning bound.  Descending
    on this weaker bound guarantees the candidate set equals the flat
    per-summary filter regardless of how the summaries are split into nodes
    (or into shards).
    """
    if rect.intersects(query_rect):
        return True
    if delta_geo <= 0:
        return False
    lower_bound = max(
        rect.min_distance_to_point(query_pivot) - rect.radius - query_radius, 0.0
    )
    return lower_bound <= delta_geo or math.isclose(lower_bound, delta_geo)
