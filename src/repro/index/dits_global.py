"""DITS-G: the global index held by the data center (Section V-B).

Each data source builds its own DITS-L and ships only its *root summary*
(MBR, pivot, radius, dataset count) to the data center, converted to
geographic coordinates so that sources gridded at different resolutions can
coexist.  The data center arranges these summaries into the same kind of
binary tree as DITS-L (without leaf inverted indexes) and uses it to answer
one question: *which sources could possibly contain results for this query?*

Pruning rules (Section VI-A):

* a source whose MBR does not intersect the query MBR cannot contribute to
  OJSP results;
* for CJSP, a source whose distance lower bound to the query exceeds the
  connectivity threshold ``delta`` cannot contain directly connected
  datasets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import IndexNotBuiltError, InvalidParameterError, SourceNotFoundError
from repro.core.geometry import BoundingBox, Point

__all__ = ["SourceSummary", "DITSGlobalIndex"]

DEFAULT_FANOUT = 4


@dataclass(frozen=True, slots=True)
class SourceSummary:
    """A data source's root-node summary in geographic coordinates."""

    source_id: str
    rect: BoundingBox
    dataset_count: int

    @property
    def pivot(self) -> Point:
        """Centre of the source's MBR."""
        return self.rect.center

    @property
    def radius(self) -> float:
        """Half of the MBR diagonal."""
        return self.rect.radius

    def wire_payload(self) -> dict:
        """Compact payload for communication accounting."""
        return {
            "source": self.source_id,
            "rect": self.rect.as_tuple(),
            "count": self.dataset_count,
        }


class _GlobalNode:
    """Internal/leaf node of the global tree over source summaries."""

    __slots__ = ("rect", "pivot", "radius", "children", "summaries")

    def __init__(
        self,
        rect: BoundingBox,
        children: list["_GlobalNode"] | None = None,
        summaries: list[SourceSummary] | None = None,
    ) -> None:
        self.rect = rect
        self.pivot = rect.center
        self.radius = rect.radius
        self.children = children or []
        self.summaries = summaries or []

    def is_leaf(self) -> bool:
        return not self.children


class DITSGlobalIndex:
    """The global index over registered data sources.

    Parameters
    ----------
    leaf_capacity:
        Maximum number of source summaries per leaf (the paper reuses the
        local leaf capacity ``f``; the number of sources is small so the
        default of 4 keeps the tree shallow but non-trivial).
    """

    def __init__(self, leaf_capacity: int = DEFAULT_FANOUT) -> None:
        if leaf_capacity <= 0:
            raise InvalidParameterError(f"leaf capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self._summaries: dict[str, SourceSummary] = {}
        self._root: _GlobalNode | None = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, summary: SourceSummary) -> None:
        """Register or refresh a source's root summary and rebuild the tree.

        Rebuilding is cheap because the tree has one entry per *source*
        (a handful), not per dataset.
        """
        self._summaries[summary.source_id] = summary
        self._rebuild()

    def register_all(self, summaries: Iterable[SourceSummary]) -> None:
        """Register several summaries at once."""
        for summary in summaries:
            self._summaries[summary.source_id] = summary
        self._rebuild()

    def unregister(self, source_id: str) -> None:
        """Remove a source from the global index."""
        if source_id not in self._summaries:
            raise SourceNotFoundError(source_id)
        del self._summaries[source_id]
        self._rebuild()

    def source_ids(self) -> list[str]:
        """IDs of all registered sources, sorted."""
        return sorted(self._summaries)

    def summary_of(self, source_id: str) -> SourceSummary:
        """The registered summary for ``source_id``."""
        try:
            return self._summaries[source_id]
        except KeyError as exc:
            raise SourceNotFoundError(source_id) from exc

    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._summaries

    # ------------------------------------------------------------------ #
    # Tree construction
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        summaries = list(self._summaries.values())
        self._root = self._build(summaries) if summaries else None

    def _build(self, summaries: list[SourceSummary]) -> _GlobalNode:
        rect = BoundingBox.union_of(summary.rect for summary in summaries)
        if len(summaries) <= self.leaf_capacity:
            return _GlobalNode(rect, summaries=summaries)
        split_dim = 0 if rect.width >= rect.height else 1
        ordered = sorted(
            summaries,
            key=lambda s: (s.pivot.x if split_dim == 0 else s.pivot.y, s.source_id),
        )
        midpoint = len(ordered) // 2
        left = self._build(ordered[:midpoint])
        right = self._build(ordered[midpoint:])
        return _GlobalNode(rect, children=[left, right])

    @property
    def root(self) -> _GlobalNode:
        """Root of the global tree; raises if no source is registered."""
        if self._root is None:
            raise IndexNotBuiltError("no data sources registered with the global index")
        return self._root

    # ------------------------------------------------------------------ #
    # Candidate-source selection (query distribution strategy 1)
    # ------------------------------------------------------------------ #
    def candidate_sources(
        self,
        query_rect: BoundingBox,
        delta_geo: float = 0.0,
    ) -> list[SourceSummary]:
        """Sources whose region could contain OJSP/CJSP results for the query.

        Parameters
        ----------
        query_rect:
            MBR of the query in geographic coordinates.
        delta_geo:
            Connectivity threshold converted to geographic units.  ``0``
            keeps only sources whose MBR intersects the query (the OJSP
            rule); a positive value additionally keeps sources whose
            pivot-distance lower bound to the query is within the threshold
            (the CJSP rule).
        """
        if self._root is None:
            return []
        query_pivot = query_rect.center
        query_radius = query_rect.radius
        candidates: list[SourceSummary] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not _may_contain_results(node.rect, query_rect, query_pivot, query_radius, delta_geo):
                continue
            if node.is_leaf():
                for summary in node.summaries:
                    if _may_contain_results(
                        summary.rect, query_rect, query_pivot, query_radius, delta_geo
                    ):
                        candidates.append(summary)
            else:
                stack.extend(node.children)
        candidates.sort(key=lambda summary: summary.source_id)
        return candidates

    def all_summaries(self) -> Iterator[SourceSummary]:
        """Iterate over every registered summary (used by broadcast baselines)."""
        for source_id in sorted(self._summaries):
            yield self._summaries[source_id]

    def node_count(self) -> int:
        """Number of nodes in the global tree."""
        if self._root is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count


def _may_contain_results(
    rect: BoundingBox,
    query_rect: BoundingBox,
    query_pivot: Point,
    query_radius: float,
    delta_geo: float,
) -> bool:
    """Pruning predicate of Section VI-A applied to one tree node / summary."""
    if rect.intersects(query_rect):
        return True
    if delta_geo <= 0:
        return False
    pivot_distance = rect.center.distance_to(query_pivot)
    lower_bound = max(pivot_distance - rect.radius - query_radius, 0.0)
    return lower_bound <= delta_geo or math.isclose(lower_bound, delta_geo)
