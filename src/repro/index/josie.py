"""Josie-style sorted inverted index with prefix filtering (Zhu et al., SIGMOD 2019).

Josie searches for the top-k sets with the largest intersection with a query
set using an inverted index whose posting lists record, for every token
(cell ID), the ``(dataset id, position, size)`` of each set containing it,
where *position* is the rank of the token inside the dataset's sorted token
list.  Two classic optimisations are reproduced:

* **Global token ordering** — tokens are processed from rarest to most
  frequent, so small posting lists are read first.
* **Prefix filtering** — once ``k`` candidates with overlap at least ``t``
  are known, a dataset whose remaining-suffix size (``size - position``)
  cannot reach ``t`` is skipped, and the scan of further posting lists stops
  when even a full remaining suffix of the query cannot beat ``t``.

Construction sorts every dataset's cell list and the postings, which is the
``O(n^2)``-ish cost (dominated by sorting many lists) the paper attributes to
Josie being the slowest index to build at most resolutions.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.core.dataset import DatasetNode
from repro.index.base import DatasetIndex
from repro.utils.heaps import BoundedTopK

__all__ = ["JosieIndex", "Posting"]


class Posting(NamedTuple):
    """One posting: dataset ID, the token's rank within the dataset, and the dataset size.

    A named tuple rather than a dataclass: index construction creates one
    posting per (cell, dataset) occurrence — millions at benchmark scale —
    and tuple allocation is measurably cheaper while keeping the same
    attribute API.
    """

    dataset_id: str
    position: int
    size: int


def _posting_order(posting: Posting) -> tuple[int, str]:
    """Global posting order: dataset size first, ID as the tie-break."""
    return (posting.size, posting.dataset_id)


class JosieIndex(DatasetIndex):
    """Sorted inverted index with per-posting position/size for prefix filtering."""

    name = "Josie"

    def __init__(self) -> None:
        super().__init__()
        self._postings: dict[int, list[Posting]] = {}
        self._token_frequency: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # DatasetIndex hooks
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        self._postings = {}
        # Adding datasets in global (size, id) posting order means every
        # posting list is appended already sorted, so the per-list sorts
        # the incremental insert path needs collapse to no-ops here.
        for node in sorted(
            self._nodes.values(), key=lambda n: (len(n.cells), n.dataset_id)
        ):
            self._add_postings(node)
        self._refresh_frequencies()

    def _insert_structure(self, node: DatasetNode) -> None:
        self._add_postings(node)
        for cell in node.cells:
            self._postings[cell].sort(key=_posting_order)
        self._refresh_frequencies()

    def _delete_structure(self, node: DatasetNode) -> None:
        for cell in node.cells:
            postings = self._postings.get(cell)
            if postings is None:
                continue
            self._postings[cell] = [p for p in postings if p.dataset_id != node.dataset_id]
            if not self._postings[cell]:
                del self._postings[cell]
        self._refresh_frequencies()

    def _add_postings(self, node: DatasetNode) -> None:
        sorted_cells = node.cells_array.tolist()  # already sorted + unique
        size = len(sorted_cells)
        dataset_id = node.dataset_id
        postings = self._postings
        for position, cell in enumerate(sorted_cells):
            entry = Posting(dataset_id=dataset_id, position=position, size=size)
            cell_postings = postings.get(cell)
            if cell_postings is None:
                postings[cell] = [entry]
            else:
                cell_postings.append(entry)

    def _refresh_frequencies(self) -> None:
        self._token_frequency = {cell: len(postings) for cell, postings in self._postings.items()}

    # ------------------------------------------------------------------ #
    # Top-k overlap search with prefix filtering
    # ------------------------------------------------------------------ #
    def posting_list(self, cell_id: int) -> list[Posting]:
        """The sorted posting list of ``cell_id`` (empty if absent)."""
        return list(self._postings.get(cell_id, ()))

    def token_frequency(self, cell_id: int) -> int:
        """Number of datasets containing ``cell_id``."""
        return self._token_frequency.get(cell_id, 0)

    def top_k_overlap(self, query_cells: Iterable[int], k: int) -> list[tuple[str, int]]:
        """Top-k datasets by exact intersection size with ``query_cells``.

        Returns ``(dataset_id, overlap)`` pairs, largest overlap first.  The
        result is exact: prefix filtering only skips datasets that provably
        cannot enter the top-k.

        Tokens are scanned from rarest to most frequent.  The first time a
        dataset is encountered its exact overlap with the query is verified
        (one hash intersection) and inserted into a bounded top-k heap.  Two
        prunes keep the scan short:

        * a dataset whose size (or the remaining query suffix) cannot exceed
          the current k-th best overlap is skipped without verification;
        * the scan of further posting lists stops once the k-th best overlap
          is at least the number of unscanned query tokens — any dataset not
          yet encountered shares none of the scanned tokens and therefore
          cannot beat it.
        """
        query_set = set(query_cells)
        query = sorted(query_set, key=lambda cell: (self.token_frequency(cell), cell))
        query_size = len(query)
        if query_size == 0 or not self._postings:
            return []

        verified: dict[str, int] = {}
        heap: BoundedTopK[str] = BoundedTopK(k)

        for scanned, cell in enumerate(query):
            remaining_query = query_size - scanned
            if heap.is_full() and heap.kth_score() >= remaining_query:
                # Unseen datasets overlap only on unscanned tokens, so they
                # cannot exceed ``remaining_query`` and cannot displace the
                # current top-k.
                break
            for posting in self._postings.get(cell, ()):
                dataset_id = posting.dataset_id
                if dataset_id in verified:
                    continue
                upper_bound = min(posting.size, remaining_query)
                if heap.is_full() and upper_bound <= heap.kth_score():
                    # Cannot beat the current k-th best; record it as seen so
                    # later (more frequent) tokens do not re-examine it.
                    verified[dataset_id] = -1
                    continue
                node = self._nodes.get(dataset_id)
                if node is None:
                    continue
                overlap = len(node.cells & query_set)
                verified[dataset_id] = overlap
                heap.push(float(overlap), dataset_id)

        ranked = sorted(
            ((dataset_id, overlap) for dataset_id, overlap in verified.items() if overlap >= 0),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]

    def posting_count(self) -> int:
        """Total number of postings (for the Fig. 8 memory comparison)."""
        return sum(len(postings) for postings in self._postings.values())
