"""R-tree baseline index (Guttman 1984, as used in Section VII-B).

The R-tree groups dataset MBRs into nodes of bounded fanout.  Construction
follows the cited baseline: datasets are inserted one by one with Guttman's
least-enlargement descent and quadratic node splitting, which is what makes
the paper's DITS-L "always slightly faster than Rtree" to build — the
balanced R-tree pays for split decisions on every overflow.  A
Sort-Tile-Recursive (STR) bulk-loading mode is also provided
(``bulk_load=True``) for users who only need a static index.  Deletion
condenses empty nodes.

The OJSP baseline built on this index finds every dataset whose MBR
intersects the query MBR and then computes exact cell intersections, which is
why the paper reports it as the second-best method: MBR filtering is
effective but there is no leaf-level intersection bound to prune with.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.core.dataset import DatasetNode
from repro.core.errors import DatasetNotFoundError, InvalidParameterError
from repro.core.geometry import BoundingBox
from repro.index.base import DatasetIndex

__all__ = ["RTreeIndex", "RTreeNode"]

DEFAULT_MAX_ENTRIES = 16


class RTreeNode:
    """An R-tree node: either a leaf with dataset entries or an internal node."""

    __slots__ = ("rect", "entries", "children", "parent")

    def __init__(
        self,
        rect: BoundingBox,
        entries: list[DatasetNode] | None = None,
        children: list["RTreeNode"] | None = None,
        parent: "RTreeNode | None" = None,
    ) -> None:
        self.rect = rect
        self.entries = entries if entries is not None else []
        self.children = children if children is not None else []
        self.parent = parent
        for child in self.children:
            child.parent = self

    def is_leaf(self) -> bool:
        """Whether this node stores entries rather than child nodes."""
        return not self.children

    def recompute_rect(self) -> None:
        """Re-tighten this node's MBR from its entries/children."""
        if self.is_leaf():
            if self.entries:
                self.rect = BoundingBox.union_of(entry.rect for entry in self.entries)
        elif self.children:
            self.rect = BoundingBox.union_of(child.rect for child in self.children)

    def node_count(self) -> int:
        """Number of nodes in this subtree."""
        if self.is_leaf():
            return 1
        return 1 + sum(child.node_count() for child in self.children)


class RTreeIndex(DatasetIndex):
    """R-tree over dataset MBRs (Guttman insertion build, optional STR bulk load)."""

    name = "Rtree"

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES, bulk_load: bool = False) -> None:
        super().__init__()
        if max_entries < 2:
            raise InvalidParameterError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries
        self.bulk_load = bulk_load
        self._root: RTreeNode | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        entries = list(self._nodes.values())
        if not entries:
            self._root = None
            return
        if self.bulk_load:
            self._root = self._pack_upwards(self._pack_leaves(entries))
            return
        self._root = None
        for entry in entries:
            self._insert_structure(entry)

    def _pack_leaves(self, entries: list[DatasetNode]) -> list[RTreeNode]:
        capacity = self.max_entries
        count = len(entries)
        leaf_count = math.ceil(count / capacity)
        slices = max(1, math.ceil(math.sqrt(leaf_count)))
        by_x = sorted(entries, key=lambda e: (e.pivot.x, e.dataset_id))
        slice_size = math.ceil(count / slices)
        leaves: list[RTreeNode] = []
        for start in range(0, count, slice_size):
            column = sorted(
                by_x[start : start + slice_size], key=lambda e: (e.pivot.y, e.dataset_id)
            )
            for leaf_start in range(0, len(column), capacity):
                chunk = column[leaf_start : leaf_start + capacity]
                rect = BoundingBox.union_of(entry.rect for entry in chunk)
                leaves.append(RTreeNode(rect, entries=list(chunk)))
        return leaves

    def _pack_upwards(self, nodes: list[RTreeNode]) -> RTreeNode:
        while len(nodes) > 1:
            capacity = self.max_entries
            count = len(nodes)
            parent_count = math.ceil(count / capacity)
            slices = max(1, math.ceil(math.sqrt(parent_count)))
            by_x = sorted(nodes, key=lambda n: n.rect.center.x)
            slice_size = math.ceil(count / slices)
            parents: list[RTreeNode] = []
            for start in range(0, count, slice_size):
                column = sorted(by_x[start : start + slice_size], key=lambda n: n.rect.center.y)
                for parent_start in range(0, len(column), capacity):
                    chunk = column[parent_start : parent_start + capacity]
                    rect = BoundingBox.union_of(node.rect for node in chunk)
                    parents.append(RTreeNode(rect, children=list(chunk)))
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------ #
    # Incremental maintenance (Guttman insert / delete)
    # ------------------------------------------------------------------ #
    def _insert_structure(self, node: DatasetNode) -> None:
        if self._root is None:
            self._root = RTreeNode(node.rect, entries=[node])
            return
        leaf = self._choose_leaf(self._root, node.rect)
        leaf.entries.append(node)
        leaf.recompute_rect()
        self._handle_overflow(leaf)
        self._adjust_upwards(leaf)

    def _delete_structure(self, node: DatasetNode) -> None:
        if self._root is None:
            raise DatasetNotFoundError(node.dataset_id)
        leaf = self._find_leaf(self._root, node.dataset_id)
        if leaf is None:
            raise DatasetNotFoundError(node.dataset_id)
        leaf.entries = [entry for entry in leaf.entries if entry.dataset_id != node.dataset_id]
        if leaf.entries:
            leaf.recompute_rect()
            self._adjust_upwards(leaf)
        else:
            self._condense(leaf)

    def _choose_leaf(self, node: RTreeNode, rect: BoundingBox) -> RTreeNode:
        current = node
        while not current.is_leaf():
            current = min(
                current.children,
                key=lambda child: (child.rect.enlargement(rect), child.rect.area),
            )
        return current

    def _handle_overflow(self, node: RTreeNode) -> None:
        while len(node.entries) > self.max_entries or len(node.children) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = RTreeNode(
                    node.rect.union(sibling.rect), children=[node, sibling]
                )
                self._root = new_root
                return
            parent.children.append(sibling)
            sibling.parent = parent
            parent.recompute_rect()
            node = parent

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split: seed with the pair wasting the most area."""
        if node.is_leaf():
            items = node.entries
            rect_of = lambda item: item.rect  # noqa: E731 - tiny local accessor
        else:
            items = node.children
            rect_of = lambda item: item.rect  # noqa: E731

        seed_a, seed_b = _pick_seeds(items, rect_of)
        group_a, group_b = [items[seed_a]], [items[seed_b]]
        rect_a, rect_b = rect_of(items[seed_a]), rect_of(items[seed_b])
        remaining = [item for idx, item in enumerate(items) if idx not in (seed_a, seed_b)]
        for item in remaining:
            rect = rect_of(item)
            if rect_a.enlargement(rect) <= rect_b.enlargement(rect):
                group_a.append(item)
                rect_a = rect_a.union(rect)
            else:
                group_b.append(item)
                rect_b = rect_b.union(rect)

        sibling = RTreeNode(rect_b)
        if node.is_leaf():
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
            for child in group_b:
                child.parent = sibling
        node.recompute_rect()
        sibling.recompute_rect()
        return sibling

    def _adjust_upwards(self, node: RTreeNode) -> None:
        current = node.parent
        while current is not None:
            current.recompute_rect()
            current = current.parent

    def _condense(self, leaf: RTreeNode) -> None:
        parent = leaf.parent
        if parent is None:
            self._root = None
            return
        parent.children.remove(leaf)
        orphans: list[DatasetNode] = []
        current = parent
        while current is not None and current.parent is not None and not current.children and not current.entries:
            grandparent = current.parent
            grandparent.children.remove(current)
            current = grandparent
        node = current
        while node is not None:
            node.recompute_rect()
            node = node.parent
        for orphan in orphans:
            self._insert_structure(orphan)

    def _find_leaf(self, node: RTreeNode, dataset_id: str) -> RTreeNode | None:
        if node.is_leaf():
            if any(entry.dataset_id == dataset_id for entry in node.entries):
                return node
            return None
        for child in node.children:
            found = self._find_leaf(child, dataset_id)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------ #
    # Query helpers
    # ------------------------------------------------------------------ #
    def intersecting(self, rect: BoundingBox) -> Iterator[DatasetNode]:
        """All dataset nodes whose MBR intersects ``rect``."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(rect):
                continue
            if node.is_leaf():
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        yield entry
            else:
                stack.extend(node.children)

    def within_distance(self, rect: BoundingBox, distance: float) -> Iterator[DatasetNode]:
        """Dataset nodes whose MBR is within ``distance`` of ``rect``."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect.min_distance_to(rect) > distance:
                continue
            if node.is_leaf():
                for entry in node.entries:
                    if entry.rect.min_distance_to(rect) <= distance:
                        yield entry
            else:
                stack.extend(node.children)

    def node_count(self) -> int:
        """Number of R-tree nodes (for the Fig. 8 memory comparison)."""
        return self._root.node_count() if self._root is not None else 0

    @property
    def root(self) -> RTreeNode | None:
        """The root node (``None`` when empty)."""
        return self._root


def _pick_seeds(items: list, rect_of) -> tuple[int, int]:
    """Pick the pair of items whose combined MBR wastes the most area."""
    best_waste = -math.inf
    best_pair = (0, min(1, len(items) - 1))
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            rect_i, rect_j = rect_of(items[i]), rect_of(items[j])
            waste = rect_i.union(rect_j).area - rect_i.area - rect_j.area
            if waste > best_waste:
                best_waste = waste
                best_pair = (i, j)
    return best_pair


def build_rtree(nodes: Iterable[DatasetNode], max_entries: int = DEFAULT_MAX_ENTRIES) -> RTreeIndex:
    """Convenience constructor used by benchmarks."""
    index = RTreeIndex(max_entries=max_entries)
    index.build(nodes)
    return index
