"""STS3-style plain inverted index baseline (Peng et al., SIGMOD 2016).

STS3 divides the plane into cells and keeps a single inverted index mapping
every cell ID to the IDs of the datasets containing it.  Overlap search scans
the posting lists of the query's cells and accumulates per-dataset counts; no
tree structure or bound-based pruning is available, so every intersecting
dataset is scored — which is why the paper finds STS3 the cheapest index to
build and update but among the slowest to search.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.dataset import DatasetNode
from repro.index.base import DatasetIndex

__all__ = ["STS3Index"]


class STS3Index(DatasetIndex):
    """Plain cell-ID -> dataset-ID inverted index."""

    name = "STS3"

    def __init__(self) -> None:
        super().__init__()
        self._postings: dict[int, set[str]] = {}

    # ------------------------------------------------------------------ #
    # DatasetIndex hooks
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        postings: dict[int, set[str]] = {}
        for node in self._nodes.values():
            dataset_id = node.dataset_id
            for cell in node.cells:
                cell_postings = postings.get(cell)
                if cell_postings is None:
                    postings[cell] = {dataset_id}
                else:
                    cell_postings.add(dataset_id)
        self._postings = postings

    def _insert_structure(self, node: DatasetNode) -> None:
        for cell in node.cells:
            self._postings.setdefault(cell, set()).add(node.dataset_id)

    def _delete_structure(self, node: DatasetNode) -> None:
        for cell in node.cells:
            postings = self._postings.get(cell)
            if postings is None:
                continue
            postings.discard(node.dataset_id)
            if not postings:
                del self._postings[cell]

    # ------------------------------------------------------------------ #
    # Query helpers
    # ------------------------------------------------------------------ #
    def posting_list(self, cell_id: int) -> set[str]:
        """Dataset IDs containing ``cell_id`` (empty set if none)."""
        return set(self._postings.get(cell_id, ()))

    def overlap_counts(self, query_cells: Iterable[int]) -> Counter:
        """Per-dataset intersection counts with ``query_cells``."""
        counts: Counter = Counter()
        for cell in query_cells:
            for dataset_id in self._postings.get(cell, ()):
                counts[dataset_id] += 1
        return counts

    def posting_count(self) -> int:
        """Total number of postings (for the Fig. 8 memory comparison)."""
        return sum(len(postings) for postings in self._postings.values())

    def distinct_cells(self) -> int:
        """Number of distinct cells with at least one posting."""
        return len(self._postings)
