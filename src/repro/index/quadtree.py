"""QuadTree baseline index (Gargantini 1982, as used in Section VII-B).

The QuadTree indexes the *cells* of all datasets: every (cell, dataset)
occurrence is inserted as a point item, and a quadrant is subdivided once it
holds more than ``leaf_capacity`` items (the paper fixes the capacity to 4).
OJSP over the QuadTree therefore works like an exploded inverted index — all
cells intersecting the query region are visited and dataset occurrences are
counted — which is exactly why the paper finds it slower and bigger than
DITS-L: it stores ``N`` (total cell occurrences) items instead of ``n``
(datasets).

Construction is bulk-loaded: all cell occurrences are decoded to positions
in one vectorized Morton pass and the tree is built top-down, partitioning
the occurrence arrays with boolean masks at each quadrant.  The subdivision
rule depends only on the multiset of items in a quadrant (capacity, maximum
depth, positional distinctness), so the bulk-loaded tree is node-for-node
identical to one grown by sequential inserts — only orders of magnitude
cheaper than the seed's per-item recursive descent.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox, Point
from repro.index.base import DatasetIndex
from repro.utils.zorder import zorder_decode, zorder_decode_batch

__all__ = ["QuadTreeIndex", "QuadTreeNode"]

DEFAULT_QUAD_CAPACITY = 4
_MAX_DEPTH = 32
#: Below this occurrence count a quadrant is finished with scalar inserts;
#: above it the vectorized mask partitioning wins.
_BULK_SCALAR_CUTOFF = 128


class QuadTreeNode:
    """One quadrant of the quadtree, holding (cell, dataset) items or 4 children.

    Quadrant bounds are stored as four plain floats instead of a
    :class:`BoundingBox`: construction creates one node per quadrant
    (hundreds of thousands at benchmark scale) and the region predicates in
    the hot paths inline the float comparisons.  :attr:`rect` materializes
    the equivalent box on demand for introspection.
    """

    __slots__ = (
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "items",
        "children",
        "depth",
        "capacity",
        "mid_x",
        "mid_y",
        "distinct",
    )

    def __init__(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        capacity: int,
        depth: int = 0,
    ) -> None:
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y
        self.items: list[tuple[int, str, Point]] = []
        self.children: list["QuadTreeNode"] | None = None
        self.depth = depth
        self.capacity = capacity
        self.mid_x = (min_x + max_x) / 2.0
        self.mid_y = (min_y + max_y) / 2.0
        #: Whether the stored items span more than one distinct position.
        #: Maintained incrementally so the subdivision guard is O(1) instead
        #: of rescanning the leaf on every overflowing append.
        self.distinct = False

    @property
    def rect(self) -> BoundingBox:
        """The quadrant's bounding box (materialized on demand)."""
        return BoundingBox(self.min_x, self.min_y, self.max_x, self.max_y)

    def is_leaf(self) -> bool:
        """Whether this quadrant has not been subdivided."""
        return self.children is None

    # ------------------------------------------------------------------ #
    # Insertion / removal
    # ------------------------------------------------------------------ #
    def insert(self, cell_id: int, dataset_id: str, position: Point) -> None:
        """Insert one (cell, dataset) occurrence located at ``position``.

        The descent is iterative (no per-level Python call) using the
        quadrant midpoints cached on every node.
        """
        node = self
        while node.children is not None:
            node = node.children[
                (1 if position.x >= node.mid_x else 0)
                + (2 if position.y >= node.mid_y else 0)
            ]
        items = node.items
        if items and not node.distinct and position != items[0][2]:
            node.distinct = True
        items.append((cell_id, dataset_id, position))
        if len(items) > node.capacity and node.depth < _MAX_DEPTH and node.distinct:
            node._subdivide()

    def _has_distinct_positions(self) -> bool:
        """Whether subdividing can actually separate the stored items.

        Many datasets sharing one grid cell collapse onto the same position;
        subdividing such a leaf would only create chains of single-child
        quadrants, so the leaf is allowed to overflow instead.  Kept for
        introspection; the hot path uses the incremental ``distinct`` flag.
        """
        first = self.items[0][2]
        return any(item[2] != first for item in self.items[1:])

    def remove(self, cell_id: int, dataset_id: str, position: Point) -> bool:
        """Remove one occurrence; returns whether something was removed."""
        node = self
        while node.children is not None:
            node = node.children[
                (1 if position.x >= node.mid_x else 0)
                + (2 if position.y >= node.mid_y else 0)
            ]
        for index, (item_cell, item_dataset, _) in enumerate(node.items):
            if item_cell == cell_id and item_dataset == dataset_id:
                node.items.pop(index)
                if node.distinct:
                    node.distinct = len(node.items) > 1 and node._has_distinct_positions()
                return True
        return False

    def _subdivide(self) -> None:
        mid_x = self.mid_x
        mid_y = self.mid_y
        capacity = self.capacity
        child_depth = self.depth + 1
        self.children = [
            QuadTreeNode(self.min_x, self.min_y, mid_x, mid_y, capacity, child_depth),
            QuadTreeNode(mid_x, self.min_y, self.max_x, mid_y, capacity, child_depth),
            QuadTreeNode(self.min_x, mid_y, mid_x, self.max_y, capacity, child_depth),
            QuadTreeNode(mid_x, mid_y, self.max_x, self.max_y, capacity, child_depth),
        ]
        items, self.items = self.items, []
        for cell_id, dataset_id, position in items:
            self.insert(cell_id, dataset_id, position)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def query_region(self, region: BoundingBox) -> Iterator[tuple[int, str]]:
        """Yield (cell, dataset) occurrences whose position falls inside ``region``."""
        stack: list[QuadTreeNode] = [self]
        while stack:
            node = stack.pop()
            # Inline BoundingBox.intersects (closed boxes) on the float slots.
            if (
                node.max_x < region.min_x
                or region.max_x < node.min_x
                or node.max_y < region.min_y
                or region.max_y < node.min_y
            ):
                continue
            if node.children is None:
                for cell_id, dataset_id, position in node.items:
                    if region.contains_point(position):
                        yield cell_id, dataset_id
            else:
                stack.extend(reversed(node.children))

    def node_count(self) -> int:
        """Total number of quadtree nodes in this subtree."""
        count = 0
        stack: list[QuadTreeNode] = [self]
        while stack:
            node = stack.pop()
            count += 1
            if node.children is not None:
                stack.extend(node.children)
        return count


def _bulk_build(
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    capacity: int,
    depth: int,
    cells: np.ndarray,
    dataset_ids: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    positions: np.ndarray,
) -> QuadTreeNode:
    """Top-down bulk load of one quadrant from parallel occurrence arrays.

    Produces the same tree as inserting the items one by one: a quadrant is
    subdivided iff it overflows its capacity, is above the depth limit and
    holds at least two distinct positions — all properties of the item
    multiset, not of the insertion order.  Items keep their relative order,
    matching the stable order of sequential insertion.  ``dataset_ids`` and
    ``positions`` are object arrays so every partition step is one fancy
    indexing pass instead of a Python loop.
    """
    node = QuadTreeNode(min_x, min_y, max_x, max_y, capacity, depth)
    count = len(cells)
    if count <= capacity:
        if count:
            node.items = list(zip(cells.tolist(), dataset_ids.tolist(), positions.tolist()))
            node.distinct = count > 1 and bool(
                np.any(xs != xs[0]) or np.any(ys != ys[0])
            )
        return node
    if count <= _BULK_SCALAR_CUTOFF:
        # Small quadrants: per-element numpy masking costs more than the
        # iterative scalar inserts it replaces, so finish this subtree with
        # them (the resulting structure is the same either way).
        for item in zip(cells.tolist(), dataset_ids.tolist(), positions.tolist()):
            node.insert(*item)
        return node
    distinct = bool(np.any(xs != xs[0]) or np.any(ys != ys[0]))
    if depth >= _MAX_DEPTH or not distinct:
        node.items = list(zip(cells.tolist(), dataset_ids.tolist(), positions.tolist()))
        node.distinct = distinct
        return node

    east = xs >= node.mid_x
    north = ys >= node.mid_y
    quadrant_bounds = (
        (min_x, min_y, node.mid_x, node.mid_y),
        (node.mid_x, min_y, max_x, node.mid_y),
        (min_x, node.mid_y, node.mid_x, max_y),
        (node.mid_x, node.mid_y, max_x, max_y),
    )
    masks = (
        ~east & ~north,
        east & ~north,
        ~east & north,
        east & north,
    )
    node.children = [
        _bulk_build(
            *bounds,
            capacity,
            depth + 1,
            cells[mask],
            dataset_ids[mask],
            xs[mask],
            ys[mask],
            positions[mask],
        )
        for bounds, mask in zip(quadrant_bounds, masks)
    ]
    return node


class QuadTreeIndex(DatasetIndex):
    """Dataset index backed by a point quadtree over cell occurrences."""

    name = "QuadTree"

    def __init__(self, capacity: int = DEFAULT_QUAD_CAPACITY) -> None:
        super().__init__()
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._tree: QuadTreeNode | None = None
        self._space: BoundingBox | None = None

    # ------------------------------------------------------------------ #
    # DatasetIndex hooks
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        if not self._nodes:
            self._tree = None
            self._space = None
            return
        self._space = BoundingBox.union_of(node.rect for node in self._nodes.values()).expanded(1.0)

        # One concatenated occurrence vector for all datasets, decoded to
        # positions in a single vectorized Morton pass; Point objects are
        # created once per *distinct* cell and shared between occurrences.
        per_node_cells = [node.cells_array for node in self._nodes.values()]
        cells = np.concatenate(per_node_cells)
        dataset_ids = np.empty(cells.size, dtype=object)
        offset = 0
        for node, node_cells in zip(self._nodes.values(), per_node_cells):
            dataset_ids[offset : offset + node_cells.size] = node.dataset_id
            offset += node_cells.size
        cols, rows = zorder_decode_batch(cells)
        xs = cols.astype(np.float64)
        ys = rows.astype(np.float64)

        unique_cells, inverse = np.unique(cells, return_inverse=True)
        unique_cols, unique_rows = zorder_decode_batch(unique_cells)
        unique_points = np.empty(unique_cells.size, dtype=object)
        for index, (col, row) in enumerate(
            zip(unique_cols.tolist(), unique_rows.tolist())
        ):
            unique_points[index] = Point(float(col), float(row))
        positions = unique_points[inverse]

        space = self._space
        self._tree = _bulk_build(
            space.min_x,
            space.min_y,
            space.max_x,
            space.max_y,
            self.capacity,
            0,
            cells,
            dataset_ids,
            xs,
            ys,
            positions,
        )

    def _insert_structure(self, node: DatasetNode) -> None:
        if self._tree is None or self._space is None or not self._space.contains_box(node.rect):
            self._rebuild()
            return
        for cell in node.cells:
            self._tree.insert(cell, node.dataset_id, _cell_position(cell))

    def _delete_structure(self, node: DatasetNode) -> None:
        if self._tree is None:
            return
        for cell in node.cells:
            self._tree.remove(cell, node.dataset_id, _cell_position(cell))

    # ------------------------------------------------------------------ #
    # Query helpers used by the OJSP baseline
    # ------------------------------------------------------------------ #
    def occurrences_in(self, region: BoundingBox) -> Iterator[tuple[int, str]]:
        """All (cell, dataset) occurrences located inside ``region``."""
        if self._tree is None:
            return iter(())
        return self._tree.query_region(region)

    def node_count(self) -> int:
        """Number of quadtree nodes (for the memory comparison of Fig. 8)."""
        return self._tree.node_count() if self._tree is not None else 0

    def total_occurrences(self) -> int:
        """Total number of stored (cell, dataset) items."""
        return sum(len(node.cells) for node in self._nodes.values())


def _cell_position(cell_id: int) -> Point:
    """Representative position of a cell in grid coordinates (its corner)."""
    col, row = zorder_decode(cell_id)
    return Point(float(col), float(row))


def build_quadtree(nodes: Iterable[DatasetNode], capacity: int = DEFAULT_QUAD_CAPACITY) -> QuadTreeIndex:
    """Convenience constructor used by benchmarks."""
    index = QuadTreeIndex(capacity=capacity)
    index.build(nodes)
    return index
