"""QuadTree baseline index (Gargantini 1982, as used in Section VII-B).

The QuadTree indexes the *cells* of all datasets: every (cell, dataset)
occurrence is inserted as a point item, and a quadrant is subdivided once it
holds more than ``leaf_capacity`` items (the paper fixes the capacity to 4).
OJSP over the QuadTree therefore works like an exploded inverted index — all
cells intersecting the query region are visited and dataset occurrences are
counted — which is exactly why the paper finds it slower and bigger than
DITS-L: it stores ``N`` (total cell occurrences) items instead of ``n``
(datasets).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox, Point
from repro.index.base import DatasetIndex
from repro.utils.zorder import zorder_decode

__all__ = ["QuadTreeIndex", "QuadTreeNode"]

DEFAULT_QUAD_CAPACITY = 4
_MAX_DEPTH = 32


class QuadTreeNode:
    """One quadrant of the quadtree, holding (cell, dataset) items or 4 children."""

    __slots__ = ("rect", "items", "children", "depth", "capacity")

    def __init__(self, rect: BoundingBox, capacity: int, depth: int = 0) -> None:
        self.rect = rect
        self.items: list[tuple[int, str, Point]] = []
        self.children: list["QuadTreeNode"] | None = None
        self.depth = depth
        self.capacity = capacity

    def is_leaf(self) -> bool:
        return self.children is None

    # ------------------------------------------------------------------ #
    # Insertion / removal
    # ------------------------------------------------------------------ #
    def insert(self, cell_id: int, dataset_id: str, position: Point) -> None:
        """Insert one (cell, dataset) occurrence located at ``position``."""
        if not self.is_leaf():
            self._child_for(position).insert(cell_id, dataset_id, position)
            return
        self.items.append((cell_id, dataset_id, position))
        if (
            len(self.items) > self.capacity
            and self.depth < _MAX_DEPTH
            and self._has_distinct_positions()
        ):
            self._subdivide()

    def _has_distinct_positions(self) -> bool:
        """Whether subdividing can actually separate the stored items.

        Many datasets sharing one grid cell collapse onto the same position;
        subdividing such a leaf would only create chains of single-child
        quadrants, so the leaf is allowed to overflow instead.
        """
        first = self.items[0][2]
        return any(item[2] != first for item in self.items[1:])

    def remove(self, cell_id: int, dataset_id: str, position: Point) -> bool:
        """Remove one occurrence; returns whether something was removed."""
        if not self.is_leaf():
            return self._child_for(position).remove(cell_id, dataset_id, position)
        for index, (item_cell, item_dataset, _) in enumerate(self.items):
            if item_cell == cell_id and item_dataset == dataset_id:
                self.items.pop(index)
                return True
        return False

    def _subdivide(self) -> None:
        mid_x = (self.rect.min_x + self.rect.max_x) / 2.0
        mid_y = (self.rect.min_y + self.rect.max_y) / 2.0
        rects = [
            BoundingBox(self.rect.min_x, self.rect.min_y, mid_x, mid_y),
            BoundingBox(mid_x, self.rect.min_y, self.rect.max_x, mid_y),
            BoundingBox(self.rect.min_x, mid_y, mid_x, self.rect.max_y),
            BoundingBox(mid_x, mid_y, self.rect.max_x, self.rect.max_y),
        ]
        self.children = [
            QuadTreeNode(rect, self.capacity, self.depth + 1) for rect in rects
        ]
        items, self.items = self.items, []
        for cell_id, dataset_id, position in items:
            self._child_for(position).insert(cell_id, dataset_id, position)

    def _child_for(self, position: Point) -> "QuadTreeNode":
        assert self.children is not None
        mid_x = (self.rect.min_x + self.rect.max_x) / 2.0
        mid_y = (self.rect.min_y + self.rect.max_y) / 2.0
        index = (1 if position.x >= mid_x else 0) + (2 if position.y >= mid_y else 0)
        return self.children[index]

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def query_region(self, region: BoundingBox) -> Iterator[tuple[int, str]]:
        """Yield (cell, dataset) occurrences whose position falls inside ``region``."""
        if not self.rect.intersects(region):
            return
        if self.is_leaf():
            for cell_id, dataset_id, position in self.items:
                if region.contains_point(position):
                    yield cell_id, dataset_id
            return
        assert self.children is not None
        for child in self.children:
            yield from child.query_region(region)

    def node_count(self) -> int:
        """Total number of quadtree nodes in this subtree."""
        if self.is_leaf():
            return 1
        assert self.children is not None
        return 1 + sum(child.node_count() for child in self.children)


class QuadTreeIndex(DatasetIndex):
    """Dataset index backed by a point quadtree over cell occurrences."""

    name = "QuadTree"

    def __init__(self, capacity: int = DEFAULT_QUAD_CAPACITY) -> None:
        super().__init__()
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._tree: QuadTreeNode | None = None
        self._space: BoundingBox | None = None

    # ------------------------------------------------------------------ #
    # DatasetIndex hooks
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        if not self._nodes:
            self._tree = None
            self._space = None
            return
        self._space = BoundingBox.union_of(node.rect for node in self._nodes.values()).expanded(1.0)
        self._tree = QuadTreeNode(self._space, self.capacity)
        for node in self._nodes.values():
            for cell in node.cells:
                self._tree.insert(cell, node.dataset_id, _cell_position(cell))

    def _insert_structure(self, node: DatasetNode) -> None:
        if self._tree is None or self._space is None or not self._space.contains_box(node.rect):
            self._rebuild()
            return
        for cell in node.cells:
            self._tree.insert(cell, node.dataset_id, _cell_position(cell))

    def _delete_structure(self, node: DatasetNode) -> None:
        if self._tree is None:
            return
        for cell in node.cells:
            self._tree.remove(cell, node.dataset_id, _cell_position(cell))

    # ------------------------------------------------------------------ #
    # Query helpers used by the OJSP baseline
    # ------------------------------------------------------------------ #
    def occurrences_in(self, region: BoundingBox) -> Iterator[tuple[int, str]]:
        """All (cell, dataset) occurrences located inside ``region``."""
        if self._tree is None:
            return iter(())
        return self._tree.query_region(region)

    def node_count(self) -> int:
        """Number of quadtree nodes (for the memory comparison of Fig. 8)."""
        return self._tree.node_count() if self._tree is not None else 0

    def total_occurrences(self) -> int:
        """Total number of stored (cell, dataset) items."""
        return sum(len(node.cells) for node in self._nodes.values())


def _cell_position(cell_id: int) -> Point:
    """Representative position of a cell in grid coordinates (its corner)."""
    col, row = zorder_decode(cell_id)
    return Point(float(col), float(row))


def build_quadtree(nodes: Iterable[DatasetNode], capacity: int = DEFAULT_QUAD_CAPACITY) -> QuadTreeIndex:
    """Convenience constructor used by benchmarks."""
    index = QuadTreeIndex(capacity=capacity)
    index.build(nodes)
    return index
