"""Index memory accounting used by the Fig. 8 (right) experiment.

The paper compares the memory footprint of the five indexes as the grid
resolution grows.  Rather than relying on Python object overhead (which would
be dominated by interpreter bookkeeping), :func:`index_memory_bytes` counts
the *logical* content of each structure — tree nodes, posting entries and the
cell IDs they store — using fixed per-item costs, mirroring how the paper
reasons about index size (``O(n)`` tree nodes vs. ``O(N)`` postings).
"""

from __future__ import annotations

from repro.core.distance_engine import DistanceEngine, get_engine
from repro.core.geometry import BoundingBox
from repro.index.base import DatasetIndex
from repro.index.dits import DITSLocalIndex
from repro.index.dits_global import DITSGlobalIndex
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex
from repro.index.inverted import STS3Index
from repro.index.josie import JosieIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex

__all__ = [
    "STATS_SCHEMA",
    "index_memory_bytes",
    "local_index_stats",
    "global_index_stats",
    "distance_engine_stats",
]

#: Schema tag stamped into every stats document so downstream consumers
#: (dashboards, benchmark JSON, tests) can detect shape changes.
STATS_SCHEMA = "repro-stats/v1"

#: Cost model (bytes) for logical index components.
_TREE_NODE_BYTES = 64          # MBR (4 floats) + pivot/radius + pointers
_POSTING_BYTES = 12            # dataset reference + small metadata
_JOSIE_POSTING_BYTES = 20      # dataset reference + position + size
_CELL_KEY_BYTES = 8            # one cell ID key
_DATASET_ENTRY_BYTES = 48      # dataset node reference stored in a leaf
_QUAD_ITEM_BYTES = 24          # (cell, dataset, position) item
_SUMMARY_BYTES = 56            # source id reference + MBR + dataset count


def index_memory_bytes(index: DatasetIndex) -> int:
    """Estimated logical memory footprint of ``index`` in bytes."""
    if isinstance(index, DITSLocalIndex):
        return _dits_bytes(index)
    if isinstance(index, QuadTreeIndex):
        return _quadtree_bytes(index)
    if isinstance(index, RTreeIndex):
        return _rtree_bytes(index)
    if isinstance(index, JosieIndex):
        return _josie_bytes(index)
    if isinstance(index, STS3Index):
        return _sts3_bytes(index)
    raise TypeError(f"unsupported index type: {type(index).__name__}")


def _dits_bytes(index: DITSLocalIndex) -> int:
    if not index.is_built():
        return 0
    total = index.node_count() * _TREE_NODE_BYTES
    for leaf in index.leaves():
        total += len(leaf.entries) * _DATASET_ENTRY_BYTES
        total += len(leaf.inverted) * _CELL_KEY_BYTES
        total += sum(len(postings) for postings in leaf.inverted.values()) * _POSTING_BYTES
    return total


def _quadtree_bytes(index: QuadTreeIndex) -> int:
    return index.node_count() * _TREE_NODE_BYTES + index.total_occurrences() * _QUAD_ITEM_BYTES


def _rtree_bytes(index: RTreeIndex) -> int:
    # The R-tree only stores tree nodes and per-dataset entry references; the
    # cell sets live in the dataset nodes themselves and are not duplicated
    # into the index, so its footprint does not depend on the resolution.
    # (EXPERIMENTS.md notes this deviation from the paper's Fig. 8, where the
    # R-tree curve grows with theta.)
    return index.node_count() * _TREE_NODE_BYTES + len(index) * _DATASET_ENTRY_BYTES


def _josie_bytes(index: JosieIndex) -> int:
    distinct_cells = sum(1 for _ in _josie_cells(index))
    return distinct_cells * _CELL_KEY_BYTES + index.posting_count() * _JOSIE_POSTING_BYTES


def _josie_cells(index: JosieIndex):
    return index._postings.keys()  # noqa: SLF001 - stats module is a friend of the index


def _sts3_bytes(index: STS3Index) -> int:
    return index.distinct_cells() * _CELL_KEY_BYTES + index.posting_count() * _POSTING_BYTES


def local_index_stats(index: DITSLocalIndex) -> dict[str, object]:
    """Shape, churn and maintenance counters of a DITS-L local index.

    ``mbr_slack`` is the total leaf-MBR looseness — the summed difference
    between each leaf's stored rect area and the exact union of its entry
    rects — measured *before* any deferred refit is flushed, so it reports
    the staleness a mutation burst has accumulated; after a flush (any
    query) it is zero by construction.  ``refit_pending`` says whether such
    a flush is outstanding.  ``max_depth`` and ``tree_nodes`` are measured
    after flushing, like any query would see them.
    """
    slack = 0.0
    refit_pending = index._refit_pending  # noqa: SLF001 - stats is a friend module
    root = index._root  # noqa: SLF001 - pre-flush traversal, deliberate
    stack = [root] if root is not None else []
    while stack:
        node = stack.pop()
        if node.is_leaf():
            tight = BoundingBox.union_of(entry.rect for entry in node.entries)
            slack += node.rect.area - tight.area
        else:
            stack.append(node.right)
            stack.append(node.left)
    stats: dict[str, object] = {
        "schema": STATS_SCHEMA,
        "datasets": len(index),
        "leaf_capacity": index.leaf_capacity,
        "max_depth": index.height(),
        "tree_nodes": index.node_count(),
        "mbr_slack": slack,
        "refit_pending": refit_pending,
        "memory_bytes": _dits_bytes(index),
    }
    stats.update(index.rebalance_stats.as_dict())
    return dict(sorted(stats.items()))


def global_index_stats(index: DITSGlobalIndex | ShardedDITSGlobalIndex) -> dict[str, object]:
    """Shape and footprint of a DITS-G variant, for dashboards and the CLI.

    Works for both the monolithic and the sharded global index; the sharded
    variant additionally reports its shard count and per-shard source
    distribution.
    """
    node_count = index.node_count()
    stats: dict[str, object] = {
        "schema": STATS_SCHEMA,
        "variant": "sharded" if isinstance(index, ShardedDITSGlobalIndex) else "monolithic",
        "sources": len(index),
        "tree_nodes": node_count,
        "rebuilds": index.rebuild_count,
        "memory_bytes": node_count * _TREE_NODE_BYTES + len(index) * _SUMMARY_BYTES,
    }
    if isinstance(index, ShardedDITSGlobalIndex):
        stats["shard_count"] = index.shard_count
        stats["shard_sizes"] = index.shard_sizes()
    return dict(sorted(stats.items()))


def distance_engine_stats(engine: DistanceEngine | None = None) -> dict[str, object]:
    """Cache and kernel counters of a distance engine, for dashboards/benchmarks.

    Defaults to the process-wide engine.  ``hits``/``misses``/``evictions``/
    ``invalidations`` describe the bounded per-dataset geometry cache that
    replaced the seed's per-frozenset ``lru_cache``;
    ``trees_built``/``batch_queries``/``pair_queries`` count the KD-tree work
    the batched kernels actually performed.
    """
    info = (engine if engine is not None else get_engine()).cache_info()
    stats: dict[str, object] = {"schema": STATS_SCHEMA, **info._asdict()}
    return dict(sorted(stats.items()))
