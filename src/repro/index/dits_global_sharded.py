"""Sharded DITS-G: the global index partitioned for high registration churn.

The monolithic :class:`~repro.index.dits_global.DITSGlobalIndex` rebuilds one
tree over *every* registered source whenever the summary set changes, which
is fine for the paper's five portals but not for a center tracking thousands
of sources under churn.  :class:`ShardedDITSGlobalIndex` partitions the
summaries into ``N`` shards by the z-order position of each summary's pivot
(:class:`ShardPolicy`), keeps one DITS-G tree per shard, and

* **registers incrementally** — a mutation only marks the touched shard
  stale, so the next query rebuilds ``O(n/N)`` summaries instead of ``O(n)``
  (``defer_rebuild=False`` additionally rebuilds the touched shard right
  away, keeping queries rebuild-free);
* **prunes in parallel** — ``candidate_sources`` fans the per-shard tree
  traversals out over a
  :class:`~repro.distributed.executor.SourceDispatcher`, the same machinery
  the data center already uses for per-source request dispatch.

Because tree-node pruning is never stricter than the per-summary predicate
(see :func:`~repro.index.dits_global.node_may_contain`), the union of the
per-shard candidate sets equals the monolithic candidate set for every shard
count, and sorting by ``source_id`` reproduces the monolithic ordering
bit-for-bit (``tests/index/test_dits_global_sharded.py`` enforces this).

All public methods are thread-safe: registration takes the registry lock
plus the touched shard's lock, while queries snapshot each shard's immutable
tree under its lock and traverse lock-free, so concurrent queries and
registrations never observe a half-built tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import threading
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.errors import IndexNotBuiltError, InvalidParameterError, SourceNotFoundError
from repro.core.geometry import BoundingBox
from repro.core.grid import WORLD_SPACE
from repro.index.dits_global import (
    DEFAULT_FANOUT,
    SourceSummary,
    build_summary_tree,
    collect_candidates,
)
from repro.utils.zorder import zorder_encode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.distributed.executor import SourceDispatcher
    from repro.index.dits_global import _GlobalNode

__all__ = ["ShardPolicy", "ShardedDITSGlobalIndex", "DEFAULT_PARALLEL_THRESHOLD"]

#: Below this many registered sources the per-shard pruning runs serially;
#: thread fan-out only pays for itself once the shards hold real work.
DEFAULT_PARALLEL_THRESHOLD = 256


@dataclass(frozen=True, slots=True)
class ShardPolicy:
    """How source summaries are partitioned across DITS-G shards.

    Each summary's pivot is quantised onto a ``2**zorder_bits`` lattice over
    ``space`` (pivots outside are clamped onto the boundary), z-order
    encoded, and the Morton code modulo ``shard_count`` picks the shard.
    Striding along the Morton curve keeps the assignment deterministic while
    spreading pivots that land on *distinct* lattice cells evenly across
    shards — including federations clustered in one corner of ``space`` —
    which is what bounds the per-mutation rebuild to ``O(n / shard_count)``.
    Pivots quantising to the *same* lattice cell necessarily share a shard;
    if a federation is denser than the default ~0.35-degree world lattice,
    narrow ``space`` to the deployment region (or raise ``zorder_bits``) to
    restore balance.  Candidate pruning does not depend on which shard
    holds a summary (the per-shard trees answer exactly the flat
    predicate), so balance can be tuned freely.

    Parameters
    ----------
    shard_count:
        Number of shards (``1`` degenerates to a monolithic tree).
    zorder_bits:
        Quantisation resolution per axis for the pivot lattice (the default
        resolves ~0.35 degrees over the globe).
    space:
        Reference space the lattice covers; defaults to the whole globe.
        Narrow it to the federation's region when sources cluster tighter
        than the lattice resolves.
    defer_rebuild:
        ``False`` (default) rebuilds a touched shard at registration time,
        keeping queries rebuild-free.  ``True`` batches churn: mutations
        only mark shards stale and the next query rebuilds every stale
        shard once (in parallel when dispatch fans out).
    """

    shard_count: int = 4
    zorder_bits: int = 10
    space: BoundingBox = field(default=WORLD_SPACE)
    defer_rebuild: bool = False

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise InvalidParameterError(
                f"shard_count must be at least 1, got {self.shard_count}"
            )
        if not 1 <= self.zorder_bits <= 16:
            raise InvalidParameterError(
                f"zorder_bits must be in [1, 16], got {self.zorder_bits}"
            )

    def shard_of(self, summary: SourceSummary) -> int:
        """Deterministic shard for ``summary`` (by z-order of its pivot)."""
        if self.shard_count == 1:
            return 0
        pivot = summary.pivot
        lattice = 1 << self.zorder_bits
        fx = (pivot.x - self.space.min_x) / self.space.width
        fy = (pivot.y - self.space.min_y) / self.space.height
        ix = min(lattice - 1, max(0, int(fx * lattice)))
        iy = min(lattice - 1, max(0, int(fy * lattice)))
        return zorder_encode(ix, iy) % self.shard_count


class _Shard:
    """One shard: a summary registry plus its lazily rebuilt DITS-G tree."""

    __slots__ = ("summaries", "root", "dirty", "rebuilds", "lock")

    def __init__(self) -> None:
        self.summaries: dict[str, SourceSummary] = {}  # guarded-by: lock
        self.root: "_GlobalNode | None" = None  # guarded-by: lock
        self.dirty = False  # guarded-by: lock
        self.rebuilds = 0  # guarded-by: lock
        self.lock = threading.Lock()

    def ensure_built(self, leaf_capacity: int) -> "_GlobalNode | None":
        """Rebuild this shard's tree if stale; returns the immutable root."""
        with self.lock:
            if self.dirty:
                values = list(self.summaries.values())
                self.root = build_summary_tree(values, leaf_capacity) if values else None
                self.rebuilds += 1
                self.dirty = False
            return self.root


class ShardedDITSGlobalIndex:
    """A drop-in DITS-G replacement that partitions summaries across shards.

    Parameters
    ----------
    policy:
        The :class:`ShardPolicy` mapping summaries to shards.
    leaf_capacity:
        Per-shard tree leaf capacity (same meaning as the monolithic index).
    dispatcher:
        Optional :class:`~repro.distributed.executor.SourceDispatcher` used
        to fan per-shard pruning out across threads; ``None`` prunes the
        shards serially.  The data center passes its own dispatcher so
        global pruning shares the per-source request pool.
    parallel_threshold:
        Minimum number of registered sources before the dispatcher is used;
        small federations prune faster serially.
    """

    def __init__(
        self,
        policy: ShardPolicy | None = None,
        leaf_capacity: int = DEFAULT_FANOUT,
        dispatcher: "SourceDispatcher | None" = None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
    ) -> None:
        if leaf_capacity <= 0:
            raise InvalidParameterError(f"leaf capacity must be positive, got {leaf_capacity}")
        self.policy = policy if policy is not None else ShardPolicy()
        self.leaf_capacity = leaf_capacity
        self.parallel_threshold = parallel_threshold
        self._dispatcher = dispatcher
        self._shards = [_Shard() for _ in range(self.policy.shard_count)]
        self._shard_of_source: dict[str, int] = {}  # guarded-by: _lock
        self._summaries: dict[str, SourceSummary] = {}  # guarded-by: _lock
        self._lock = threading.RLock()

    @property
    def shard_count(self) -> int:
        """Number of shards the summaries are partitioned into."""
        return len(self._shards)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, summary: SourceSummary) -> None:
        """Register or refresh a source's summary in its shard.

        Only the touched shard (two, if a refreshed pivot migrates the
        source to a different shard) is invalidated; every other shard's
        tree is left untouched.
        """
        with self._lock:
            self._place(summary)

    def register_all(self, summaries: Iterable[SourceSummary]) -> None:
        """Register several summaries at once (one rebuild per touched shard)."""
        with self._lock:
            for summary in summaries:
                self._place(summary, defer=True)
            if not self.policy.defer_rebuild:
                for shard in self._shards:
                    shard.ensure_built(self.leaf_capacity)

    def unregister(self, source_id: str) -> None:
        """Remove a source; only its shard is invalidated."""
        with self._lock:
            try:
                shard_no = self._shard_of_source.pop(source_id)
            except KeyError as exc:
                raise SourceNotFoundError(source_id) from exc
            del self._summaries[source_id]
            shard = self._shards[shard_no]
            with shard.lock:
                del shard.summaries[source_id]
                shard.dirty = True
            if not self.policy.defer_rebuild:
                shard.ensure_built(self.leaf_capacity)

    def _place(self, summary: SourceSummary, defer: bool = False) -> None:  # repro-lint: holds=_lock
        """Insert/refresh ``summary`` in its shard (registry lock held)."""
        target = self.policy.shard_of(summary)
        previous = self._shard_of_source.get(summary.source_id)
        if previous is not None and previous != target:
            old_shard = self._shards[previous]
            with old_shard.lock:
                del old_shard.summaries[summary.source_id]
                old_shard.dirty = True
            if not (defer or self.policy.defer_rebuild):
                old_shard.ensure_built(self.leaf_capacity)
        self._shard_of_source[summary.source_id] = target
        self._summaries[summary.source_id] = summary
        shard = self._shards[target]
        with shard.lock:
            shard.summaries[summary.source_id] = summary
            shard.dirty = True
        if not (defer or self.policy.defer_rebuild):
            shard.ensure_built(self.leaf_capacity)

    # ------------------------------------------------------------------ #
    # Registry lookups (same surface as the monolithic index)
    # ------------------------------------------------------------------ #
    def source_ids(self) -> list[str]:
        """IDs of all registered sources, sorted."""
        with self._lock:
            return sorted(self._summaries)

    def summary_of(self, source_id: str) -> SourceSummary:
        """The registered summary for ``source_id``."""
        with self._lock:
            try:
                return self._summaries[source_id]
            except KeyError as exc:
                raise SourceNotFoundError(source_id) from exc

    def shard_of(self, source_id: str) -> int:
        """Which shard currently holds ``source_id``."""
        with self._lock:
            try:
                return self._shard_of_source[source_id]
            except KeyError as exc:
                raise SourceNotFoundError(source_id) from exc

    def __len__(self) -> int:
        with self._lock:
            return len(self._summaries)

    def __contains__(self, source_id: str) -> bool:
        with self._lock:
            return source_id in self._summaries

    # ------------------------------------------------------------------ #
    # Candidate-source selection
    # ------------------------------------------------------------------ #
    def candidate_sources(  # parity-critical
        self,
        query_rect: BoundingBox,
        delta_geo: float = 0.0,
    ) -> list[SourceSummary]:
        """Union of per-shard candidates, ordered exactly like the monolith.

        Each shard's tree is traversed independently (fanned out over the
        dispatcher for large federations); because every source lives in
        exactly one shard and node pruning matches the flat per-summary
        predicate, concatenating the shard results and sorting by
        ``source_id`` is bit-identical to the monolithic index.

        A refresh that migrates a source between shards is not atomic with
        respect to a concurrent query, which snapshots shards at different
        instants: the query may observe the source in both shards (old and
        new rect) or, briefly, in neither.  Duplicates are collapsed here —
        keeping the first (and, quiescently, only) summary per source — so
        a racing query never routes twice to one source; the transient-miss
        window is the same a real deployment has between a source's
        unregister and re-register messages.
        """
        candidates: list[SourceSummary] = []
        if self._use_parallel():
            per_shard = self._dispatcher.map(
                lambda shard: self._collect_shard(shard, query_rect, delta_geo),
                self._shards,
            )
            for chunk in per_shard:
                candidates.extend(chunk)
        else:
            for shard in self._shards:
                candidates.extend(self._collect_shard(shard, query_rect, delta_geo))
        candidates.sort(key=lambda summary: summary.source_id)
        return [
            summary
            for position, summary in enumerate(candidates)
            if position == 0 or candidates[position - 1].source_id != summary.source_id
        ]

    def _collect_shard(
        self, shard: _Shard, query_rect: BoundingBox, delta_geo: float
    ) -> list[SourceSummary]:
        out: list[SourceSummary] = []
        collect_candidates(
            shard.ensure_built(self.leaf_capacity), query_rect, delta_geo, out
        )
        return out

    def _use_parallel(self) -> bool:
        return (
            self._dispatcher is not None
            and len(self._shards) > 1
            and len(self) >= self.parallel_threshold
        )

    def all_summaries(self) -> Iterator[SourceSummary]:
        """Iterate over every registered summary (used by broadcast baselines)."""
        with self._lock:
            snapshot = dict(self._summaries)
        for source_id in sorted(snapshot):
            yield snapshot[source_id]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> "_GlobalNode":
        """Root of the first non-empty shard tree; raises when empty.

        The sharded index has no single tree; this accessor exists for API
        compatibility with code that only checks "is anything registered".
        """
        for shard in self._shards:
            built = shard.ensure_built(self.leaf_capacity)
            if built is not None:
                return built
        raise IndexNotBuiltError("no data sources registered with the global index")

    def node_count(self) -> int:
        """Total number of tree nodes across all shards."""
        total = 0
        for shard in self._shards:
            root = shard.ensure_built(self.leaf_capacity)
            if root is None:
                continue
            stack = [root]
            while stack:
                node = stack.pop()
                total += 1
                stack.extend(node.children)
        return total

    @property
    def rebuild_count(self) -> int:
        """Total shard-tree reconstructions performed so far."""
        return sum(shard.rebuilds for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Number of sources currently held by each shard."""
        with self._lock:
            sizes = [0] * len(self._shards)
            for shard_no in self._shard_of_source.values():
                sizes[shard_no] += 1
            return sizes
