"""Common interface implemented by every dataset-level index.

All five indexes compared in the paper (DITS-L, QuadTree, R-tree, STS3 and
Josie) index a *collection of datasets within one data source* and must
support the same operations so the benchmark harness can sweep over them:

* ``build(nodes)`` — bulk construction from dataset nodes.
* ``insert(node)`` / ``update(node)`` / ``delete(dataset_id)`` — the
  maintenance operations measured in Figs. 21–22.
* ``get(dataset_id)`` / ``__len__`` / ``dataset_ids()`` — lookups.

Search algorithms are *not* part of this interface: OJSP/CJSP strategies live
in :mod:`repro.search` and each knows which index type it runs against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.core.dataset import DatasetNode
from repro.core.errors import DatasetNotFoundError

__all__ = ["DatasetIndex"]


class DatasetIndex(ABC):
    """Abstract base class for per-source dataset indexes."""

    #: Human-readable name used in benchmark tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self._nodes: dict[str, DatasetNode] = {}

    # ------------------------------------------------------------------ #
    # Bulk construction
    # ------------------------------------------------------------------ #
    def build(self, nodes: Iterable[DatasetNode]) -> None:
        """Build the index from scratch over ``nodes``."""
        self._nodes = {node.dataset_id: node for node in nodes}
        self._rebuild()

    @abstractmethod
    def _rebuild(self) -> None:
        """(Re)build internal structures from ``self._nodes``."""

    # ------------------------------------------------------------------ #
    # Maintenance operations
    # ------------------------------------------------------------------ #
    def insert(self, node: DatasetNode) -> None:
        """Insert a new dataset node."""
        if node.dataset_id in self._nodes:
            raise ValueError(f"dataset {node.dataset_id!r} already indexed; use update()")
        self._nodes[node.dataset_id] = node
        self._insert_structure(node)

    def update(self, node: DatasetNode) -> None:
        """Replace the indexed node for ``node.dataset_id`` with ``node``."""
        if node.dataset_id not in self._nodes:
            raise DatasetNotFoundError(node.dataset_id)
        old = self._nodes[node.dataset_id]
        self._nodes[node.dataset_id] = node
        self._update_structure(old, node)

    def delete(self, dataset_id: str) -> None:
        """Remove ``dataset_id`` from the index."""
        if dataset_id not in self._nodes:
            raise DatasetNotFoundError(dataset_id)
        node = self._nodes.pop(dataset_id)
        self._delete_structure(node)

    @abstractmethod
    def _insert_structure(self, node: DatasetNode) -> None:
        """Structure-specific insert hook."""

    def _update_structure(self, old: DatasetNode, new: DatasetNode) -> None:
        """Structure-specific update hook; defaults to delete + insert."""
        self._delete_structure(old)
        self._insert_structure(new)

    @abstractmethod
    def _delete_structure(self, node: DatasetNode) -> None:
        """Structure-specific delete hook."""

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def get(self, dataset_id: str) -> DatasetNode:
        """Return the node for ``dataset_id`` or raise :class:`DatasetNotFoundError`."""
        try:
            return self._nodes[dataset_id]
        except KeyError as exc:
            raise DatasetNotFoundError(dataset_id) from exc

    def dataset_ids(self) -> list[str]:
        """IDs of all indexed datasets (sorted for determinism)."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[DatasetNode]:
        """Iterate over all indexed dataset nodes."""
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self._nodes
