"""Churn-safe rebalancing for DITS-L (scapegoat-style amortized rebuilds).

The Appendix IX-C maintenance operations touch one root-to-leaf path per
mutation, which keeps them fast but lets sustained churn skew the tree: a
drifting insert workload grows a spine, deletes hollow out leaves, and the
degraded shape silently weakens the Lemma 2/3/4 bounds OverlapSearch and
CoverageSearch prune with.  This module restores the bulk-built shape
guarantees under churn with three cooperating mechanisms:

* **Weight balance (alpha-balance)** — every tree node carries the number of
  datasets in its subtree (``TreeNode.size``).  After a mutation the path
  from the touched leaf to the root is rescanned bottom-up; if any ancestor
  violates ``max(|left|, |right|) <= alpha * |node|`` the *highest* violating
  ancestor is rebuilt from scratch with the same top-down median split used
  by ``build()`` (:meth:`DITSLocalIndex._build_subtree`).  Because the
  bulk loader splits at the median, a rebuilt subtree is as balanced as a
  fresh build, and because only the highest violator is rebuilt, every node
  of the tree satisfies the invariant after every mutation.  Rebuilding is
  O(m log m) for a subtree of m datasets but amortizes to O(log n) per
  mutation exactly as in a scapegoat tree: a node must absorb
  Omega(alpha * size) unbalanced mutations before it can trigger again.

* **Leaf underflow merging** — deletes that leave a leaf below
  ``leaf_capacity // 4`` entries absorb the leaf into its sibling (when the
  sibling is also a leaf and the union fits in one leaf), so heavy deletion
  cannot fragment the tree into near-empty leaves whose posting lists and
  MBRs are all overhead.

* **Deferred refits** — with ``RebalancePolicy(deferred_refit=True)`` the
  per-mutation MBR *re-tightening* walk is skipped: shrinking mutations only
  mark their root-to-leaf path dirty and the tightening runs once, bottom-up
  over the dirty region, at the next query (mirroring the deferred per-shard
  rebuilds of :mod:`repro.index.dits_global_sharded`).  MBRs are kept
  *conservative* (never smaller than their content) throughout the burst —
  inserts still grow rects on the way down — so a flush restores exactly the
  rects an eager refit would have maintained.

The rebalancer never changes which datasets the index holds, and the search
algorithms are exact for any tree shape, so results are identical to a
freshly rebuilt tree after any mutation sequence (enforced by the
differential churn suites in ``tests/index/test_dits_churn.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.index.dits import DITSLocalIndex, LeafNode, TreeNode

__all__ = ["RebalancePolicy", "RebalanceStats", "Rebalancer"]

#: Weight-balance factor: a node is balanced while neither child holds more
#: than this fraction of the subtree's datasets.  0.65 keeps the worst-case
#: height within ~1.6x of a perfectly balanced tree while leaving enough
#: slack that ordinary insert/delete traffic rarely triggers a rebuild.
DEFAULT_ALPHA = 0.65

#: Subtrees smaller than this never trigger a scapegoat rebuild: their depth
#: contribution is bounded by a constant and rebuilding them would thrash
#: (a 3-dataset subtree at capacity 1 is *always* alpha-unbalanced).
DEFAULT_MIN_REBUILD_SIZE = 4


@dataclass(frozen=True, slots=True)
class RebalancePolicy:
    """Tuning knobs for DITS-L incremental rebalancing.

    Parameters
    ----------
    enabled:
        ``False`` restores the PR-4 behaviour: mutations only touch one
        root-to-leaf path and the tree is never reshaped.  Searches stay
        exact either way; only their pruning power degrades.
    alpha:
        Weight-balance factor in ``(0.5, 1.0)``; lower values keep the tree
        tighter at the cost of more frequent partial rebuilds.
    min_rebuild_size:
        Minimum subtree dataset count before a balance violation triggers a
        rebuild (see :data:`DEFAULT_MIN_REBUILD_SIZE`).
    merge_underflow:
        Absorb a leaf into its sibling leaf when a delete leaves it below
        ``leaf_capacity // 4`` entries and the union fits one leaf.
    deferred_refit:
        Batch MBR re-tightening across a mutation burst and flush it at the
        next query instead of walking the path on every shrinking mutation.
    """

    enabled: bool = True
    alpha: float = DEFAULT_ALPHA
    min_rebuild_size: int = DEFAULT_MIN_REBUILD_SIZE
    merge_underflow: bool = True
    deferred_refit: bool = False

    def __post_init__(self) -> None:
        if not 0.5 < self.alpha < 1.0:
            raise InvalidParameterError(
                f"alpha must be in (0.5, 1.0), got {self.alpha}"
            )
        if self.min_rebuild_size < 2:
            raise InvalidParameterError(
                f"min_rebuild_size must be at least 2, got {self.min_rebuild_size}"
            )


@dataclass(slots=True)
class RebalanceStats:
    """Counters describing the maintenance work a DITS-L index performed."""

    #: Scapegoat subtree rebuilds triggered by an alpha-balance violation.
    rebalance_count: int = 0
    #: Total datasets re-inserted by those rebuilds (the amortized cost).
    rebuilt_entries: int = 0
    #: Underflowing leaves absorbed into a sibling leaf.
    leaf_merges: int = 0
    #: Shrinking mutations whose MBR re-tightening was deferred.
    deferred_refits: int = 0
    #: Query-time flushes that re-tightened a dirty region.
    refit_flushes: int = 0

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for stats reporting and benchmark rows."""
        return {
            "rebalance_count": self.rebalance_count,
            "rebuilt_entries": self.rebuilt_entries,
            "leaf_merges": self.leaf_merges,
            "deferred_refits": self.deferred_refits,
            "refit_flushes": self.refit_flushes,
        }


class Rebalancer:
    """Maintains the alpha-balance invariant of one :class:`DITSLocalIndex`.

    The index calls :meth:`after_mutation` at the end of every structural
    mutation with the deepest node whose subtree changed; the rebalancer
    refreshes the subtree sizes along the path to the root, finds the highest
    alpha-violating ancestor and rebuilds it in place.  Delete paths
    additionally offer the shrunken leaf to :meth:`absorb_underflow` before
    the balance pass.
    """

    __slots__ = ("_index", "policy", "stats")

    def __init__(self, index: "DITSLocalIndex", policy: RebalancePolicy) -> None:
        self._index = index
        self.policy = policy
        self.stats = RebalanceStats()

    # ------------------------------------------------------------------ #
    # Balance maintenance
    # ------------------------------------------------------------------ #
    def after_mutation(self, node: "TreeNode") -> None:
        """Refresh sizes above ``node`` and rebuild the highest unbalanced ancestor.

        ``node`` is the deepest surviving node whose subtree content changed
        (the touched leaf, a split replacement, a merged leaf or a promoted
        sibling); its own ``size`` is already correct.  The walk recomputes
        every ancestor's size from its children — which must happen whether
        or not rebalancing is enabled, so the sizes stay trustworthy — and
        remembers the highest node violating the alpha-balance test.
        """
        policy = self.policy
        scapegoat = None
        current = node.parent
        while current is not None:
            current.size = current.left.size + current.right.size
            if (
                policy.enabled
                and current.size >= policy.min_rebuild_size
                and max(current.left.size, current.right.size)
                > policy.alpha * current.size
            ):
                scapegoat = current
            current = current.parent
        if scapegoat is not None:
            self.rebuild_subtree(scapegoat)

    def rebuild_subtree(self, node: "TreeNode") -> "TreeNode":
        """Rebuild the subtree rooted at ``node`` with the bulk median split.

        The rebuilt subtree covers exactly the same datasets, so ancestor
        sizes are untouched; its root MBR is the exact union of those
        datasets, so eager-mode ancestors keep their (identical) rects and
        deferred-mode ancestors stay conservatively large until the next
        flush.  Returns the replacement node.
        """
        index = self._index
        entries = index._collect_entries(node)
        parent = node.parent
        replacement = index._build_subtree(entries, parent)
        if parent is None:
            index._root = replacement
        else:
            parent.replace_child(node, replacement)
        self.stats.rebalance_count += 1
        self.stats.rebuilt_entries += len(entries)
        return replacement

    # ------------------------------------------------------------------ #
    # Leaf underflow merging
    # ------------------------------------------------------------------ #
    def absorb_underflow(self, leaf: "LeafNode") -> "TreeNode":
        """Merge ``leaf`` into its sibling when a delete left it underfull.

        Applies when the leaf holds fewer than ``leaf_capacity // 4``
        entries, its sibling is also a leaf, and the union fits within one
        leaf.  The merged leaf replaces the parent (one tree level
        disappears).  Returns the node the caller should continue refit /
        size maintenance from: the merged leaf, or ``leaf`` unchanged when
        no merge applies.
        """
        index = self._index
        policy = self.policy
        if not (policy.enabled and policy.merge_underflow):
            return leaf
        if len(leaf) >= index.leaf_capacity // 4:
            return leaf
        parent = leaf.parent
        if parent is None:
            return leaf
        sibling = parent.right if parent.left is leaf else parent.left
        if not sibling.is_leaf():
            return leaf
        if len(leaf) + len(sibling) > index.leaf_capacity:
            return leaf
        # Rebuild the two-leaf parent into a single leaf; keeping the
        # left-to-right entry order makes the merge deterministic.
        left, right = parent.children()
        entries = list(left.entries) + list(right.entries)  # type: ignore[union-attr]
        grandparent = parent.parent
        merged = index._build_subtree(entries, grandparent)
        if grandparent is None:
            index._root = merged
        else:
            grandparent.replace_child(parent, merged)
        self.stats.leaf_merges += 1
        return merged
