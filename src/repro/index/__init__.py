"""Spatial index structures.

* :mod:`repro.index.dits` — DITS-L, the paper's local index (Algorithm 1): a
  top-down binary ball-tree over dataset nodes whose leaves carry an inverted
  index from cell ID to dataset IDs.
* :mod:`repro.index.dits_rebalance` — churn-safe incremental rebalancing for
  DITS-L: scapegoat-style amortized partial rebuilds, leaf underflow merging
  and deferred MBR refits.
* :mod:`repro.index.dits_global` — DITS-G, the global index at the data
  center, built over the root summaries reported by each source.
* :mod:`repro.index.dits_global_sharded` — DITS-G partitioned into z-order
  shards with incremental registration and parallel pruning.
* :mod:`repro.index.quadtree` — QuadTree baseline over individual cells.
* :mod:`repro.index.rtree` — R-tree baseline over dataset MBRs.
* :mod:`repro.index.inverted` — STS3-style plain inverted index.
* :mod:`repro.index.josie` — Josie-style sorted inverted index with prefix
  filtering.
* :mod:`repro.index.stats` — size accounting used by the Fig. 8 memory
  experiment.
"""

from repro.index.base import DatasetIndex
from repro.index.dits import DITSLocalIndex, InternalNode, LeafNode, TreeNode
from repro.index.dits_global import DITSGlobalIndex, SourceSummary
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy
from repro.index.dits_rebalance import RebalancePolicy, RebalanceStats
from repro.index.inverted import STS3Index
from repro.index.josie import JosieIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex
from repro.index.stats import global_index_stats, index_memory_bytes, local_index_stats

__all__ = [
    "DATASET_INDEX_CLASSES",
    "DITSGlobalIndex",
    "DITSLocalIndex",
    "DatasetIndex",
    "InternalNode",
    "JosieIndex",
    "LeafNode",
    "QuadTreeIndex",
    "RTreeIndex",
    "RebalancePolicy",
    "RebalanceStats",
    "STS3Index",
    "ShardPolicy",
    "ShardedDITSGlobalIndex",
    "SourceSummary",
    "TreeNode",
    "global_index_stats",
    "index_memory_bytes",
    "local_index_stats",
]

#: Name -> class mapping used by benchmarks that sweep over all five indexes.
DATASET_INDEX_CLASSES = {
    "DITS-L": DITSLocalIndex,
    "QuadTree": QuadTreeIndex,
    "Rtree": RTreeIndex,
    "STS3": STS3Index,
    "Josie": JosieIndex,
}
