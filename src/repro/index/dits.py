"""DITS-L: the local DIstributed Tree-based Spatial index (Section V-A).

DITS-L is a binary tree over *dataset nodes* (one entry per dataset, not per
point) built top-down by recursively splitting on the widest dimension at the
median pivot (Algorithm 1).  The structure combines two classic indexes:

* like a ball tree / kd-tree, every tree node stores the MBR, pivot and
  radius enclosing its subtree, which enables MBR pruning and the Lemma 4
  distance bounds used by CoverageSearch;
* like an inverted index, every *leaf* stores posting lists mapping each cell
  ID to the dataset IDs in the leaf that contain it, which enables the
  Lemma 2/3 intersection bounds and fast verification used by OverlapSearch.

The tree keeps parent pointers (a bidirectional structure) so the incremental
insert/update/delete operations of Appendix IX-C only touch one root-to-leaf
path.
"""

from __future__ import annotations

import statistics
from typing import Callable, Iterable, Iterator

from repro.core.dataset import DatasetNode
from repro.core.errors import (
    DatasetNotFoundError,
    IndexNotBuiltError,
    InvalidParameterError,
)
from repro.core.geometry import BoundingBox, Point
from repro.index.base import DatasetIndex

__all__ = ["DITSLocalIndex", "TreeNode", "InternalNode", "LeafNode"]

DEFAULT_LEAF_CAPACITY = 30


class TreeNode:
    """Base class for DITS-L tree nodes: carries MBR, pivot, radius and parent."""

    __slots__ = ("rect", "pivot", "radius", "parent")

    def __init__(self, rect: BoundingBox, parent: "InternalNode | None" = None) -> None:
        self.rect = rect
        self.pivot = rect.center
        self.radius = rect.radius
        self.parent = parent

    def is_leaf(self) -> bool:
        """Whether this node is a leaf (overridden by subclasses)."""
        raise NotImplementedError

    def _set_rect(self, rect: BoundingBox) -> None:
        self.rect = rect
        self.pivot = rect.center
        self.radius = rect.radius


class InternalNode(TreeNode):
    """An internal DITS-L node with exactly two children (Definition 13)."""

    __slots__ = ("left", "right")

    def __init__(
        self,
        rect: BoundingBox,
        left: "TreeNode",
        right: "TreeNode",
        parent: "InternalNode | None" = None,
    ) -> None:
        super().__init__(rect, parent)
        self.left = left
        self.right = right
        left.parent = self
        right.parent = self

    def is_leaf(self) -> bool:
        return False

    def children(self) -> tuple["TreeNode", "TreeNode"]:
        """The two child nodes as ``(left, right)``."""
        return self.left, self.right

    def replace_child(self, old: "TreeNode", new: "TreeNode") -> None:
        """Swap ``old`` for ``new`` among the children."""
        if self.left is old:
            self.left = new
        elif self.right is old:
            self.right = new
        else:
            raise ValueError("node to replace is not a child of this internal node")
        new.parent = self


class LeafNode(TreeNode):
    """A DITS-L leaf holding dataset nodes and their inverted index (Definition 14).

    The posting list of each cell is a *counted* mapping ``dataset id -> 1``
    (an insertion-ordered set with O(1) membership and removal) rather than a
    plain list: iterating it yields the dataset IDs exactly like the list
    did, ``len()`` still gives the posting count, but ``remove_entry`` no
    longer pays an O(postings) ``list.remove`` per cell.

    Leaves additionally expose :attr:`full_cells` — the cells whose posting
    list contains *every* dataset of the leaf — so the Lemma 3 lower bound
    is one set intersection per query instead of a per-cell posting scan.
    """

    __slots__ = ("entries", "inverted", "capacity", "_full_cells")

    def __init__(
        self,
        rect: BoundingBox,
        entries: list[DatasetNode],
        capacity: int,
        parent: "InternalNode | None" = None,
    ) -> None:
        super().__init__(rect, parent)
        self.entries = list(entries)
        self.capacity = capacity
        self.inverted: dict[int, dict[str, int]] = {}
        self._full_cells: set[int] | None = None
        self.rebuild_inverted()

    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full_cells(self) -> set[int]:
        """Cells posted by every dataset of the leaf (Lemma 3 support set)."""
        cached = self._full_cells
        if cached is None:
            size = len(self.entries)
            cached = {
                cell
                for cell, postings in self.inverted.items()
                if len(postings) == size
            }
            self._full_cells = cached
        return cached

    def rebuild_inverted(self) -> None:
        """Recompute the cell-ID -> dataset-ID posting lists from the entries."""
        inverted: dict[int, dict[str, int]] = {}
        for entry in self.entries:
            dataset_id = entry.dataset_id
            for cell in entry.cells:
                postings = inverted.get(cell)
                if postings is None:
                    inverted[cell] = {dataset_id: 1}
                else:
                    postings[dataset_id] = 1
        self.inverted = inverted
        self._full_cells = None

    def add_entry(self, node: DatasetNode) -> None:
        """Append a dataset node and extend the posting lists."""
        self.entries.append(node)
        dataset_id = node.dataset_id
        inverted = self.inverted
        for cell in node.cells:
            postings = inverted.get(cell)
            if postings is None:
                inverted[cell] = {dataset_id: 1}
            else:
                postings[dataset_id] = 1
        self._full_cells = None

    def remove_entry(self, dataset_id: str) -> DatasetNode:
        """Remove the entry with ``dataset_id`` and shrink the posting lists.

        O(cells of the removed dataset): the counted postings make each
        per-cell removal a hash delete instead of a list scan.
        """
        for position, entry in enumerate(self.entries):
            if entry.dataset_id == dataset_id:
                removed = self.entries.pop(position)
                inverted = self.inverted
                for cell in removed.cells:
                    postings = inverted.get(cell)
                    if postings is None:
                        continue
                    postings.pop(dataset_id, None)
                    if not postings:
                        del inverted[cell]
                self._full_cells = None
                return removed
        raise DatasetNotFoundError(dataset_id)

    def dataset_ids(self) -> list[str]:
        """IDs of the datasets stored in the leaf."""
        return [entry.dataset_id for entry in self.entries]


class DITSLocalIndex(DatasetIndex):
    """The DITS-L local index (Algorithm 1).

    Parameters
    ----------
    leaf_capacity:
        Maximum number of dataset nodes per leaf (parameter ``f`` in the
        paper, default 30 to match the paper's mid-range setting).
    """

    name = "DITS-L"

    def __init__(self, leaf_capacity: int = DEFAULT_LEAF_CAPACITY) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise InvalidParameterError(f"leaf capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self._root: TreeNode | None = None
        self._leaf_of: dict[str, LeafNode] = {}
        self._leaf_ordinals: dict[int, int] | None = None

    # ------------------------------------------------------------------ #
    # Construction (Algorithm 1, top-down median split)
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> TreeNode:
        """The root tree node; raises if the index is empty/unbuilt."""
        if self._root is None:
            raise IndexNotBuiltError("DITS-L index has not been built or is empty")
        return self._root

    def is_built(self) -> bool:
        """Whether the tree currently holds at least one dataset."""
        return self._root is not None

    def _rebuild(self) -> None:
        self._leaf_of = {}
        self._leaf_ordinals = None
        entries = list(self._nodes.values())
        self._root = self._build_subtree(entries, parent=None) if entries else None

    def _build_subtree(
        self, entries: list[DatasetNode], parent: InternalNode | None
    ) -> TreeNode:
        rect = BoundingBox.union_of(entry.rect for entry in entries)
        if len(entries) <= self.leaf_capacity:
            leaf = LeafNode(rect, entries, self.leaf_capacity, parent)
            for entry in entries:
                self._leaf_of[entry.dataset_id] = leaf
            return leaf

        split_dim = 0 if rect.width >= rect.height else 1
        left_entries, right_entries = _median_split(entries, split_dim)
        node = InternalNode(
            rect,
            left=self._build_subtree(left_entries, parent=None),
            right=self._build_subtree(right_entries, parent=None),
            parent=parent,
        )
        return node

    # ------------------------------------------------------------------ #
    # Maintenance (Appendix IX-C)
    # ------------------------------------------------------------------ #
    def _insert_structure(self, node: DatasetNode) -> None:
        self._leaf_ordinals = None
        if self._root is None:
            leaf = LeafNode(node.rect, [node], self.leaf_capacity, parent=None)
            self._root = leaf
            self._leaf_of[node.dataset_id] = leaf
            return
        leaf = self._choose_leaf(node)
        leaf.add_entry(node)
        leaf._set_rect(leaf.rect.union(node.rect))
        self._leaf_of[node.dataset_id] = leaf
        if len(leaf) > self.leaf_capacity:
            self._split_leaf(leaf)
        else:
            self._refit_upwards(leaf)

    def _delete_structure(self, node: DatasetNode) -> None:
        self._leaf_ordinals = None
        leaf = self._leaf_of.pop(node.dataset_id, None)
        if leaf is None:
            raise DatasetNotFoundError(node.dataset_id)
        leaf.remove_entry(node.dataset_id)
        if leaf.entries:
            leaf._set_rect(BoundingBox.union_of(entry.rect for entry in leaf.entries))
            self._refit_upwards(leaf)
        else:
            self._remove_empty_leaf(leaf)

    def _update_structure(self, old: DatasetNode, new: DatasetNode) -> None:
        self._leaf_ordinals = None
        leaf = self._leaf_of.get(old.dataset_id)
        if leaf is None:
            raise DatasetNotFoundError(old.dataset_id)
        leaf.remove_entry(old.dataset_id)
        leaf.add_entry(new)
        leaf._set_rect(BoundingBox.union_of(entry.rect for entry in leaf.entries))
        if len(leaf) > self.leaf_capacity:
            self._split_leaf(leaf)
        else:
            self._refit_upwards(leaf)

    def _choose_leaf(self, node: DatasetNode) -> LeafNode:
        """Descend from the root choosing the child whose pivot is closest."""
        current = self.root
        while not current.is_leaf():
            assert isinstance(current, InternalNode)
            left_distance = current.left.pivot.distance_to(node.pivot)
            right_distance = current.right.pivot.distance_to(node.pivot)
            current = current.left if left_distance <= right_distance else current.right
        assert isinstance(current, LeafNode)
        return current

    def _split_leaf(self, leaf: LeafNode) -> None:
        """Split an over-full leaf into two along its widest dimension."""
        rect = BoundingBox.union_of(entry.rect for entry in leaf.entries)
        split_dim = 0 if rect.width >= rect.height else 1
        left_entries, right_entries = _median_split(leaf.entries, split_dim)
        parent = leaf.parent
        left_leaf = LeafNode(
            BoundingBox.union_of(entry.rect for entry in left_entries),
            left_entries,
            self.leaf_capacity,
        )
        right_leaf = LeafNode(
            BoundingBox.union_of(entry.rect for entry in right_entries),
            right_entries,
            self.leaf_capacity,
        )
        for entry in left_entries:
            self._leaf_of[entry.dataset_id] = left_leaf
        for entry in right_entries:
            self._leaf_of[entry.dataset_id] = right_leaf
        replacement = InternalNode(rect, left_leaf, right_leaf, parent)
        if parent is None:
            self._root = replacement
        else:
            parent.replace_child(leaf, replacement)
            self._refit_upwards(replacement)

    def _remove_empty_leaf(self, leaf: LeafNode) -> None:
        """Remove a leaf that lost its last entry, collapsing its parent."""
        parent = leaf.parent
        if parent is None:
            self._root = None
            return
        sibling = parent.right if parent.left is leaf else parent.left
        grandparent = parent.parent
        if grandparent is None:
            self._root = sibling
            sibling.parent = None
        else:
            grandparent.replace_child(parent, sibling)
            self._refit_upwards(sibling)

    def _refit_upwards(self, node: TreeNode) -> None:
        """Re-tighten MBRs from ``node``'s parent up to the root."""
        current = node.parent
        while current is not None:
            current._set_rect(current.left.rect.union(current.right.rect))
            current = current.parent

    # ------------------------------------------------------------------ #
    # Traversal helpers used by the search algorithms
    # ------------------------------------------------------------------ #
    def leaves(self) -> Iterator[LeafNode]:
        """Iterate over all leaves (left-to-right order)."""
        if self._root is None:
            return
        stack: list[TreeNode] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf():
                yield node  # type: ignore[misc]
            else:
                assert isinstance(node, InternalNode)
                stack.append(node.right)
                stack.append(node.left)

    def leaf_ordinals(self) -> dict[int, int]:
        """Stable left-to-right ordinal of every leaf, keyed by ``id(leaf)``.

        Ordinals follow the left-to-right leaf order of :meth:`leaves` and
        are recomputed lazily after any structural change, so they are
        deterministic across runs of the same build sequence (unlike raw
        ``id()`` values).
        """
        ordinals = self._leaf_ordinals
        if ordinals is None:
            ordinals = {id(leaf): ordinal for ordinal, leaf in enumerate(self.leaves())}
            self._leaf_ordinals = ordinals
        return ordinals

    def leaf_ordinal(self, leaf: LeafNode) -> int:
        """Left-to-right ordinal of ``leaf`` in the current tree."""
        try:
            return self.leaf_ordinals()[id(leaf)]
        except KeyError as exc:
            raise ValueError("leaf does not belong to this index") from exc

    def leaf_for(self, dataset_id: str) -> LeafNode:
        """The leaf currently storing ``dataset_id``."""
        try:
            return self._leaf_of[dataset_id]
        except KeyError as exc:
            raise DatasetNotFoundError(dataset_id) from exc

    def height(self) -> int:
        """Height of the tree (a single leaf has height 1)."""
        def depth(node: TreeNode) -> int:
            if node.is_leaf():
                return 1
            assert isinstance(node, InternalNode)
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root) if self._root is not None else 0

    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        count = 0
        if self._root is None:
            return 0
        stack: list[TreeNode] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf():
                assert isinstance(node, InternalNode)
                stack.extend(node.children())
        return count

    def visit(self, callback: Callable[[TreeNode], bool]) -> None:
        """Depth-first traversal; ``callback`` returns ``False`` to prune a subtree."""
        if self._root is None:
            return
        stack: list[TreeNode] = [self._root]
        while stack:
            node = stack.pop()
            if not callback(node):
                continue
            if not node.is_leaf():
                assert isinstance(node, InternalNode)
                stack.extend(node.children())

    def root_summary(self) -> tuple[BoundingBox, Point, float, int]:
        """The ``(rect, pivot, radius, n_datasets)`` summary shipped to DITS-G."""
        root = self.root
        return root.rect, root.pivot, root.radius, len(self)


def _median_split(
    entries: Iterable[DatasetNode], dimension: int
) -> tuple[list[DatasetNode], list[DatasetNode]]:
    """Split ``entries`` at the median pivot coordinate along ``dimension``.

    Entries are first sorted by the chosen coordinate (ties broken by dataset
    ID for determinism) and then cut at the median position, which guarantees
    both halves are non-empty even when many pivots coincide.
    """
    ordered = sorted(
        entries,
        key=lambda entry: (
            entry.pivot.x if dimension == 0 else entry.pivot.y,
            entry.dataset_id,
        ),
    )
    if len(ordered) < 2:
        raise ValueError("cannot split fewer than two entries")
    midpoint = len(ordered) // 2
    return ordered[:midpoint], ordered[midpoint:]


def median_pivot(entries: Iterable[DatasetNode], dimension: int) -> float:
    """Median pivot coordinate along ``dimension`` (exposed for tests)."""
    values = [entry.pivot.x if dimension == 0 else entry.pivot.y for entry in entries]
    return statistics.median(values)
