"""DITS-L: the local DIstributed Tree-based Spatial index (Section V-A).

DITS-L is a binary tree over *dataset nodes* (one entry per dataset, not per
point) built top-down by recursively splitting on the widest dimension at the
median pivot (Algorithm 1).  The structure combines two classic indexes:

* like a ball tree / kd-tree, every tree node stores the MBR, pivot and
  radius enclosing its subtree, which enables MBR pruning and the Lemma 4
  distance bounds used by CoverageSearch;
* like an inverted index, every *leaf* stores posting lists mapping each cell
  ID to the dataset IDs in the leaf that contain it, which enables the
  Lemma 2/3 intersection bounds and fast verification used by OverlapSearch.

The tree keeps parent pointers (a bidirectional structure) so the incremental
insert/update/delete operations of Appendix IX-C touch one root-to-leaf path,
and it maintains a *weight-balance invariant* on top of them: every node
carries its subtree dataset count, the mutation path is rechecked after each
operation, and the highest ancestor whose heavier child exceeds ``alpha``
times its size is rebuilt with the bulk median split (a scapegoat-style
amortized partial rebuild — see :mod:`repro.index.dits_rebalance`).  Deletes
additionally merge underflowing leaves into their sibling, and a deferred
mode batches MBR re-tightening across mutation bursts until the next query.
Sustained churn therefore cannot skew the tree or inflate leaf MBRs, which
keeps the Lemma 2/3/4 pruning bounds as strong as on a freshly built tree.
"""

from __future__ import annotations

import statistics
from typing import Callable, Iterable, Iterator

from repro.core.dataset import DatasetNode
from repro.core.errors import (
    DatasetNotFoundError,
    IndexNotBuiltError,
    InvalidParameterError,
)
from repro.core.geometry import BoundingBox, Point
from repro.index.base import DatasetIndex
from repro.index.dits_rebalance import RebalancePolicy, RebalanceStats, Rebalancer

__all__ = ["DITSLocalIndex", "TreeNode", "InternalNode", "LeafNode"]

DEFAULT_LEAF_CAPACITY = 30


class TreeNode:
    """Base class for DITS-L tree nodes: carries MBR, pivot, radius and parent.

    ``size`` is the number of datasets in the subtree (the weight the
    rebalancer's alpha-balance test runs on); ``refit_dirty`` marks nodes
    whose MBR re-tightening is deferred until the next query flush.
    """

    __slots__ = ("rect", "pivot", "radius", "parent", "size", "refit_dirty")

    def __init__(self, rect: BoundingBox, parent: "InternalNode | None" = None) -> None:
        self.rect = rect
        self.pivot = rect.center
        self.radius = rect.radius
        self.parent = parent
        self.size = 0
        self.refit_dirty = False

    def is_leaf(self) -> bool:
        """Whether this node is a leaf (overridden by subclasses)."""
        raise NotImplementedError

    def _set_rect(self, rect: BoundingBox) -> None:
        self.rect = rect
        self.pivot = rect.center
        self.radius = rect.radius


class InternalNode(TreeNode):
    """An internal DITS-L node with exactly two children (Definition 13)."""

    __slots__ = ("left", "right")

    def __init__(
        self,
        rect: BoundingBox,
        left: "TreeNode",
        right: "TreeNode",
        parent: "InternalNode | None" = None,
    ) -> None:
        super().__init__(rect, parent)
        self.left = left
        self.right = right
        left.parent = self
        right.parent = self
        self.size = left.size + right.size

    def is_leaf(self) -> bool:
        """An internal node is never a leaf."""
        return False

    def children(self) -> tuple["TreeNode", "TreeNode"]:
        """The two child nodes as ``(left, right)``."""
        return self.left, self.right

    def replace_child(self, old: "TreeNode", new: "TreeNode") -> None:
        """Swap ``old`` for ``new`` among the children."""
        if self.left is old:
            self.left = new
        elif self.right is old:
            self.right = new
        else:
            raise ValueError("node to replace is not a child of this internal node")
        new.parent = self


class LeafNode(TreeNode):
    """A DITS-L leaf holding dataset nodes and their inverted index (Definition 14).

    The posting list of each cell is a *counted* mapping ``dataset id -> 1``
    (an insertion-ordered set with O(1) membership and removal) rather than a
    plain list: iterating it yields the dataset IDs exactly like the list
    did, ``len()`` still gives the posting count, but ``remove_entry`` no
    longer pays an O(postings) ``list.remove`` per cell.

    Leaves additionally expose :attr:`full_cells` — the cells whose posting
    list contains *every* dataset of the leaf — so the Lemma 3 lower bound
    is one set intersection per query instead of a per-cell posting scan.
    """

    __slots__ = ("entries", "inverted", "capacity", "_full_cells")

    def __init__(
        self,
        rect: BoundingBox,
        entries: list[DatasetNode],
        capacity: int,
        parent: "InternalNode | None" = None,
    ) -> None:
        super().__init__(rect, parent)
        self.entries = list(entries)
        self.capacity = capacity
        self.size = len(self.entries)
        self.inverted: dict[int, dict[str, int]] = {}
        self._full_cells: set[int] | None = None
        self.rebuild_inverted()

    def is_leaf(self) -> bool:
        """A leaf stores dataset entries directly."""
        return True

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full_cells(self) -> set[int]:
        """Cells posted by every dataset of the leaf (Lemma 3 support set)."""
        cached = self._full_cells
        if cached is None:
            size = len(self.entries)
            cached = {
                cell
                for cell, postings in self.inverted.items()
                if len(postings) == size
            }
            self._full_cells = cached
        return cached

    def rebuild_inverted(self) -> None:
        """Recompute the cell-ID -> dataset-ID posting lists from the entries."""
        inverted: dict[int, dict[str, int]] = {}
        for entry in self.entries:
            dataset_id = entry.dataset_id
            for cell in entry.cells:
                postings = inverted.get(cell)
                if postings is None:
                    inverted[cell] = {dataset_id: 1}
                else:
                    postings[dataset_id] = 1
        self.inverted = inverted
        self._full_cells = None

    def add_entry(self, node: DatasetNode) -> None:
        """Append a dataset node and extend the posting lists."""
        self.entries.append(node)
        self.size = len(self.entries)
        dataset_id = node.dataset_id
        inverted = self.inverted
        for cell in node.cells:
            postings = inverted.get(cell)
            if postings is None:
                inverted[cell] = {dataset_id: 1}
            else:
                postings[dataset_id] = 1
        self._full_cells = None

    def remove_entry(self, dataset_id: str) -> DatasetNode:
        """Remove the entry with ``dataset_id`` and shrink the posting lists.

        O(cells of the removed dataset): the counted postings make each
        per-cell removal a hash delete instead of a list scan.
        """
        for position, entry in enumerate(self.entries):
            if entry.dataset_id == dataset_id:
                removed = self.entries.pop(position)
                self.size = len(self.entries)
                inverted = self.inverted
                for cell in removed.cells:
                    postings = inverted.get(cell)
                    if postings is None:
                        continue
                    postings.pop(dataset_id, None)
                    if not postings:
                        del inverted[cell]
                self._full_cells = None
                return removed
        raise DatasetNotFoundError(dataset_id)

    def dataset_ids(self) -> list[str]:
        """IDs of the datasets stored in the leaf."""
        return [entry.dataset_id for entry in self.entries]


class DITSLocalIndex(DatasetIndex):
    """The DITS-L local index (Algorithm 1).

    Parameters
    ----------
    leaf_capacity:
        Maximum number of dataset nodes per leaf (parameter ``f`` in the
        paper, default 30 to match the paper's mid-range setting).
    rebalance:
        Incremental rebalancing policy applied along every mutation path;
        ``None`` uses the default-enabled :class:`RebalancePolicy` (pass
        ``RebalancePolicy(enabled=False)`` for the legacy never-rebalance
        behaviour, e.g. to measure churn skew).
    """

    name = "DITS-L"

    def __init__(
        self,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        rebalance: RebalancePolicy | None = None,
    ) -> None:
        super().__init__()
        if leaf_capacity <= 0:
            raise InvalidParameterError(f"leaf capacity must be positive, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self.rebalance_policy = rebalance if rebalance is not None else RebalancePolicy()
        self._rebalancer = Rebalancer(self, self.rebalance_policy)
        self._defer_refits = self.rebalance_policy.deferred_refit
        self._refit_pending = False
        self._root: TreeNode | None = None
        self._leaf_of: dict[str, LeafNode] = {}
        self._leaf_ordinals: dict[int, int] | None = None

    @property
    def rebalance_stats(self) -> RebalanceStats:
        """Cumulative maintenance counters (rebuilds, merges, deferred refits)."""
        return self._rebalancer.stats

    # ------------------------------------------------------------------ #
    # Construction (Algorithm 1, top-down median split)
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> TreeNode:
        """The root tree node; raises if the index is empty/unbuilt.

        Flushes any deferred MBR re-tightening first, so every consumer of
        the tree (the search algorithms, ``root_summary``) always observes
        exact MBRs.
        """
        self._service_pending()
        if self._root is None:
            raise IndexNotBuiltError("DITS-L index has not been built or is empty")
        return self._root

    def is_built(self) -> bool:
        """Whether the tree currently holds at least one dataset."""
        return self._root is not None

    def _rebuild(self) -> None:
        self._leaf_of = {}
        self._leaf_ordinals = None
        self._refit_pending = False
        entries = list(self._nodes.values())
        self._root = self._build_subtree(entries, parent=None) if entries else None

    def _build_subtree(
        self, entries: list[DatasetNode], parent: InternalNode | None
    ) -> TreeNode:
        rect = BoundingBox.union_of(entry.rect for entry in entries)
        if len(entries) <= self.leaf_capacity:
            leaf = LeafNode(rect, entries, self.leaf_capacity, parent)
            for entry in entries:
                self._leaf_of[entry.dataset_id] = leaf
            return leaf

        split_dim = 0 if rect.width >= rect.height else 1
        left_entries, right_entries = _median_split(entries, split_dim)
        node = InternalNode(
            rect,
            left=self._build_subtree(left_entries, parent=None),
            right=self._build_subtree(right_entries, parent=None),
            parent=parent,
        )
        return node

    # ------------------------------------------------------------------ #
    # Maintenance (Appendix IX-C + scapegoat-style rebalancing)
    # ------------------------------------------------------------------ #
    def _insert_structure(self, node: DatasetNode) -> None:
        self._leaf_ordinals = None
        if self._root is None:
            leaf = LeafNode(node.rect, [node], self.leaf_capacity, parent=None)
            self._root = leaf
            self._leaf_of[node.dataset_id] = leaf
            return
        leaf = self._choose_leaf(node)
        leaf.add_entry(node)
        leaf._set_rect(leaf.rect.union(node.rect))
        self._leaf_of[node.dataset_id] = leaf
        changed: TreeNode = leaf
        if len(leaf) > self.leaf_capacity:
            changed = self._split_leaf(leaf)
        # Inserts only enlarge MBRs, so growing each ancestor by the new
        # rect *is* the exact refit — there is nothing to re-tighten and
        # nothing to defer.
        self._grow_upwards(changed, node.rect)
        self._rebalancer.after_mutation(changed)

    def _delete_structure(self, node: DatasetNode) -> None:
        self._leaf_ordinals = None
        leaf = self._leaf_of.pop(node.dataset_id, None)
        if leaf is None:
            raise DatasetNotFoundError(node.dataset_id)
        leaf.remove_entry(node.dataset_id)
        if not leaf.entries:
            survivor = self._remove_empty_leaf(leaf)
            if survivor is None:
                return
            changed = survivor
        else:
            changed = self._rebalancer.absorb_underflow(leaf)
        self._tighten_or_defer(changed)
        self._rebalancer.after_mutation(changed)

    def _update_structure(self, old: DatasetNode, new: DatasetNode) -> None:
        self._leaf_ordinals = None
        leaf = self._leaf_of.get(old.dataset_id)
        if leaf is None:
            raise DatasetNotFoundError(old.dataset_id)
        if self._choose_leaf(new) is not leaf:
            # The dataset moved: keeping it in place would union the new
            # rect into a leaf it no longer belongs to, permanently bloating
            # that leaf's MBR and weakening the distance bounds.  Relocate.
            self._delete_structure(old)
            self._insert_structure(new)
            return
        leaf.remove_entry(old.dataset_id)
        leaf.add_entry(new)
        if self._defer_refits:
            # Keep the MBRs conservative now (the new rect may extend past
            # the leaf), defer the re-tightening to the next query flush.
            leaf._set_rect(leaf.rect.union(new.rect))
            self._grow_upwards(leaf, new.rect)
            self._mark_dirty_upwards(leaf)
            self._rebalancer.stats.deferred_refits += 1
        else:
            leaf._set_rect(BoundingBox.union_of(entry.rect for entry in leaf.entries))
            self._refit_upwards(leaf)

    def _choose_leaf(self, node: DatasetNode) -> LeafNode:
        """Descend from the root choosing the child whose pivot is closest."""
        current = self._root
        assert current is not None
        while not current.is_leaf():
            assert isinstance(current, InternalNode)
            left_distance = current.left.pivot.distance_to(node.pivot)
            right_distance = current.right.pivot.distance_to(node.pivot)
            current = current.left if left_distance <= right_distance else current.right
        assert isinstance(current, LeafNode)
        return current

    def _split_leaf(self, leaf: LeafNode) -> InternalNode:
        """Split an over-full leaf into two along its widest dimension."""
        rect = BoundingBox.union_of(entry.rect for entry in leaf.entries)
        split_dim = 0 if rect.width >= rect.height else 1
        left_entries, right_entries = _median_split(leaf.entries, split_dim)
        parent = leaf.parent
        left_leaf = LeafNode(
            BoundingBox.union_of(entry.rect for entry in left_entries),
            left_entries,
            self.leaf_capacity,
        )
        right_leaf = LeafNode(
            BoundingBox.union_of(entry.rect for entry in right_entries),
            right_entries,
            self.leaf_capacity,
        )
        for entry in left_entries:
            self._leaf_of[entry.dataset_id] = left_leaf
        for entry in right_entries:
            self._leaf_of[entry.dataset_id] = right_leaf
        replacement = InternalNode(rect, left_leaf, right_leaf, parent)
        if parent is None:
            self._root = replacement
        else:
            parent.replace_child(leaf, replacement)
        return replacement

    def _remove_empty_leaf(self, leaf: LeafNode) -> TreeNode | None:
        """Remove a leaf that lost its last entry, collapsing its parent.

        Returns the sibling promoted into the parent's place (the node to
        continue refit/size maintenance from), or ``None`` when the removed
        leaf was the root and the tree is now empty.
        """
        parent = leaf.parent
        if parent is None:
            self._root = None
            self._refit_pending = False
            return None
        sibling = parent.right if parent.left is leaf else parent.left
        grandparent = parent.parent
        if grandparent is None:
            self._root = sibling
            sibling.parent = None
        else:
            grandparent.replace_child(parent, sibling)
        return sibling

    # ------------------------------------------------------------------ #
    # MBR maintenance: eager refits, conservative grows, deferred flushes
    # ------------------------------------------------------------------ #
    def _refit_upwards(self, node: TreeNode) -> None:
        """Re-tighten MBRs from ``node``'s parent up to the root."""
        current = node.parent
        while current is not None:
            current._set_rect(current.left.rect.union(current.right.rect))
            current = current.parent

    def _grow_upwards(self, node: TreeNode, rect: BoundingBox) -> None:
        """Grow ancestor MBRs to cover ``rect`` (stop once it is contained).

        Ancestors are nested, so the first one already containing ``rect``
        ends the walk.  For inserts this *is* the exact refit; for deferred
        updates it is the cheap conservative step preceding the flush.
        """
        current = node.parent
        while current is not None and not current.rect.contains_box(rect):
            current._set_rect(current.rect.union(rect))
            current = current.parent

    def _tighten_or_defer(self, node: TreeNode) -> None:
        """Re-tighten MBRs from ``node`` up, or mark the path for a later flush."""
        if self._defer_refits:
            self._mark_dirty_upwards(node)
            self._rebalancer.stats.deferred_refits += 1
            return
        if node.is_leaf():
            assert isinstance(node, LeafNode)
            node._set_rect(BoundingBox.union_of(entry.rect for entry in node.entries))
        self._refit_upwards(node)

    def _mark_dirty_upwards(self, node: TreeNode) -> None:
        """Flag ``node`` and its ancestors for re-tightening at the next flush.

        The walk stops at the first already-dirty ancestor (its own path to
        the root is dirty by construction), so a burst of mutations in one
        region marks each path segment once.
        """
        current: TreeNode | None = node
        while current is not None and not current.refit_dirty:
            current.refit_dirty = True
            current = current.parent
        self._refit_pending = True

    def _service_pending(self) -> None:
        """Flush deferred MBR re-tightening before the tree is observed."""
        if self._refit_pending:
            self._flush_refits()

    def _flush_refits(self) -> None:
        """Re-tighten every dirty node bottom-up (one pass over the dirty region)."""
        self._refit_pending = False
        root = self._root
        if root is None or not root.refit_dirty:
            return
        stack: list[tuple[TreeNode, bool]] = [(root, False)]
        while stack:
            node, children_done = stack.pop()
            if not node.refit_dirty:
                continue
            if node.is_leaf():
                assert isinstance(node, LeafNode)
                node._set_rect(
                    BoundingBox.union_of(entry.rect for entry in node.entries)
                )
                node.refit_dirty = False
            elif children_done:
                assert isinstance(node, InternalNode)
                node._set_rect(node.left.rect.union(node.right.rect))
                node.refit_dirty = False
            else:
                assert isinstance(node, InternalNode)
                stack.append((node, True))
                stack.append((node.right, False))
                stack.append((node.left, False))
        self._rebalancer.stats.refit_flushes += 1

    def _collect_entries(self, node: TreeNode) -> list[DatasetNode]:
        """All dataset nodes stored under ``node``, in left-to-right leaf order."""
        entries: list[DatasetNode] = []
        stack: list[TreeNode] = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf():
                assert isinstance(current, LeafNode)
                entries.extend(current.entries)
            else:
                assert isinstance(current, InternalNode)
                stack.append(current.right)
                stack.append(current.left)
        return entries

    # ------------------------------------------------------------------ #
    # Traversal helpers used by the search algorithms
    # ------------------------------------------------------------------ #
    def leaves(self) -> Iterator[LeafNode]:
        """Iterate over all leaves (left-to-right order)."""
        self._service_pending()
        if self._root is None:
            return
        stack: list[TreeNode] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf():
                yield node  # type: ignore[misc]
            else:
                assert isinstance(node, InternalNode)
                stack.append(node.right)
                stack.append(node.left)

    def leaf_ordinals(self) -> dict[int, int]:
        """Stable left-to-right ordinal of every leaf, keyed by ``id(leaf)``.

        Ordinals follow the left-to-right leaf order of :meth:`leaves` and
        are recomputed lazily after any structural change, so they are
        deterministic across runs of the same build sequence (unlike raw
        ``id()`` values).
        """
        ordinals = self._leaf_ordinals
        if ordinals is None:
            ordinals = {id(leaf): ordinal for ordinal, leaf in enumerate(self.leaves())}
            self._leaf_ordinals = ordinals
        return ordinals

    def leaf_ordinal(self, leaf: LeafNode) -> int:
        """Left-to-right ordinal of ``leaf`` in the current tree."""
        try:
            return self.leaf_ordinals()[id(leaf)]
        except KeyError as exc:
            raise ValueError("leaf does not belong to this index") from exc

    def leaf_for(self, dataset_id: str) -> LeafNode:
        """The leaf currently storing ``dataset_id``."""
        try:
            return self._leaf_of[dataset_id]
        except KeyError as exc:
            raise DatasetNotFoundError(dataset_id) from exc

    def height(self) -> int:
        """Height of the tree (a single leaf has height 1).

        Iterative: a churn-skewed (or simply very large) tree must not blow
        the interpreter recursion limit, which the previous per-level
        recursion did once the depth approached ~1000.
        """
        self._service_pending()
        if self._root is None:
            return 0
        deepest = 0
        stack: list[tuple[TreeNode, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf():
                if depth > deepest:
                    deepest = depth
                continue
            assert isinstance(node, InternalNode)
            stack.append((node.right, depth + 1))
            stack.append((node.left, depth + 1))
        return deepest

    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        self._service_pending()
        count = 0
        if self._root is None:
            return 0
        stack: list[TreeNode] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf():
                assert isinstance(node, InternalNode)
                stack.extend(node.children())
        return count

    def visit(self, callback: Callable[[TreeNode], bool]) -> None:
        """Depth-first traversal; ``callback`` returns ``False`` to prune a subtree."""
        self._service_pending()
        if self._root is None:
            return
        stack: list[TreeNode] = [self._root]
        while stack:
            node = stack.pop()
            if not callback(node):
                continue
            if not node.is_leaf():
                assert isinstance(node, InternalNode)
                stack.extend(node.children())

    def root_summary(self) -> tuple[BoundingBox, Point, float, int]:
        """The ``(rect, pivot, radius, n_datasets)`` summary shipped to DITS-G."""
        root = self.root
        return root.rect, root.pivot, root.radius, len(self)


def _median_split(
    entries: Iterable[DatasetNode], dimension: int
) -> tuple[list[DatasetNode], list[DatasetNode]]:
    """Split ``entries`` at the median pivot coordinate along ``dimension``.

    Entries are first sorted by the chosen coordinate (ties broken by dataset
    ID for determinism) and then cut at the median position, which guarantees
    both halves are non-empty even when many pivots coincide.
    """
    ordered = sorted(
        entries,
        key=lambda entry: (
            entry.pivot.x if dimension == 0 else entry.pivot.y,
            entry.dataset_id,
        ),
    )
    if len(ordered) < 2:
        raise ValueError("cannot split fewer than two entries")
    midpoint = len(ordered) // 2
    return ordered[:midpoint], ordered[midpoint:]


def median_pivot(entries: Iterable[DatasetNode], dimension: int) -> float:
    """Median pivot coordinate along ``dimension`` (exposed for tests)."""
    values = [entry.pivot.x if dimension == 0 else entry.pivot.y for entry in entries]
    return statistics.median(values)
