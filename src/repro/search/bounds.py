"""Leaf-level intersection bounds for OverlapSearch (Lemmas 2 and 3).

For a DITS-L leaf and a query cell set the paper derives two bounds from the
leaf's inverted index alone, without touching individual dataset entries:

* **Upper bound (Lemma 2)** — the number of query cells that appear as a key
  of the leaf's inverted index.  No dataset inside the leaf can overlap the
  query on more cells than that.
* **Lower bound (Lemma 3)** — the number of query cells whose posting list
  contains *every* dataset of the leaf.  Each of those cells is guaranteed to
  be shared by any dataset inside the leaf, so every dataset overlaps the
  query by at least that much.

OverlapSearch keeps candidate leaves in a priority queue ordered by upper
bound and prunes a leaf in batch whenever its upper bound cannot beat the
best lower bounds already enqueued (Algorithm 2, lines 16–22).
"""

from __future__ import annotations

from typing import Iterable

from repro.index.dits import LeafNode

__all__ = ["leaf_intersection_bounds", "leaf_upper_bound", "leaf_lower_bound"]


def leaf_intersection_bounds(leaf: LeafNode, query_cells: Iterable[int]) -> tuple[int, int]:
    """Return ``(lower, upper)`` intersection bounds between ``leaf`` and the query.

    Both bounds are C-level set intersections: the upper bound intersects
    the query cells with the inverted index's key set, the lower bound
    intersects the shared cells with the leaf's precomputed
    :attr:`~repro.index.dits.LeafNode.full_cells` — no per-cell posting-list
    inspection remains.
    """
    query_set = query_cells if isinstance(query_cells, (set, frozenset)) else set(query_cells)
    shared = query_set & leaf.inverted.keys()
    upper = len(shared)
    if upper == 0:
        return 0, 0
    return len(shared & leaf.full_cells), upper


def leaf_upper_bound(leaf: LeafNode, query_cells: Iterable[int]) -> int:
    """Lemma 2 upper bound only."""
    query_set = query_cells if isinstance(query_cells, (set, frozenset)) else set(query_cells)
    return len(query_set & leaf.inverted.keys())


def leaf_lower_bound(leaf: LeafNode, query_cells: Iterable[int]) -> int:
    """Lemma 3 lower bound only."""
    query_set = query_cells if isinstance(query_cells, (set, frozenset)) else set(query_cells)
    return len(query_set & leaf.full_cells)
