"""Search algorithms for OJSP and CJSP.

* :mod:`repro.search.bounds` — leaf-level intersection bounds (Lemmas 2–3).
* :mod:`repro.search.overlap` — ``OverlapSearch`` (Algorithm 2) over DITS-L.
* :mod:`repro.search.overlap_baselines` — OJSP via QuadTree, R-tree, STS3,
  Josie and a brute-force scan.
* :mod:`repro.search.coverage` — ``CoverageSearch`` (Algorithm 3) over
  DITS-L with the spatial-merge strategy.
* :mod:`repro.search.coverage_baselines` — the standard greedy ``SG`` and the
  index-assisted ``SG+DITS`` baselines.
"""

from repro.search.bounds import leaf_intersection_bounds
from repro.search.coverage import CoverageSearch, find_connected_nodes
from repro.search.coverage_baselines import (
    StandardGreedy,
    StandardGreedyWithDITS,
)
from repro.search.overlap import OverlapSearch
from repro.search.overlap_baselines import (
    BruteForceOverlap,
    JosieOverlap,
    QuadTreeOverlap,
    RTreeOverlap,
    STS3Overlap,
)

__all__ = [
    "BruteForceOverlap",
    "CoverageSearch",
    "JosieOverlap",
    "OverlapSearch",
    "QuadTreeOverlap",
    "RTreeOverlap",
    "STS3Overlap",
    "StandardGreedy",
    "StandardGreedyWithDITS",
    "find_connected_nodes",
    "leaf_intersection_bounds",
]
