"""CoverageSearch: the greedy CJSP algorithm over DITS-L (Algorithm 3).

CJSP is NP-hard (reduction from Maximum Coverage), so the paper solves it
with a greedy algorithm that in each of ``k`` iterations adds the dataset
with the largest marginal coverage gain among those connected to the current
result set.  Two accelerations distinguish CoverageSearch from the plain
greedy baseline:

* **Spatial merge** — instead of checking connectivity against every dataset
  already in the result set, the result set (query included) is merged into a
  single *merged node* whose MBR/pivot/radius cover everything selected so
  far.  Each iteration then performs exactly one connectivity search in the
  tree.
* **Distance bounds (Lemma 4)** — ``FindConnectSet`` descends DITS-L using
  pivot/radius distance bounds: a subtree whose upper bound is within
  ``delta`` is accepted wholesale, a subtree whose lower bound exceeds
  ``delta`` is rejected wholesale, and only border cases fall through to
  exact per-dataset distance checks.
* **Coverage-size filter** — a candidate whose total cell count does not
  exceed the best marginal gain found so far in the current iteration cannot
  win it, so its exact marginal gain is never computed (Algorithm 3 line 6).

Two further accelerations are layered on top without changing any result:

* **Connectivity cache** — the merged node only ever *grows*, so the
  distance from any dataset to it is monotonically non-increasing across
  iterations.  A dataset found connected once therefore stays connected;
  its (potentially expensive) exact distance check is never repeated.
* **Merge-kernel gains** — with the vectorized cell-set backend the covered
  set is a sorted cell vector, marginal gains are ``difference_size`` merge
  kernels and the covered set is advanced with one vectorized union per
  iteration, instead of rebuilding Python set differences/unions.
* **Batched leaf verification** — the leaf entries whose Lemma 4 bounds are
  indecisive are accumulated during the tree traversal and resolved with one
  δ-bounded :class:`~repro.core.distance_engine.DistanceEngine` kernel call
  (a single KD-tree over the merged query answers the whole frontier),
  replacing the per-entry exact distance computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container

from repro.core.dataset import DatasetNode
from repro.core.distance import node_distance_bounds
from repro.core.distance_engine import get_engine
from repro.core.errors import InvalidParameterError
from repro.core.problems import CoverageQuery, CoverageResult, ScoredDataset
from repro.index.dits import DITSLocalIndex, InternalNode, LeafNode, TreeNode
from repro.utils import cellsets

__all__ = ["CoverageSearch", "CoverageSearchStats", "find_connected_nodes"]


@dataclass(slots=True)
class CoverageSearchStats:
    """Counters describing the work performed by one coverage search."""

    iterations: int = 0
    subtree_accepts: int = 0
    subtree_rejects: int = 0
    exact_distance_checks: int = 0
    gain_evaluations: int = 0
    gain_skips: int = 0


def find_connected_nodes(  # parity-critical
    root: TreeNode,
    query: DatasetNode,
    delta: float,
    exclude: set[str] | None = None,
    stats: CoverageSearchStats | None = None,
    known_connected: Container[str] | None = None,
) -> list[DatasetNode]:
    """FindConnectSet (Algorithm 3, lines 14-26): datasets within ``delta`` of ``query``.

    The DITS-L tree rooted at ``root`` is traversed with the Lemma 4 bounds:
    subtrees are accepted or rejected wholesale whenever the bounds are
    decisive and only the remaining datasets pay an exact distance
    computation.  ``exclude`` removes datasets already in the result set.

    ``known_connected`` names datasets already proven connected to a node
    whose cells are a subset of ``query``'s (CoverageSearch's previous merged
    node): their distance to ``query`` can only have shrunk, so they are
    accepted without re-checking.  Passing it never changes the result set,
    only the amount of distance work.

    Leaf entries whose bounds are indecisive are *not* verified one by one:
    they are collected during the traversal and resolved afterwards with a
    single δ-bounded batch kernel (one KD-tree over ``query``, one stacked
    candidate query), preserving the traversal order of the result list.
    """
    if delta < 0:
        raise InvalidParameterError(f"delta must be non-negative, got {delta}")
    excluded = exclude or set()
    known = known_connected if known_connected is not None else ()
    # ``None`` marks slots reserved for undecided entries, filled (or dropped)
    # after the batched verification so the output order matches the
    # entry-by-entry traversal exactly.
    slots: list[DatasetNode | None] = []
    pending_nodes: list[DatasetNode] = []
    pending_slots: list[int] = []
    stack: list[TreeNode] = [root]
    while stack:
        node = stack.pop()
        pivot_distance = node.pivot.distance_to(query.pivot)
        lower = max(pivot_distance - node.radius - query.radius, 0.0)
        upper = pivot_distance + node.radius + query.radius
        if upper <= delta:
            # Whole subtree is connected: collect every dataset it stores.
            if stats is not None:
                stats.subtree_accepts += 1
            _collect_datasets(node, excluded, slots)
            continue
        if lower > delta:
            if stats is not None:
                stats.subtree_rejects += 1
            continue
        if node.is_leaf():
            assert isinstance(node, LeafNode)
            for entry in node.entries:
                if entry.dataset_id in excluded:
                    continue
                if entry.dataset_id in known:
                    slots.append(entry)
                    continue
                entry_lower, entry_upper = node_distance_bounds(entry, query)
                if entry_lower > delta:
                    continue
                if entry_upper <= delta:
                    slots.append(entry)
                    continue
                pending_slots.append(len(slots))
                slots.append(None)
                pending_nodes.append(entry)
        else:
            assert isinstance(node, InternalNode)
            stack.append(node.left)
            stack.append(node.right)
    if pending_nodes:
        if stats is not None:
            stats.exact_distance_checks += len(pending_nodes)
        mask = get_engine().within_delta_many(query, pending_nodes, delta)
        for slot, entry, ok in zip(pending_slots, pending_nodes, mask):
            if ok:
                slots[slot] = entry
    return [entry for entry in slots if entry is not None]


def _collect_datasets(
    node: TreeNode, excluded: set[str], out: "list[DatasetNode | None]"
) -> None:
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf():
            assert isinstance(current, LeafNode)
            out.extend(entry for entry in current.entries if entry.dataset_id not in excluded)
        else:
            assert isinstance(current, InternalNode)
            stack.append(current.left)
            stack.append(current.right)


class CoverageSearch:
    """Greedy coverage joinable search with spatial merge over DITS-L."""

    name = "CoverageSearch"

    def __init__(self, index: DITSLocalIndex) -> None:
        self._index = index
        self.last_stats = CoverageSearchStats()

    @property
    def index(self) -> DITSLocalIndex:
        """The DITS-L index this search runs against."""
        return self._index

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def search(self, request: CoverageQuery) -> CoverageResult:
        """Run CJSP for ``request``."""
        return self.search_node(request.query, request.k, request.delta)

    def search_node(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:  # parity-critical
        """Run CJSP for ``query`` with result size ``k`` and threshold ``delta``."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        stats = CoverageSearchStats()
        self.last_stats = stats

        entries: list[ScoredDataset] = []
        if not self._index.is_built() or len(self._index) == 0:
            return CoverageResult(
                entries=(), total_coverage=len(query.cells), query_coverage=len(query.cells)
            )

        use_vector = cellsets.use_vector()
        merged = query
        covered: set[int] = set() if use_vector else set(query.cells)
        covered_array = query.cells_array if use_vector else None
        chosen_ids: set[str] = set()
        # Datasets proven connected in an earlier iteration stay connected
        # (the merged node only grows), so their distance work is never paid
        # twice.
        connected_ids: set[str] = set()

        for _ in range(k):
            stats.iterations += 1
            candidates = find_connected_nodes(
                self._index.root,
                merged,
                delta,
                exclude=chosen_ids,
                stats=stats,
                known_connected=connected_ids,
            )
            connected_ids.update(candidate.dataset_id for candidate in candidates)
            best_node: DatasetNode | None = None
            best_gain = 0
            # Sort by descending cell count so the size filter (|S_D| > tau)
            # triggers as early as possible.
            for candidate in sorted(
                candidates, key=lambda c: (-len(c.cells), c.dataset_id)
            ):
                if len(candidate.cells) <= best_gain:
                    stats.gain_skips += 1
                    continue
                stats.gain_evaluations += 1
                if use_vector:
                    gain = cellsets.difference_size(candidate.cells_array, covered_array)
                else:
                    gain = len(candidate.cells - covered)
                if gain > best_gain or (
                    gain == best_gain
                    and gain > 0
                    and best_node is not None
                    and candidate.dataset_id < best_node.dataset_id
                ):
                    best_gain = gain
                    best_node = candidate
            if best_node is None or best_gain == 0:
                # Either nothing is connected or nothing adds new coverage;
                # if connected candidates exist but add no coverage we still
                # stop (no positive marginal gain remains), matching the
                # greedy objective.
                break
            chosen_ids.add(best_node.dataset_id)
            if use_vector:
                covered_array = cellsets.union(covered_array, best_node.cells_array)
            else:
                covered |= best_node.cells
            entries.append(
                ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain))
            )
            merged = merged.merged_with(best_node, merged_id="__merged_query__")

        total_coverage = int(covered_array.size) if use_vector else len(covered)
        return CoverageResult(
            entries=tuple(entries),
            total_coverage=total_coverage,
            query_coverage=len(query.cells),
        )
