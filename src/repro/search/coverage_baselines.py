"""CJSP baseline algorithms: standard greedy with and without DITS.

Section VII-D compares CoverageSearch against two baselines:

* **SG (StandardGreedy)** — the textbook greedy algorithm for maximum
  coverage, extended with the connectivity constraint: every iteration scans
  *all* datasets in the source, keeps those directly connected to any member
  of the current result set (query included), and adds the one with the
  largest marginal gain.  Connectivity checks use exact cell-set distances
  (no Lemma 4 bounds — that is what makes it the baseline).
* **SG+DITS (StandardGreedyWithDITS)** — the same greedy loop, but each
  round's connected-candidate discovery runs ``FindConnectSet`` over DITS-L,
  exploiting the Lemma 4 bounds.  It lacks CoverageSearch's spatial-merge
  trick, so connected sets are discovered per result-set member.

Both baselines keep their per-round state *incrementally* across greedy
rounds, which changes no result but removes the quadratic rescans:

* Connectivity is monotone in the growing result set — once a candidate is
  connected to some member it stays connected forever.  SG therefore caches
  proven-connected candidates and only tests the remaining ones against the
  member added last round, dropping from ``O(k^2 * n)`` to ``O(k * n)`` exact
  distance computations.  SG+DITS likewise runs ``FindConnectSet`` only for
  the newest member and accumulates the union.
* Marginal gains run on the vectorized cell-set kernels
  (:func:`repro.utils.cellsets.difference_size` over sorted cell vectors)
  instead of rebuilding ``candidate.cells - covered`` frozensets each round.
* Each SG round's exact-distance scan is one batched
  :meth:`~repro.core.distance_engine.DistanceEngine.within_delta_many` call:
  all untested candidates are stacked and answered by a single δ-bounded
  KD-tree query over the newest member, instead of a per-candidate KD-tree
  build.  The predicate stays exact (no Lemma 4 bounds are consulted — SG
  remains the bound-free baseline).

Selections, scores and tie-breaks are bit-identical to the original
exhaustive implementations; ``tests/search/test_incremental_greedy.py``
differential-tests both baselines against reference re-implementations of
the per-round rescans on randomized corpora.
"""

from __future__ import annotations

from repro.core.dataset import DatasetNode
from repro.core.distance_engine import get_engine
from repro.core.errors import InvalidParameterError
from repro.core.problems import CoverageQuery, CoverageResult, ScoredDataset
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import find_connected_nodes
from repro.utils import cellsets

__all__ = ["StandardGreedy", "StandardGreedyWithDITS"]


class StandardGreedy:
    """SG: greedy CJSP with exact-distance connectivity scans."""

    name = "SG"

    def __init__(self, nodes: list[DatasetNode]) -> None:
        self._nodes = list(nodes)

    def search(self, request: CoverageQuery) -> CoverageResult:
        """Run greedy CJSP for ``request``."""
        return self.search_node(request.query, request.k, request.delta)

    def search_node(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Run greedy CJSP for ``query`` with parameters ``k`` and ``delta``."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if delta < 0:
            raise InvalidParameterError(f"delta must be non-negative, got {delta}")
        use_vector = cellsets.use_vector()
        covered: set[int] = set() if use_vector else set(query.cells)
        covered_array = query.cells_array if use_vector else None
        chosen_ids: set[str] = set()
        entries: list[ScoredDataset] = []
        # Candidates proven connected to the growing result set.  The result
        # set only grows, so membership here is permanent; candidates outside
        # it have already failed against every member except the newest one.
        connected_ids: set[str] = set()
        last_member = query

        for _ in range(k):
            # One batched δ-bounded scan of the not-yet-connected candidates
            # against the newest member replaces the per-candidate exact
            # distance computations (same memberships, in the same round).
            untested = [
                candidate
                for candidate in self._nodes
                if candidate.dataset_id not in chosen_ids
                and candidate.dataset_id not in connected_ids
            ]
            if untested:
                mask = get_engine().within_delta_many(last_member, untested, delta)
                connected_ids.update(
                    candidate.dataset_id
                    for candidate, ok in zip(untested, mask)
                    if ok
                )
            best_node: DatasetNode | None = None
            best_gain = 0
            for candidate in self._nodes:
                dataset_id = candidate.dataset_id
                if dataset_id in chosen_ids or dataset_id not in connected_ids:
                    continue
                if use_vector:
                    gain = cellsets.difference_size(candidate.cells_array, covered_array)
                else:
                    gain = len(candidate.cells - covered)
                if gain > best_gain or (
                    gain == best_gain
                    and gain > 0
                    and best_node is not None
                    and dataset_id < best_node.dataset_id
                ):
                    best_gain = gain
                    best_node = candidate
            if best_node is None or best_gain == 0:
                break
            chosen_ids.add(best_node.dataset_id)
            if use_vector:
                covered_array = cellsets.union(covered_array, best_node.cells_array)
            else:
                covered |= best_node.cells
            last_member = best_node
            entries.append(
                ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain))
            )

        total_coverage = int(covered_array.size) if use_vector else len(covered)
        return CoverageResult(
            entries=tuple(entries),
            total_coverage=total_coverage,
            query_coverage=len(query.cells),
        )


class StandardGreedyWithDITS:
    """SG+DITS: greedy CJSP using DITS-L to find connected candidates per member."""

    name = "SG+DITS"

    def __init__(self, index: DITSLocalIndex) -> None:
        self._index = index

    def search(self, request: CoverageQuery) -> CoverageResult:
        """Run greedy CJSP for ``request``."""
        return self.search_node(request.query, request.k, request.delta)

    def search_node(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Run greedy CJSP for ``query`` with parameters ``k`` and ``delta``."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if not self._index.is_built() or len(self._index) == 0:
            return CoverageResult(
                entries=(), total_coverage=len(query.cells), query_coverage=len(query.cells)
            )
        use_vector = cellsets.use_vector()
        covered: set[int] = set() if use_vector else set(query.cells)
        covered_array = query.cells_array if use_vector else None
        chosen_ids: set[str] = set()
        entries: list[ScoredDataset] = []
        # The tree and earlier members never change, so each member's
        # FindConnectSet runs exactly once; the candidate pool is the
        # accumulated union minus the datasets already chosen.
        candidates: dict[str, DatasetNode] = {}
        new_members: list[DatasetNode] = [query]

        for _ in range(k):
            for member in new_members:
                for candidate in find_connected_nodes(
                    self._index.root, member, delta, exclude=chosen_ids
                ):
                    candidates[candidate.dataset_id] = candidate
            new_members = []
            best_node: DatasetNode | None = None
            best_gain = 0
            for dataset_id in sorted(candidates):
                candidate = candidates[dataset_id]
                if use_vector:
                    gain = cellsets.difference_size(candidate.cells_array, covered_array)
                else:
                    gain = len(candidate.cells - covered)
                if gain > best_gain:
                    best_gain = gain
                    best_node = candidate
            if best_node is None or best_gain == 0:
                break
            chosen_ids.add(best_node.dataset_id)
            del candidates[best_node.dataset_id]
            if use_vector:
                covered_array = cellsets.union(covered_array, best_node.cells_array)
            else:
                covered |= best_node.cells
            new_members = [best_node]
            entries.append(
                ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain))
            )

        total_coverage = int(covered_array.size) if use_vector else len(covered)
        return CoverageResult(
            entries=tuple(entries),
            total_coverage=total_coverage,
            query_coverage=len(query.cells),
        )
