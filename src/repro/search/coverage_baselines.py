"""CJSP baseline algorithms: standard greedy with and without DITS.

Section VII-D compares CoverageSearch against two baselines:

* **SG (StandardGreedy)** — the textbook greedy algorithm for maximum
  coverage, extended with the connectivity constraint: every iteration scans
  *all* datasets in the source, keeps those directly connected to any member
  of the current result set (query included), and adds the one with the
  largest marginal gain.  Connectivity checks use exact cell-set distances,
  so each round costs ``O(|R| * n)`` distance computations.
* **SG+DITS (StandardGreedyWithDITS)** — the same greedy loop, but each
  round's connected-candidate discovery runs ``FindConnectSet`` once per
  result-set member over DITS-L, exploiting the Lemma 4 bounds.  It lacks
  CoverageSearch's spatial-merge trick, so the number of tree searches grows
  with the result size.
"""

from __future__ import annotations

from repro.core.dataset import DatasetNode
from repro.core.distance import exact_node_distance
from repro.core.errors import InvalidParameterError
from repro.core.problems import CoverageQuery, CoverageResult, ScoredDataset
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import find_connected_nodes

__all__ = ["StandardGreedy", "StandardGreedyWithDITS"]


class StandardGreedy:
    """SG: greedy CJSP with exhaustive per-round connectivity scans."""

    name = "SG"

    def __init__(self, nodes: list[DatasetNode]) -> None:
        self._nodes = list(nodes)

    def search(self, request: CoverageQuery) -> CoverageResult:
        """Run greedy CJSP for ``request``."""
        return self.search_node(request.query, request.k, request.delta)

    def search_node(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Run greedy CJSP for ``query`` with parameters ``k`` and ``delta``."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        result_nodes: list[DatasetNode] = [query]
        chosen_ids: set[str] = set()
        covered: set[int] = set(query.cells)
        entries: list[ScoredDataset] = []

        for _ in range(k):
            best_node: DatasetNode | None = None
            best_gain = 0
            for candidate in self._nodes:
                if candidate.dataset_id in chosen_ids:
                    continue
                if not self._connected_to_result(candidate, result_nodes, delta):
                    continue
                gain = len(candidate.cells - covered)
                if gain > best_gain or (
                    gain == best_gain
                    and gain > 0
                    and best_node is not None
                    and candidate.dataset_id < best_node.dataset_id
                ):
                    best_gain = gain
                    best_node = candidate
            if best_node is None or best_gain == 0:
                break
            chosen_ids.add(best_node.dataset_id)
            covered |= best_node.cells
            result_nodes.append(best_node)
            entries.append(
                ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain))
            )

        return CoverageResult(
            entries=tuple(entries),
            total_coverage=len(covered),
            query_coverage=len(query.cells),
        )

    @staticmethod
    def _connected_to_result(
        candidate: DatasetNode, result_nodes: list[DatasetNode], delta: float
    ) -> bool:
        """Exact connectivity test of the candidate against every result member."""
        return any(
            exact_node_distance(candidate, member) <= delta for member in result_nodes
        )


class StandardGreedyWithDITS:
    """SG+DITS: greedy CJSP using DITS-L to find connected candidates per member."""

    name = "SG+DITS"

    def __init__(self, index: DITSLocalIndex) -> None:
        self._index = index

    def search(self, request: CoverageQuery) -> CoverageResult:
        """Run greedy CJSP for ``request``."""
        return self.search_node(request.query, request.k, request.delta)

    def search_node(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Run greedy CJSP for ``query`` with parameters ``k`` and ``delta``."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if not self._index.is_built() or len(self._index) == 0:
            return CoverageResult(
                entries=(), total_coverage=len(query.cells), query_coverage=len(query.cells)
            )
        result_nodes: list[DatasetNode] = [query]
        chosen_ids: set[str] = set()
        covered: set[int] = set(query.cells)
        entries: list[ScoredDataset] = []

        for _ in range(k):
            # One FindConnectSet per member of the current result set (no
            # spatial merge); candidates are deduplicated by dataset ID.
            candidates: dict[str, DatasetNode] = {}
            for member in result_nodes:
                for candidate in find_connected_nodes(
                    self._index.root, member, delta, exclude=chosen_ids
                ):
                    candidates[candidate.dataset_id] = candidate
            best_node: DatasetNode | None = None
            best_gain = 0
            for dataset_id in sorted(candidates):
                candidate = candidates[dataset_id]
                gain = len(candidate.cells - covered)
                if gain > best_gain:
                    best_gain = gain
                    best_node = candidate
            if best_node is None or best_gain == 0:
                break
            chosen_ids.add(best_node.dataset_id)
            covered |= best_node.cells
            result_nodes.append(best_node)
            entries.append(
                ScoredDataset(dataset_id=best_node.dataset_id, score=float(best_gain))
            )

        return CoverageResult(
            entries=tuple(entries),
            total_coverage=len(covered),
            query_coverage=len(query.cells),
        )
