"""OJSP baseline algorithms built on the four comparison indexes.

Section VII-C describes how each baseline answers the overlap joinable
search:

* **QuadTreeOverlap** — find every (cell, dataset) occurrence inside the
  query MBR via the quadtree, keep occurrences whose cell belongs to the
  query, count per dataset, then rank.
* **RTreeOverlap** — find every dataset whose MBR intersects the query MBR
  via the R-tree, compute its exact cell intersection, then rank.
* **STS3Overlap** — scan the posting list of every query cell in the plain
  inverted index, accumulate per-dataset counts, then rank (no pruning).
* **JosieOverlap** — delegate to the Josie index's prefix-filtered top-k
  search.
* **BruteForceOverlap** — score every dataset; the ground truth used by the
  test suite.

All baselines return :class:`~repro.core.problems.OverlapResult` so the
benchmark harness and the correctness tests can treat every method
uniformly.
"""

from __future__ import annotations

from repro.core.dataset import DatasetNode
from repro.core.problems import OverlapQuery, OverlapResult, brute_force_overlap
from repro.index.inverted import STS3Index
from repro.index.josie import JosieIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex
from repro.utils.heaps import BoundedTopK

__all__ = [
    "QuadTreeOverlap",
    "RTreeOverlap",
    "STS3Overlap",
    "JosieOverlap",
    "BruteForceOverlap",
]


class QuadTreeOverlap:
    """OJSP over the QuadTree baseline index."""

    name = "QuadTree"

    def __init__(self, index: QuadTreeIndex) -> None:
        self._index = index

    def search(self, request: OverlapQuery) -> OverlapResult:
        """Answer ``request`` by counting query-cell occurrences inside the query MBR."""
        return self.search_node(request.query, request.k)

    def search_node(self, query: DatasetNode, k: int) -> OverlapResult:
        """Top-k overlap for ``query``."""
        query_cells = query.cells
        counts: dict[str, int] = {}
        seen: set[tuple[int, str]] = set()
        for cell_id, dataset_id in self._index.occurrences_in(query.rect):
            if cell_id not in query_cells:
                continue
            key = (cell_id, dataset_id)
            if key in seen:
                continue
            seen.add(key)
            counts[dataset_id] = counts.get(dataset_id, 0) + 1
        ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
        return OverlapResult.from_pairs(
            (dataset_id, float(score)) for dataset_id, score in ranked[:k]
        )


class RTreeOverlap:
    """OJSP over the R-tree baseline index."""

    name = "Rtree"

    def __init__(self, index: RTreeIndex) -> None:
        self._index = index

    def search(self, request: OverlapQuery) -> OverlapResult:
        """Answer ``request`` via MBR filtering plus exact verification."""
        return self.search_node(request.query, request.k)

    def search_node(self, query: DatasetNode, k: int) -> OverlapResult:
        """Top-k overlap for ``query``."""
        heap: BoundedTopK[str] = BoundedTopK(k)
        query_cells = query.cells
        for node in self._index.intersecting(query.rect):
            overlap = len(node.cells & query_cells)
            heap.push(float(overlap), node.dataset_id)
        return OverlapResult.from_pairs(
            (dataset_id, score) for score, dataset_id in heap.items()
        )


class STS3Overlap:
    """OJSP over the plain STS3 inverted index (full posting-list scan)."""

    name = "STS3"

    def __init__(self, index: STS3Index) -> None:
        self._index = index

    def search(self, request: OverlapQuery) -> OverlapResult:
        """Answer ``request`` by scanning the posting lists of all query cells."""
        return self.search_node(request.query, request.k)

    def search_node(self, query: DatasetNode, k: int) -> OverlapResult:
        """Top-k overlap for ``query``."""
        counts = self._index.overlap_counts(query.cells)
        ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
        return OverlapResult.from_pairs(
            (dataset_id, float(score)) for dataset_id, score in ranked[:k]
        )


class JosieOverlap:
    """OJSP via the Josie sorted inverted index with prefix filtering."""

    name = "Josie"

    def __init__(self, index: JosieIndex) -> None:
        self._index = index

    def search(self, request: OverlapQuery) -> OverlapResult:
        """Answer ``request`` with Josie's prefix-filtered top-k search."""
        return self.search_node(request.query, request.k)

    def search_node(self, query: DatasetNode, k: int) -> OverlapResult:
        """Top-k overlap for ``query``."""
        ranked = self._index.top_k_overlap(query.cells, k)
        return OverlapResult.from_pairs(
            (dataset_id, float(score)) for dataset_id, score in ranked
        )


class BruteForceOverlap:
    """OJSP by exhaustively scoring every dataset (test ground truth)."""

    name = "BruteForce"

    def __init__(self, nodes: list[DatasetNode]) -> None:
        self._nodes = list(nodes)

    def search(self, request: OverlapQuery) -> OverlapResult:
        """Answer ``request`` by scoring all datasets."""
        return self.search_node(request.query, request.k)

    def search_node(self, query: DatasetNode, k: int) -> OverlapResult:
        """Top-k overlap for ``query``."""
        return brute_force_overlap(query, self._nodes, k)
