"""OverlapSearch: the exact OJSP algorithm over DITS-L (Algorithm 2).

The algorithm has a filter phase and a verification phase:

1. **Filter (BranchAndBound)** — recurse down the DITS-L tree, pruning every
   subtree whose MBR does not intersect the query MBR (datasets with disjoint
   MBRs cannot share a cell).  For each surviving leaf, compute the Lemma 2/3
   lower and upper intersection bounds from the leaf's inverted index; a leaf
   whose upper bound cannot beat the lower bounds of ``k`` already-collected
   leaves is discarded in batch.

2. **Verify** — candidate leaves are drained from a max-heap ordered by upper
   bound, so verification stops at the first leaf that provably cannot beat
   the current k-th best overlap (the incremental verification threshold).
   Within a leaf, exact per-dataset overlaps are accumulated from the
   counted posting lists of the shared query cells and pushed into a
   *canonical* bounded top-``k`` result queue that breaks score ties by
   dataset ID (smallest first) — both for which tied dataset is retained at
   the ``k``-th position and for the final ordering.

The result is exact, and since every dataset tied with the k-th best score
is provably verified (its leaf's upper bound is at least that score), the
canonical tie-breaking makes the answer a pure function of the indexed
dataset set: identical across cell-set backends *and* across tree shapes, so
an incrementally mutated (and rebalanced) DITS-L returns bit-identical
results to a freshly rebuilt one.  When fewer than ``k`` datasets overlap
the query but at least one does, the remainder is filled with zero-score
datasets in ascending-ID order (the seed filled from candidate leaves in
scan order, which leaked the tree shape into the answer).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.dataset import DatasetNode
from repro.core.problems import OverlapQuery, OverlapResult
from repro.index.dits import DITSLocalIndex, InternalNode, LeafNode
from repro.search.bounds import leaf_intersection_bounds
from repro.utils.heaps import CanonicalTopK

__all__ = ["OverlapSearch", "OverlapSearchStats"]


@dataclass(slots=True)
class OverlapSearchStats:
    """Counters describing how much work one overlap search performed."""

    visited_internal: int = 0
    visited_leaves: int = 0
    pruned_by_mbr: int = 0
    pruned_by_bounds: int = 0
    candidate_leaves: int = 0
    verified_datasets: int = 0
    #: Stable left-to-right ordinals (see ``DITSLocalIndex.leaf_ordinals``)
    #: of the candidate leaves that survived filtering, sorted ascending.
    candidate_leaf_ids: list[int] = field(default_factory=list)


@dataclass(slots=True)
class _CandidateLeaf:
    """A leaf that survived filtering, together with its bounds."""

    leaf: LeafNode
    lower: int
    upper: int


class OverlapSearch:
    """Exact top-k overlap joinable search over a :class:`DITSLocalIndex`."""

    name = "OverlapSearch"

    def __init__(self, index: DITSLocalIndex) -> None:
        self._index = index
        self.last_stats = OverlapSearchStats()

    @property
    def index(self) -> DITSLocalIndex:
        """The DITS-L index this search runs against."""
        return self._index

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def search(self, request: OverlapQuery) -> OverlapResult:
        """Run OJSP for ``request`` and return the top-k result."""
        return self.search_node(request.query, request.k)

    def search_node(self, query: DatasetNode, k: int) -> OverlapResult:  # parity-critical
        """Run OJSP for ``query`` with result size ``k``."""
        stats = OverlapSearchStats()
        self.last_stats = stats
        if not self._index.is_built() or len(self._index) == 0:
            return OverlapResult(entries=())

        candidates = self._filter_leaves(query, k, stats)
        results = self._verify(query, k, candidates, stats)
        return results

    # ------------------------------------------------------------------ #
    # Phase 1: branch-and-bound filtering
    # ------------------------------------------------------------------ #
    def _filter_leaves(
        self, query: DatasetNode, k: int, stats: OverlapSearchStats
    ) -> list[tuple[int, int, _CandidateLeaf]]:
        """Surviving candidate leaves as a ``(-upper, seq, candidate)`` heap."""
        query_rect = query.rect
        query_cells = query.cells
        candidates: list[_CandidateLeaf] = []

        stack = [self._index.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query_rect):
                stats.pruned_by_mbr += 1
                continue
            if node.is_leaf():
                assert isinstance(node, LeafNode)
                stats.visited_leaves += 1
                lower, upper = leaf_intersection_bounds(node, query_cells)
                if upper == 0:
                    stats.pruned_by_bounds += 1
                    continue
                candidates.append(_CandidateLeaf(leaf=node, lower=lower, upper=upper))
            else:
                assert isinstance(node, InternalNode)
                stats.visited_internal += 1
                stack.append(node.left)
                stack.append(node.right)

        # Batch pruning: keep candidate leaves whose upper bound can still
        # beat the k-th best lower bound achievable from other leaves.  Each
        # leaf can contribute up to ``len(leaf.entries)`` results with
        # overlap at least ``lower``.
        threshold = _kth_lower_bound(candidates, k)
        surviving = []
        for candidate in candidates:
            if candidate.upper < threshold:
                stats.pruned_by_bounds += 1
                continue
            surviving.append(candidate)
        stats.candidate_leaves = len(surviving)
        if surviving:
            ordinals = self._index.leaf_ordinals()
            stats.candidate_leaf_ids = sorted(
                ordinals[id(candidate.leaf)] for candidate in surviving
            )
        # Max-heap keyed by upper bound; the sequence number keeps ties in
        # discovery order, matching the stable sort the heap replaces, while
        # leaves pruned by the verification cutoff are never sorted at all.
        heap = [(-candidate.upper, seq, candidate) for seq, candidate in enumerate(surviving)]
        heapq.heapify(heap)
        return heap

    # ------------------------------------------------------------------ #
    # Phase 2: verification via leaf posting lists / merge kernels
    # ------------------------------------------------------------------ #
    def _verify(  # parity-critical
        self,
        query: DatasetNode,
        k: int,
        candidates: list[tuple[int, int, _CandidateLeaf]],
        stats: OverlapSearchStats,
    ) -> OverlapResult:
        heap: CanonicalTopK[str] = CanonicalTopK(k)
        query_cells = query.cells
        while candidates:
            _, _, candidate = heapq.heappop(candidates)
            # Candidates pop in decreasing upper-bound order, so once the
            # current leaf's upper bound cannot beat the established k-th
            # overlap, no later leaf can either.  (A leaf whose upper bound
            # *equals* the k-th score is still verified, so every dataset
            # tied at the boundary reaches the canonical heap and the tie is
            # settled by dataset ID, not by tree shape.)
            if heap.is_full() and candidate.upper < heap.kth_score():
                stats.pruned_by_bounds += 1
                break
            overlaps = self._leaf_overlaps(candidate.leaf, query_cells)
            stats.verified_datasets += len(candidate.leaf.entries)
            for dataset_id, overlap in overlaps.items():
                heap.push(float(overlap), dataset_id)
        # Fewer than k datasets overlap the query (the loop verified every
        # positive-overlap dataset, or the heap would be full): fill with
        # zero-score datasets in ascending-ID order, mirroring lines 6-7 of
        # Algorithm 2 but independent of the leaf layout.  A query that
        # overlaps nothing keeps returning an empty result.  ``nsmallest``
        # over the k smallest IDs (at most ``len(heap)`` of which are
        # already retained) finds the fillers in one O(n) scan instead of
        # sorting the whole corpus id list per query.
        if heap and not heap.is_full():
            smallest_ids = heapq.nsmallest(
                k, (entry.dataset_id for entry in self._index.nodes())
            )
            for dataset_id in smallest_ids:
                if dataset_id not in heap:
                    heap.push(0.0, dataset_id)
                    if heap.is_full():
                        break
        return OverlapResult.from_pairs((dataset_id, score) for score, dataset_id in heap.items())

    @staticmethod
    def _leaf_overlaps(leaf: LeafNode, query_cells: frozenset[int]) -> dict[str, int]:  # parity-critical
        """Exact per-dataset intersection counts computed from the posting lists.

        One C-level set intersection finds the cells the query shares with the
        leaf; only those cells' posting lists are scanned.  Counts are keyed
        in scan order, preserving the seed's tie-breaking behaviour.
        """
        counts: dict[str, int] = {}
        inverted = leaf.inverted
        # Iteration order over the shared cells is arbitrary, but each
        # dataset's count is a commutative sum and consumers rank through the
        # order-insensitive CanonicalTopK, so no ordering escapes this dict.
        for cell in query_cells & inverted.keys():  # repro-lint: disable=REPRO301
            for dataset_id in inverted[cell]:
                counts[dataset_id] = counts.get(dataset_id, 0) + 1
        return counts

def _kth_lower_bound(candidates: list[_CandidateLeaf], k: int) -> int:
    """The k-th largest lower bound achievable across candidate leaves.

    Every candidate leaf guarantees ``len(leaf.entries)`` datasets with
    overlap at least ``leaf.lower``.  Since every leaf holds at least one
    dataset, the k-th largest guaranteed overlap is found within the ``k``
    candidates with the largest lower bounds, so ``heapq.nlargest`` over the
    ``(lower, count)`` pairs replaces the seed's O(n·f) materialization of
    one list element per guaranteed dataset.
    """
    if not candidates:
        return 0
    if sum(len(candidate.leaf.entries) for candidate in candidates) < k:
        return 0
    remaining = k
    best_pairs = heapq.nlargest(
        min(k, len(candidates)),
        ((candidate.lower, len(candidate.leaf.entries)) for candidate in candidates),
    )
    for lower, count in best_pairs:
        remaining -= count
        if remaining <= 0:
            return lower
    return 0
