"""Command-line interface for the joinable spatial dataset search library.

The CLI covers the workflow a data engineer would actually run against a
corpus on disk:

``python -m repro.cli generate``
    materialise one of the synthetic source profiles into a directory of CSV
    files (one file per dataset), so the other commands have something real
    to chew on;

``python -m repro.cli overlap``
    load a corpus directory, build DITS-L and run an overlap joinable search
    (OJSP) for a query CSV;

``python -m repro.cli coverage``
    the coverage joinable search (CJSP) counterpart, with a connectivity
    threshold in cells;

``python -m repro.cli stats``
    corpus statistics: dataset count, point count, cell coverage at a chosen
    resolution and DITS-L construction time.

``python -m repro.cli federate``
    multi-source mode: partition the corpus across several simulated data
    sources behind a data center with a sharded DITS-G global index, run an
    OJSP or CJSP query end to end and report the per-source results,
    global-index shard statistics and simulated communication cost.

``python -m repro.cli lint``
    run the :mod:`repro.analysis` static checkers (lock discipline, unsafe
    caches, parity purity, API drift) over the installed package tree;
    ``--strict`` additionally fails on stale suppression comments.  The CI
    gate runs ``lint --strict``.

Every command prints a small aligned table to stdout and returns a process
exit code of 0 on success, which makes the CLI easy to wire into shell
pipelines and CI smoke tests.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.bench.reporting import format_table
from repro.core.dataset import SpatialDataset
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery, OverlapQuery
from repro.data.loaders import load_source_csv, save_source_csv
from repro.data.sources import SOURCE_PROFILES, build_source_datasets
from repro.distributed.framework import MultiSourceFramework
from repro.index.dits import DITSLocalIndex
from repro.index.dits_global_sharded import ShardPolicy
from repro.index.stats import global_index_stats, local_index_stats
from repro.search.coverage import CoverageSearch
from repro.search.overlap import OverlapSearch

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joinable search over spatial datasets (DITS reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="materialise a synthetic source profile into CSV files"
    )
    generate.add_argument("--profile", choices=sorted(SOURCE_PROFILES), default="Transit")
    generate.add_argument("--scale", type=float, default=0.02,
                          help="fraction of the paper's dataset count (default 0.02)")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True, help="output directory")

    for name, help_text in (
        ("overlap", "overlap joinable search (OJSP)"),
        ("coverage", "coverage joinable search (CJSP)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--corpus", type=Path, required=True,
                         help="directory of dataset CSV files (columns x,y)")
        sub.add_argument("--query", type=Path, required=True, help="query CSV file")
        sub.add_argument("--theta", type=int, default=12, help="grid resolution (default 12)")
        sub.add_argument("--k", type=int, default=5, help="number of results (default 5)")
        sub.add_argument("--leaf-capacity", type=int, default=30)
        if name == "coverage":
            sub.add_argument("--delta", type=float, default=10.0,
                             help="connectivity threshold in cells (default 10)")

    stats = subparsers.add_parser("stats", help="corpus statistics and index build time")
    stats.add_argument("--corpus", type=Path, required=True)
    stats.add_argument("--theta", type=int, default=12)
    stats.add_argument("--leaf-capacity", type=int, default=30)

    federate = subparsers.add_parser(
        "federate", help="multi-source search through a sharded DITS-G data center"
    )
    federate.add_argument("--corpus", type=Path, required=True,
                          help="directory of dataset CSV files (columns x,y)")
    federate.add_argument("--query", type=Path, required=True, help="query CSV file")
    federate.add_argument("--sources", type=int, default=3,
                          help="number of simulated data sources the corpus is split across")
    federate.add_argument("--shards", type=int, default=4,
                          help="DITS-G shard count at the data center (default 4)")
    federate.add_argument("--theta", type=int, default=12)
    federate.add_argument("--k", type=int, default=5)
    federate.add_argument("--leaf-capacity", type=int, default=30)
    federate.add_argument("--mode", choices=("overlap", "coverage"), default="overlap")
    federate.add_argument("--delta", type=float, default=10.0,
                          help="CJSP connectivity threshold in cells (coverage mode)")

    lint = subparsers.add_parser(
        "lint", help="run the repro.analysis static checkers over the package"
    )
    lint.add_argument(
        "--root", type=Path, default=None,
        help="package root to analyse (default: the installed repro package)",
    )
    lint.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="only report codes with this prefix (repeatable, e.g. REPRO1)",
    )
    lint.add_argument("--format", choices=("table", "json"), default="table")
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on suppression comments that matched no finding",
    )

    return parser


def _load_corpus(directory: Path) -> list[SpatialDataset]:
    datasets = load_source_csv(directory)
    if not datasets:
        raise SystemExit(f"no CSV datasets found in {directory}")
    return datasets


def _load_query(path: Path) -> SpatialDataset:
    import csv

    coordinates = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            coordinates.append((float(row["x"]), float(row["y"])))
    if not coordinates:
        raise SystemExit(f"query file {path} has no points")
    return SpatialDataset.from_coordinates(path.stem, coordinates)


def _build_index(datasets: list[SpatialDataset], grid: Grid, leaf_capacity: int) -> DITSLocalIndex:
    index = DITSLocalIndex(leaf_capacity=leaf_capacity)
    index.build([dataset.to_node(grid) for dataset in datasets])
    return index


def _command_generate(args: argparse.Namespace) -> int:
    datasets = build_source_datasets(args.profile, scale=args.scale, seed=args.seed)
    written = save_source_csv(datasets, args.out)
    print(f"wrote {len(written)} datasets from profile {args.profile!r} to {args.out}")
    return 0


def _command_overlap(args: argparse.Namespace) -> int:
    grid = Grid(theta=args.theta)
    corpus = _load_corpus(args.corpus)
    index = _build_index(corpus, grid, args.leaf_capacity)
    query = _load_query(args.query).to_node(grid)
    result = OverlapSearch(index).search(OverlapQuery(query=query, k=args.k))
    rows = [
        {"rank": rank + 1, "dataset": entry.dataset_id, "overlap_cells": int(entry.score)}
        for rank, entry in enumerate(result)
    ]
    print(format_table(rows, title=f"OJSP top-{args.k} (theta={args.theta})"))
    return 0


def _command_coverage(args: argparse.Namespace) -> int:
    grid = Grid(theta=args.theta)
    corpus = _load_corpus(args.corpus)
    index = _build_index(corpus, grid, args.leaf_capacity)
    query = _load_query(args.query).to_node(grid)
    result = CoverageSearch(index).search(
        CoverageQuery(query=query, k=args.k, delta=args.delta)
    )
    rows = [
        {"pick": rank + 1, "dataset": entry.dataset_id, "marginal_gain": int(entry.score)}
        for rank, entry in enumerate(result)
    ]
    print(format_table(rows, title=f"CJSP selection (k={args.k}, delta={args.delta})"))
    print(
        f"coverage: {result.query_coverage} cells (query) -> {result.total_coverage} cells (with selection)"
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    grid = Grid(theta=args.theta)
    corpus = _load_corpus(args.corpus)
    start = time.perf_counter()
    index = _build_index(corpus, grid, args.leaf_capacity)
    build_ms = (time.perf_counter() - start) * 1000.0
    total_points = sum(len(dataset) for dataset in corpus)
    total_cells = sum(node.coverage for node in index.nodes())
    rows = [
        {
            "datasets": len(corpus),
            "points": total_points,
            "cells@theta": total_cells,
            "tree_height": index.height(),
            "build_ms": build_ms,
        }
    ]
    print(format_table(rows, title=f"corpus statistics ({args.corpus})"))
    index_stats = local_index_stats(index)
    print(
        format_table(
            [
                {
                    "tree_nodes": index_stats["tree_nodes"],
                    "max_depth": index_stats["max_depth"],
                    "rebalances": index_stats["rebalance_count"],
                    "leaf_merges": index_stats["leaf_merges"],
                    "deferred_refits": index_stats["deferred_refits"],
                    "mbr_slack": f"{index_stats['mbr_slack']:.1f}",
                }
            ],
            title="DITS-L local index",
        )
    )
    return 0


def _command_federate(args: argparse.Namespace) -> int:
    if args.sources < 1:
        raise SystemExit(f"--sources must be at least 1, got {args.sources}")
    if args.shards < 1:
        raise SystemExit(f"--shards must be at least 1, got {args.shards}")
    corpus = _load_corpus(args.corpus)
    framework = MultiSourceFramework(
        theta=args.theta,
        leaf_capacity=args.leaf_capacity,
        shard_policy=ShardPolicy(shard_count=args.shards),
    )
    try:
        source_count = min(args.sources, len(corpus))
        for portal in range(source_count):
            framework.add_source(f"src-{portal}", corpus[portal::source_count])
        query = framework.query_from_dataset(_load_query(args.query))

        if args.mode == "overlap":
            result = framework.overlap_search(query, args.k)
            rows = [
                {
                    "rank": rank + 1,
                    "source": entry.source_id,
                    "dataset": entry.dataset_id,
                    "overlap_cells": int(entry.score),
                }
                for rank, entry in enumerate(result)
            ]
            title = f"federated OJSP top-{args.k} ({source_count} sources)"
        else:
            result = framework.coverage_search(query, args.k, args.delta)
            rows = [
                {
                    "pick": rank + 1,
                    "source": entry.source_id,
                    "dataset": entry.dataset_id,
                    "marginal_gain": int(entry.score),
                }
                for rank, entry in enumerate(result)
            ]
            title = f"federated CJSP selection (k={args.k}, delta={args.delta})"
        print(format_table(rows, title=title))

        index_stats = global_index_stats(framework.center.global_index)
        print(
            format_table(
                [
                    {
                        "sources": index_stats["sources"],
                        "shards": index_stats.get("shard_count", 1),
                        "shard_sizes": "/".join(
                            str(size) for size in index_stats.get("shard_sizes", [])
                        ),
                        "tree_nodes": index_stats["tree_nodes"],
                        "rebuilds": index_stats["rebuilds"],
                    }
                ],
                title="DITS-G global index",
            )
        )
        comm = framework.communication_stats()
        print(
            f"communication: {comm.messages_sent} messages, {comm.total_bytes} bytes, "
            f"{framework.transmission_time_ms():.2f} ms simulated transmission"
        )
    finally:
        framework.close()
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis import AnalysisEngine

    if args.root is not None:
        engine = AnalysisEngine(args.root, select=args.select)
    else:
        engine = AnalysisEngine.for_package(select=args.select)
    report = engine.run()

    stale_failure = args.strict and bool(report.unused_suppressions)
    if args.format == "json":
        document = report.as_dict()
        document["strict"] = args.strict
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        if report.findings:
            rows = [
                {
                    "code": finding.code,
                    "location": finding.location(),
                    "symbol": finding.symbol,
                    "message": finding.message,
                }
                for finding in report.findings
            ]
            print(format_table(rows, title=f"{len(report.findings)} finding(s)"))
        for path, line, code in report.unused_suppressions:
            print(f"stale suppression: {path}:{line} disables {code} but nothing fires")
        print(
            f"lint: {report.modules_scanned} modules, "
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{len(report.unused_suppressions)} stale suppression(s)"
        )
    if report.findings or stale_failure:
        return 1
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "overlap": _command_overlap,
    "coverage": _command_coverage,
    "stats": _command_stats,
    "federate": _command_federate,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
