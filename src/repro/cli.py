"""Command-line interface for the joinable spatial dataset search library.

The CLI covers the workflow a data engineer would actually run against a
corpus on disk:

``python -m repro.cli generate``
    materialise one of the synthetic source profiles into a directory of CSV
    files (one file per dataset), so the other commands have something real
    to chew on;

``python -m repro.cli overlap``
    load a corpus directory, build DITS-L and run an overlap joinable search
    (OJSP) for a query CSV;

``python -m repro.cli coverage``
    the coverage joinable search (CJSP) counterpart, with a connectivity
    threshold in cells;

``python -m repro.cli stats``
    corpus statistics: dataset count, point count, cell coverage at a chosen
    resolution and DITS-L construction time.

Every command prints a small aligned table to stdout and returns a process
exit code of 0 on success, which makes the CLI easy to wire into shell
pipelines and CI smoke tests.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.bench.reporting import format_table
from repro.core.dataset import SpatialDataset
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery, OverlapQuery
from repro.data.loaders import load_source_csv, save_source_csv
from repro.data.sources import SOURCE_PROFILES, build_source_datasets
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch
from repro.search.overlap import OverlapSearch

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joinable search over spatial datasets (DITS reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="materialise a synthetic source profile into CSV files"
    )
    generate.add_argument("--profile", choices=sorted(SOURCE_PROFILES), default="Transit")
    generate.add_argument("--scale", type=float, default=0.02,
                          help="fraction of the paper's dataset count (default 0.02)")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True, help="output directory")

    for name, help_text in (
        ("overlap", "overlap joinable search (OJSP)"),
        ("coverage", "coverage joinable search (CJSP)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--corpus", type=Path, required=True,
                         help="directory of dataset CSV files (columns x,y)")
        sub.add_argument("--query", type=Path, required=True, help="query CSV file")
        sub.add_argument("--theta", type=int, default=12, help="grid resolution (default 12)")
        sub.add_argument("--k", type=int, default=5, help="number of results (default 5)")
        sub.add_argument("--leaf-capacity", type=int, default=30)
        if name == "coverage":
            sub.add_argument("--delta", type=float, default=10.0,
                             help="connectivity threshold in cells (default 10)")

    stats = subparsers.add_parser("stats", help="corpus statistics and index build time")
    stats.add_argument("--corpus", type=Path, required=True)
    stats.add_argument("--theta", type=int, default=12)
    stats.add_argument("--leaf-capacity", type=int, default=30)

    return parser


def _load_corpus(directory: Path) -> list[SpatialDataset]:
    datasets = load_source_csv(directory)
    if not datasets:
        raise SystemExit(f"no CSV datasets found in {directory}")
    return datasets


def _load_query(path: Path) -> SpatialDataset:
    import csv

    coordinates = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            coordinates.append((float(row["x"]), float(row["y"])))
    if not coordinates:
        raise SystemExit(f"query file {path} has no points")
    return SpatialDataset.from_coordinates(path.stem, coordinates)


def _build_index(datasets: list[SpatialDataset], grid: Grid, leaf_capacity: int) -> DITSLocalIndex:
    index = DITSLocalIndex(leaf_capacity=leaf_capacity)
    index.build([dataset.to_node(grid) for dataset in datasets])
    return index


def _command_generate(args: argparse.Namespace) -> int:
    datasets = build_source_datasets(args.profile, scale=args.scale, seed=args.seed)
    written = save_source_csv(datasets, args.out)
    print(f"wrote {len(written)} datasets from profile {args.profile!r} to {args.out}")
    return 0


def _command_overlap(args: argparse.Namespace) -> int:
    grid = Grid(theta=args.theta)
    corpus = _load_corpus(args.corpus)
    index = _build_index(corpus, grid, args.leaf_capacity)
    query = _load_query(args.query).to_node(grid)
    result = OverlapSearch(index).search(OverlapQuery(query=query, k=args.k))
    rows = [
        {"rank": rank + 1, "dataset": entry.dataset_id, "overlap_cells": int(entry.score)}
        for rank, entry in enumerate(result)
    ]
    print(format_table(rows, title=f"OJSP top-{args.k} (theta={args.theta})"))
    return 0


def _command_coverage(args: argparse.Namespace) -> int:
    grid = Grid(theta=args.theta)
    corpus = _load_corpus(args.corpus)
    index = _build_index(corpus, grid, args.leaf_capacity)
    query = _load_query(args.query).to_node(grid)
    result = CoverageSearch(index).search(
        CoverageQuery(query=query, k=args.k, delta=args.delta)
    )
    rows = [
        {"pick": rank + 1, "dataset": entry.dataset_id, "marginal_gain": int(entry.score)}
        for rank, entry in enumerate(result)
    ]
    print(format_table(rows, title=f"CJSP selection (k={args.k}, delta={args.delta})"))
    print(
        f"coverage: {result.query_coverage} cells (query) -> {result.total_coverage} cells (with selection)"
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    grid = Grid(theta=args.theta)
    corpus = _load_corpus(args.corpus)
    start = time.perf_counter()
    index = _build_index(corpus, grid, args.leaf_capacity)
    build_ms = (time.perf_counter() - start) * 1000.0
    total_points = sum(len(dataset) for dataset in corpus)
    total_cells = sum(node.coverage for node in index.nodes())
    rows = [
        {
            "datasets": len(corpus),
            "points": total_points,
            "cells@theta": total_cells,
            "tree_height": index.height(),
            "build_ms": build_ms,
        }
    ]
    print(format_table(rows, title=f"corpus statistics ({args.corpus})"))
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "overlap": _command_overlap,
    "coverage": _command_coverage,
    "stats": _command_stats,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
