"""Synthetic profiles of the paper's five data sources (Table I).

Each :class:`SourceProfile` captures the *shape* of one real portal — its
coordinate extent, number of datasets, average dataset size and mixture of
dataset shapes — so the benchmarks can reproduce the relative differences
between sources (a dense regional portal like Transit vs. a sparse worldwide
one like BTAA) without the multi-gigabyte downloads.  ``scale`` shrinks the
dataset counts uniformly; ``scale=1.0`` matches the paper's counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.geometry import BoundingBox
from repro.core.dataset import SpatialDataset
from repro.data.generators import DatasetGenerator

__all__ = ["SourceProfile", "SOURCE_PROFILES", "build_source_datasets", "build_all_sources"]


@dataclass(frozen=True, slots=True)
class SourceProfile:
    """Statistical profile of one data source from Table I."""

    name: str
    region: BoundingBox
    dataset_count: int
    mean_dataset_size: int
    route_share: float
    cluster_share: float
    description: str

    def generator(self) -> DatasetGenerator:
        """The dataset generator matching this profile."""
        return DatasetGenerator(
            region=self.region,
            route_share=self.route_share,
            cluster_share=self.cluster_share,
            mean_size=self.mean_dataset_size,
        )


#: The five source profiles mirroring Table I of the paper.  Coordinate
#: ranges follow the table; dataset counts are the paper's counts and are
#: scaled down by ``build_source_datasets``'s ``scale`` argument.
SOURCE_PROFILES: dict[str, SourceProfile] = {
    "Baidu": SourceProfile(
        name="Baidu",
        region=BoundingBox(87.52, 19.98, 127.15, 46.35),
        dataset_count=6581,
        mean_dataset_size=560,
        route_share=0.35,
        cluster_share=0.5,
        description="POI and industry layers for 28 Chinese cities",
    ),
    "BTAA": SourceProfile(
        name="BTAA",
        region=BoundingBox(-179.77, -87.70, 179.99, 71.40),
        dataset_count=3204,
        mean_dataset_size=3000,
        route_share=0.2,
        cluster_share=0.6,
        description="Big Ten Academic Alliance geoportal (midwestern US and beyond)",
    ),
    "NYU": SourceProfile(
        name="NYU",
        region=BoundingBox(-138.00, -74.01, 56.39, 83.09),
        dataset_count=1093,
        mean_dataset_size=1400,
        route_share=0.25,
        cluster_share=0.55,
        description="NYU Spatial Data Repository: census and transportation layers",
    ),
    "Transit": SourceProfile(
        name="Transit",
        region=BoundingBox(-77.73, 36.81, -74.53, 39.78),
        dataset_count=1967,
        mean_dataset_size=260,
        route_share=0.75,
        cluster_share=0.15,
        description="Maryland / Washington D.C. transit routes (buses, metro, waterways)",
    ),
    "UMN": SourceProfile(
        name="UMN",
        region=BoundingBox(-179.14, -14.55, 179.77, 71.35),
        dataset_count=5453,
        mean_dataset_size=1000,
        route_share=0.2,
        cluster_share=0.6,
        description="University of Minnesota data repository: agriculture and ecology",
    ),
}


def build_source_datasets(
    profile: SourceProfile | str,
    scale: float = 0.02,
    seed: int = 7,
    min_datasets: int = 20,
    cache_dir: "str | None" = None,
) -> list[SpatialDataset]:
    """Materialise the datasets of one source profile.

    Parameters
    ----------
    profile:
        A :class:`SourceProfile` or the name of one of :data:`SOURCE_PROFILES`.
    scale:
        Fraction of the paper's dataset count to generate (0.02 keeps the
        default benchmarks laptop-friendly; raise it towards 1.0 to approach
        the paper's scale).
    seed:
        RNG seed; the same (profile, scale, seed) triple always produces the
        same datasets.
    min_datasets:
        Lower bound on the generated dataset count so tiny scales still
        exercise the indexes.
    cache_dir:
        Directory for the on-disk corpus cache (see
        :mod:`repro.data.corpus_cache`).  ``None`` consults the
        ``REPRO_CORPUS_CACHE`` environment variable; when neither names a
        directory every call regenerates from the seed.
    """
    if isinstance(profile, str):
        profile = SOURCE_PROFILES[profile]
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    count = max(min_datasets, int(round(profile.dataset_count * scale)))

    def generate() -> list[SpatialDataset]:
        rng = np.random.default_rng(seed + _stable_hash(profile.name))
        return profile.generator().generate_many(count, rng, prefix=f"{profile.name}-D")

    from repro.data.corpus_cache import load_or_generate

    return load_or_generate(
        profile, scale, seed, min_datasets, generate, cache_dir=cache_dir
    )


def build_all_sources(
    scale: float = 0.02, seed: int = 7
) -> dict[str, list[SpatialDataset]]:
    """Materialise all five source profiles at the given ``scale``."""
    return {
        name: build_source_datasets(profile, scale=scale, seed=seed)
        for name, profile in SOURCE_PROFILES.items()
    }


def _stable_hash(name: str) -> int:
    """A small deterministic hash (independent of PYTHONHASHSEED) for seed derivation."""
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % 1_000_003
    return value
