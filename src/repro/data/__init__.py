"""Synthetic data generation and loading.

The paper evaluates on five real data portals (Table I).  Those archives are
multi-gigabyte downloads, so this package generates *synthetic equivalents*
that reproduce each source's shape — number of datasets, dataset-size
distribution, coordinate extent and spatial clustering — at a configurable
scale (see DESIGN.md, "Substitutions").

* :mod:`repro.data.generators` — primitive generators: random walks
  (trajectory/route-like datasets), Gaussian clusters, uniform scatters and
  mixtures.
* :mod:`repro.data.sources` — the five named source profiles and
  ``build_source_datasets`` to materialise them.
* :mod:`repro.data.queries` — query workload sampling.
* :mod:`repro.data.loaders` — CSV/JSON round-trips for datasets and sources.
* :mod:`repro.data.corpus_cache` — on-disk cache of generated corpora keyed
  by (config hash, seed, generator fingerprint).
"""

from repro.data.corpus_cache import generator_fingerprint, load_or_generate
from repro.data.generators import (
    DatasetGenerator,
    generate_cluster_dataset,
    generate_route_dataset,
    generate_uniform_dataset,
)
from repro.data.loaders import (
    load_datasets_json,
    load_source_csv,
    save_datasets_json,
    save_source_csv,
)
from repro.data.queries import sample_queries
from repro.data.sources import (
    SOURCE_PROFILES,
    SourceProfile,
    build_all_sources,
    build_source_datasets,
)

__all__ = [
    "SOURCE_PROFILES",
    "DatasetGenerator",
    "SourceProfile",
    "build_all_sources",
    "build_source_datasets",
    "generate_cluster_dataset",
    "generate_route_dataset",
    "generate_uniform_dataset",
    "generator_fingerprint",
    "load_datasets_json",
    "load_or_generate",
    "load_source_csv",
    "sample_queries",
    "save_datasets_json",
    "save_source_csv",
]
