"""On-disk cache of generated synthetic corpora.

Generating one source's corpus costs 0.6–1.2 s (the route generator is an
inherently sequential random walk), and every benchmark sweep pays it again
for each fresh process.  This module persists generated corpora as ``.npz``
archives keyed by

* a **config hash** over everything that determines the output — the profile
  (name, region, counts, shape mixture), ``scale``, ``seed`` and
  ``min_datasets`` — and
* a **generator fingerprint**: a hash of the source code of
  :mod:`repro.data.generators` and :mod:`repro.data.sources`, so editing the
  generation logic invalidates every cached corpus automatically.

Caching is off unless a cache directory is configured, either explicitly or
via the ``REPRO_CORPUS_CACHE`` environment variable (the benchmark suite
points it at ``benchmarks/.cache/``).  A cache hit restores datasets
bit-identical to regeneration — point arrays round-trip through ``.npz``
losslessly — which ``tests/data/test_corpus_cache.py`` asserts.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.dataset import SpatialDataset

__all__ = [
    "cache_dir_from_env",
    "corpus_cache_path",
    "generator_fingerprint",
    "load_corpus",
    "load_or_generate",
    "store_corpus",
]

#: Environment variable naming the cache directory; unset or empty disables.
CACHE_ENV_VAR = "REPRO_CORPUS_CACHE"

_fingerprint_cache: str | None = None


def generator_fingerprint() -> str:
    """Hash of the corpus-generation source code (16 hex chars, cached).

    Covers every module whose behaviour shapes the generated point arrays:
    the generators and profiles themselves plus the dataset/geometry types
    the points flow through on construction.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        from repro.core import dataset, geometry
        from repro.data import generators, sources

        text = "".join(
            inspect.getsource(module)
            for module in (generators, sources, dataset, geometry)
        )
        _fingerprint_cache = hashlib.sha256(text.encode()).hexdigest()[:16]
    return _fingerprint_cache


def _coerce_dir(value: "Path | str | None") -> Path | None:
    """Interpret a cache-directory setting; empty/"0"/"off"/"none" disable."""
    if value is None:
        return None
    if isinstance(value, str):
        value = value.strip()
        if not value or value.lower() in ("0", "off", "none"):
            return None
    return Path(value)


def cache_dir_from_env() -> Path | None:
    """The cache directory named by ``REPRO_CORPUS_CACHE``, or ``None``."""
    return _coerce_dir(os.environ.get(CACHE_ENV_VAR, ""))


def corpus_cache_path(
    cache_dir: Path,
    profile: object,
    scale: float,
    seed: int,
    min_datasets: int,
) -> Path:
    """The cache file for one ``(profile, scale, seed, min_datasets)`` corpus."""
    config = {
        "name": profile.name,
        "region": profile.region.as_tuple(),
        "dataset_count": profile.dataset_count,
        "mean_dataset_size": profile.mean_dataset_size,
        "route_share": profile.route_share,
        "cluster_share": profile.cluster_share,
        "scale": scale,
        "seed": seed,
        "min_datasets": min_datasets,
    }
    digest = hashlib.sha256(
        json.dumps(config, sort_keys=True).encode()
    ).hexdigest()[:16]
    return cache_dir / f"{profile.name}-{digest}-{generator_fingerprint()}.npz"


def store_corpus(path: Path, datasets: Sequence[SpatialDataset]) -> None:
    """Persist ``datasets`` at ``path`` atomically (write temp file, rename)."""
    ids = np.array([dataset.dataset_id for dataset in datasets])
    sizes = np.array([len(dataset) for dataset in datasets], dtype=np.int64)
    if datasets:
        points = np.concatenate(
            [
                np.array([(p.x, p.y) for p in dataset.points], dtype=np.float64)
                for dataset in datasets
            ]
        )
    else:
        points = np.empty((0, 2), dtype=np.float64)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(handle, "wb") as tmp_file:
            np.savez(tmp_file, ids=ids, sizes=sizes, points=points)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def load_corpus(path: Path) -> list[SpatialDataset] | None:
    """Datasets stored at ``path``, or ``None`` if absent or unreadable."""
    if not path.is_file():
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            ids = archive["ids"]
            sizes = archive["sizes"]
            points = archive["points"]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile):
        return None
    if int(sizes.sum()) != points.shape[0]:
        return None
    datasets: list[SpatialDataset] = []
    offset = 0
    for dataset_id, size in zip(ids.tolist(), sizes.tolist()):
        datasets.append(
            SpatialDataset.from_coordinates(
                str(dataset_id), points[offset : offset + size]
            )
        )
        offset += size
    return datasets


def load_or_generate(
    profile: object,
    scale: float,
    seed: int,
    min_datasets: int,
    generate: Callable[[], list[SpatialDataset]],
    cache_dir: "Path | str | None" = None,
) -> list[SpatialDataset]:
    """Return the cached corpus if present, else generate and cache it.

    ``cache_dir=None`` consults ``REPRO_CORPUS_CACHE``; caching is skipped
    entirely when neither names a directory (an empty or ``"off"`` string
    disables, same as the environment variable).
    """
    directory = _coerce_dir(cache_dir) if cache_dir is not None else cache_dir_from_env()
    if directory is None:
        return generate()
    path = corpus_cache_path(directory, profile, scale, seed, min_datasets)
    cached = load_corpus(path)
    if cached is not None:
        return cached
    datasets = generate()
    try:
        store_corpus(path, datasets)
    except OSError:
        pass  # a read-only or full cache directory must never fail the run
    return datasets
