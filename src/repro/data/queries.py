"""Query workload sampling.

Section VII-A builds query workloads by randomly selecting 50 datasets from
the downloaded corpora and using them as query datasets.  The helpers here do
the same over synthetic sources, plus a variant that perturbs the sampled
datasets slightly so queries are near-duplicates rather than exact members of
the corpus (useful for testing that overlap scores behave sensibly when the
query itself is not indexed).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import SpatialDataset

__all__ = ["sample_queries", "perturbed_queries"]


def sample_queries(
    datasets: list[SpatialDataset], count: int, seed: int = 23
) -> list[SpatialDataset]:
    """Sample ``count`` query datasets uniformly without replacement.

    If ``count`` exceeds the corpus size, the whole corpus (shuffled) is
    returned.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(datasets))[: min(count, len(datasets))]
    return [datasets[i] for i in indices]


def perturbed_queries(
    datasets: list[SpatialDataset],
    count: int,
    seed: int = 23,
    jitter_fraction: float = 0.002,
) -> list[SpatialDataset]:
    """Sample queries and add small coordinate jitter to every point.

    ``jitter_fraction`` scales the Gaussian noise by the dataset's own extent
    so small, dense datasets are not smeared across the map.
    """
    rng = np.random.default_rng(seed)
    base = sample_queries(datasets, count, seed=seed)
    queries = []
    for position, dataset in enumerate(base):
        box = dataset.bounding_box
        scale = max(box.width, box.height, 1e-9) * jitter_fraction
        coords = np.array([[p.x, p.y] for p in dataset.points])
        coords += rng.normal(0.0, scale, size=coords.shape)
        queries.append(
            SpatialDataset.from_coordinates(f"query-{position}-{dataset.dataset_id}", coords)
        )
    return queries
