"""Primitive synthetic spatial dataset generators.

Three shapes cover the kinds of datasets in the paper's portals:

* **Routes** (:func:`generate_route_dataset`) — correlated random walks that
  resemble transit lines and trajectories (the Transit and Baidu sources).
* **Clusters** (:func:`generate_cluster_dataset`) — Gaussian blobs that
  resemble point-of-interest and census layers (NYU, BTAA, UMN).
* **Uniform scatters** (:func:`generate_uniform_dataset`) — background noise
  layers.

All generators take an explicit :class:`numpy.random.Generator` so every
dataset, workload and benchmark in this repository is reproducible from a
seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.geometry import BoundingBox
from repro.core.dataset import SpatialDataset

__all__ = [
    "generate_route_dataset",
    "generate_cluster_dataset",
    "generate_uniform_dataset",
    "DatasetGenerator",
]


def _clamp_points(points: np.ndarray, region: BoundingBox) -> np.ndarray:
    points[:, 0] = np.clip(points[:, 0], region.min_x, region.max_x)
    points[:, 1] = np.clip(points[:, 1], region.min_y, region.max_y)
    return points


def generate_route_dataset(
    dataset_id: str,
    region: BoundingBox,
    rng: np.random.Generator,
    length: int = 200,
    step_fraction: float = 0.004,
) -> SpatialDataset:
    """A route-like dataset: a correlated random walk inside ``region``.

    ``step_fraction`` is the walk step expressed as a fraction of the
    region's larger side; routes therefore scale with the region they live
    in, which keeps the cell-based representation meaningful across the very
    different extents of the five source profiles.
    """
    extent = max(region.width, region.height)
    step = extent * step_fraction
    x = float(rng.uniform(region.min_x, region.max_x))
    y = float(rng.uniform(region.min_y, region.max_y))
    heading = float(rng.uniform(0.0, 2.0 * np.pi))
    # One vectorized draw consumes the identical RNG stream as ``length``
    # scalar draws; the walk itself runs on Python floats (the clamp makes
    # it inherently sequential) with the same IEEE double arithmetic as the
    # original per-step numpy scalars.
    turns = rng.normal(0.0, 0.35, size=length).tolist()
    min_x, max_x = region.min_x, region.max_x
    min_y, max_y = region.min_y, region.max_y
    points = np.empty((length, 2), dtype=float)
    for i, turn in enumerate(turns):
        points[i, 0] = x
        points[i, 1] = y
        heading += turn
        x = x + step * math.cos(heading)
        y = y + step * math.sin(heading)
        if x < min_x:
            x = min_x
        elif x > max_x:
            x = max_x
        if y < min_y:
            y = min_y
        elif y > max_y:
            y = max_y
    return SpatialDataset.from_coordinates(dataset_id, _clamp_points(points, region))


def generate_cluster_dataset(
    dataset_id: str,
    region: BoundingBox,
    rng: np.random.Generator,
    size: int = 300,
    cluster_count: int = 3,
    spread_fraction: float = 0.01,
) -> SpatialDataset:
    """A clustered dataset: a mixture of Gaussian blobs inside ``region``."""
    extent = max(region.width, region.height)
    spread = extent * spread_fraction
    centers = np.column_stack(
        [
            rng.uniform(region.min_x, region.max_x, size=cluster_count),
            rng.uniform(region.min_y, region.max_y, size=cluster_count),
        ]
    )
    assignments = rng.integers(0, cluster_count, size=size)
    offsets = rng.normal(0.0, spread, size=(size, 2))
    points = centers[assignments] + offsets
    return SpatialDataset.from_coordinates(dataset_id, _clamp_points(points, region))


def generate_uniform_dataset(
    dataset_id: str,
    region: BoundingBox,
    rng: np.random.Generator,
    size: int = 300,
) -> SpatialDataset:
    """A dataset of points drawn uniformly inside ``region``."""
    points = np.column_stack(
        [
            rng.uniform(region.min_x, region.max_x, size=size),
            rng.uniform(region.min_y, region.max_y, size=size),
        ]
    )
    return SpatialDataset.from_coordinates(dataset_id, points)


@dataclass(frozen=True, slots=True)
class DatasetGenerator:
    """A reusable generator bound to a region and a mixture of dataset shapes.

    ``route_share``/``cluster_share`` control the probability of each shape;
    the remainder is uniform scatters.  Per-dataset sizes are drawn from a
    log-normal distribution to reproduce the heavy-tailed dataset sizes of
    real portals.
    """

    region: BoundingBox
    route_share: float = 0.5
    cluster_share: float = 0.3
    mean_size: int = 250
    size_sigma: float = 0.6

    def generate(self, dataset_id: str, rng: np.random.Generator) -> SpatialDataset:
        """Generate one dataset with a randomly chosen shape and size."""
        size = max(10, int(rng.lognormal(np.log(self.mean_size), self.size_sigma)))
        shape_draw = rng.random()
        if shape_draw < self.route_share:
            return generate_route_dataset(dataset_id, self.region, rng, length=size)
        if shape_draw < self.route_share + self.cluster_share:
            return generate_cluster_dataset(dataset_id, self.region, rng, size=size)
        return generate_uniform_dataset(dataset_id, self.region, rng, size=size)

    def generate_many(
        self, count: int, rng: np.random.Generator, prefix: str = "D"
    ) -> list[SpatialDataset]:
        """Generate ``count`` datasets named ``{prefix}{i}``."""
        return [self.generate(f"{prefix}{i}", rng) for i in range(count)]
