"""Persistence helpers: CSV and JSON round-trips for spatial datasets.

Real deployments of a dataset-search service ingest files from disk; these
helpers provide a minimal but complete ingestion path so the examples can
demonstrate loading a directory of CSV files into a data source, and so users
can persist synthetic corpora for repeatable experiments.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.core.dataset import SpatialDataset
from repro.core.errors import EmptyDatasetError

__all__ = [
    "save_datasets_json",
    "load_datasets_json",
    "save_source_csv",
    "load_source_csv",
]


def save_datasets_json(datasets: Iterable[SpatialDataset], path: str | Path) -> None:
    """Write datasets to one JSON file: ``{dataset_id: [[x, y], ...], ...}``."""
    payload = {
        dataset.dataset_id: [[point.x, point.y] for point in dataset.points]
        for dataset in datasets
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_datasets_json(path: str | Path) -> list[SpatialDataset]:
    """Read datasets previously written by :func:`save_datasets_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    datasets = []
    for dataset_id, coordinates in payload.items():
        if not coordinates:
            raise EmptyDatasetError(f"dataset {dataset_id!r} in {path} has no points")
        datasets.append(SpatialDataset.from_coordinates(dataset_id, coordinates))
    return datasets


def save_source_csv(datasets: Iterable[SpatialDataset], directory: str | Path) -> list[Path]:
    """Write one ``<dataset_id>.csv`` file (columns ``x,y``) per dataset."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for dataset in datasets:
        file_path = out_dir / f"{dataset.dataset_id}.csv"
        with file_path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x", "y"])
            for point in dataset.points:
                writer.writerow([point.x, point.y])
        written.append(file_path)
    return written


def load_source_csv(directory: str | Path) -> list[SpatialDataset]:
    """Read every ``*.csv`` file in ``directory`` as one dataset each."""
    datasets = []
    for file_path in sorted(Path(directory).glob("*.csv")):
        coordinates = []
        with file_path.open(newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                coordinates.append((float(row["x"]), float(row["y"])))
        if not coordinates:
            raise EmptyDatasetError(f"CSV file {file_path} has no points")
        datasets.append(SpatialDataset.from_coordinates(file_path.stem, coordinates))
    return datasets
