"""Workload construction and timing utilities for the experiment drivers.

A :class:`Workbench` materialises everything one experiment configuration
needs — the synthetic datasets of the selected sources, their gridded nodes,
query workloads and (on demand) each of the five indexes — and caches the
expensive pieces so parameter sweeps that only change ``k`` or ``delta`` do
not regenerate data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.dataset import DatasetNode, SpatialDataset
from repro.core.grid import Grid
from repro.data.queries import sample_queries
from repro.data.sources import SOURCE_PROFILES, build_source_datasets
from repro.index.dits import DITSLocalIndex
from repro.index.inverted import STS3Index
from repro.index.josie import JosieIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex

__all__ = ["ExperimentConfig", "Workbench", "time_call"]

#: Default experiment scale: fraction of the paper's per-source dataset counts.
DEFAULT_SCALE = 0.02
#: Default benchmark sources; ``Transit`` is the densest and most join-friendly.
DEFAULT_SOURCES = ("Transit", "Baidu")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One experiment configuration: data scale, sources and grid resolution."""

    sources: tuple[str, ...] = DEFAULT_SOURCES
    scale: float = DEFAULT_SCALE
    theta: int = 12
    leaf_capacity: int = 30
    seed: int = 7

    def with_theta(self, theta: int) -> "ExperimentConfig":
        """Copy of this config at a different grid resolution."""
        return ExperimentConfig(
            sources=self.sources,
            scale=self.scale,
            theta=theta,
            leaf_capacity=self.leaf_capacity,
            seed=self.seed,
        )


@dataclass
class Workbench:
    """Materialised datasets, nodes and indexes for one configuration."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    _datasets: dict[str, list[SpatialDataset]] = field(default_factory=dict, init=False)
    _nodes: dict[str, list[DatasetNode]] = field(default_factory=dict, init=False)

    # ------------------------------------------------------------------ #
    # Data materialisation
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid:
        """The grid at the configuration's resolution."""
        return Grid(theta=self.config.theta)

    def with_theta(self, theta: int) -> "Workbench":
        """A workbench at a different resolution sharing this one's datasets.

        Dataset generation does not depend on ``theta``, so theta sweeps can
        reuse the (expensive) synthetic corpora and only re-discretise;
        gridded nodes are cached per ``source@theta`` and stay correct.
        """
        sibling = Workbench(self.config.with_theta(theta))
        sibling._datasets = self._datasets
        sibling._nodes = self._nodes
        return sibling

    def datasets_of(self, source_name: str) -> list[SpatialDataset]:
        """The synthetic datasets of ``source_name`` (cached)."""
        if source_name not in self._datasets:
            self._datasets[source_name] = build_source_datasets(
                SOURCE_PROFILES[source_name],
                scale=self.config.scale,
                seed=self.config.seed,
            )
        return self._datasets[source_name]

    def all_datasets(self) -> list[SpatialDataset]:
        """Datasets of every configured source, concatenated."""
        combined: list[SpatialDataset] = []
        for source_name in self.config.sources:
            combined.extend(self.datasets_of(source_name))
        return combined

    def nodes_of(self, source_name: str) -> list[DatasetNode]:
        """Gridded dataset nodes of ``source_name`` under the configured grid."""
        key = f"{source_name}@{self.config.theta}"
        if key not in self._nodes:
            grid = self.grid
            self._nodes[key] = [
                dataset.to_node(grid) for dataset in self.datasets_of(source_name)
            ]
        return self._nodes[key]

    def all_nodes(self) -> list[DatasetNode]:
        """Gridded nodes of every configured source, concatenated."""
        combined: list[DatasetNode] = []
        for source_name in self.config.sources:
            combined.extend(self.nodes_of(source_name))
        return combined

    def query_nodes(self, count: int, from_source: str | None = None) -> list[DatasetNode]:
        """``count`` query nodes sampled from one source (or the first configured)."""
        source_name = from_source or self.config.sources[0]
        queries = sample_queries(
            self.datasets_of(source_name), count, seed=self.config.seed + 1
        )
        grid = self.grid
        return [query.to_node(grid) for query in queries]

    # ------------------------------------------------------------------ #
    # Index construction
    # ------------------------------------------------------------------ #
    def build_dits(self, nodes: Sequence[DatasetNode] | None = None) -> DITSLocalIndex:
        """A DITS-L index over ``nodes`` (default: all configured nodes)."""
        index = DITSLocalIndex(leaf_capacity=self.config.leaf_capacity)
        index.build(nodes if nodes is not None else self.all_nodes())
        return index

    def build_rtree(self, nodes: Sequence[DatasetNode] | None = None) -> RTreeIndex:
        """An R-tree index over ``nodes``."""
        index = RTreeIndex()
        index.build(nodes if nodes is not None else self.all_nodes())
        return index

    def build_quadtree(self, nodes: Sequence[DatasetNode] | None = None) -> QuadTreeIndex:
        """A QuadTree index over ``nodes``."""
        index = QuadTreeIndex()
        index.build(nodes if nodes is not None else self.all_nodes())
        return index

    def build_sts3(self, nodes: Sequence[DatasetNode] | None = None) -> STS3Index:
        """An STS3 inverted index over ``nodes``."""
        index = STS3Index()
        index.build(nodes if nodes is not None else self.all_nodes())
        return index

    def build_josie(self, nodes: Sequence[DatasetNode] | None = None) -> JosieIndex:
        """A Josie index over ``nodes``."""
        index = JosieIndex()
        index.build(nodes if nodes is not None else self.all_nodes())
        return index


def time_call(function: Callable[[], object], repeats: int = 1) -> tuple[float, object]:
    """Run ``function`` ``repeats`` times; return (best wall-clock ms, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = function()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        best = min(best, elapsed_ms)
    return best, result
