"""Plain-text charts for experiment results.

The paper presents its evaluation as line charts (time vs. ``k``, ``theta``,
``q`` …).  This repository's benchmarks print tables, but a quick visual read
of a trend is often easier; :func:`ascii_line_chart` renders one or more
series as a fixed-size ASCII chart that can be embedded in terminal output,
logs or EXPERIMENTS.md without any plotting dependency.

The chart is deliberately simple: linear or logarithmic y-axis, one marker
character per series, shared x-positions taken from the union of the series'
x-values.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_line_chart", "series_from_rows"]

_MARKERS = "ox+*#@%&"


def series_from_rows(
    rows: Sequence[Mapping[str, object]],
    x_key: str,
    y_key: str,
    label_key: str,
) -> dict[str, list[tuple[float, float]]]:
    """Group experiment rows into ``{label: [(x, y), ...]}`` series.

    This is the bridge between the experiment drivers (which return flat row
    dictionaries) and :func:`ascii_line_chart`.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        label = str(row[label_key])
        series.setdefault(label, []).append((float(row[x_key]), float(row[y_key])))
    for points in series.values():
        points.sort()
    return series


def ascii_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``series`` as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping from series label to ``(x, y)`` points.
    width, height:
        Plot area size in characters (excluding axes and legend).
    logy:
        Use a logarithmic y-axis (all y values must then be positive), which
        matches how the paper plots its timing figures.
    """
    if not series or all(not points for points in series.values()):
        return "(no data)"
    if width < 10 or height < 4:
        raise ValueError("chart area too small")

    all_points = [point for points in series.values() for point in points]
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    if logy:
        if min(ys) <= 0:
            raise ValueError("logarithmic y-axis requires positive values")
        transform = math.log10
    else:
        transform = float
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(transform(y) for y in ys), max(transform(y) for y in ys)
    x_span = max(max_x - min_x, 1e-12)
    y_span = max(max_y - min_y, 1e-12)

    canvas = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for index, (label, points) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in points:
            column = round((x - min_x) / x_span * (width - 1))
            row = round((transform(y) - min_y) / y_span * (height - 1))
            canvas[height - 1 - row][column] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    y_top = f"{(10 ** max_y if logy else max_y):.3g}"
    y_bottom = f"{(10 ** min_y if logy else min_y):.3g}"
    label_width = max(len(y_top), len(y_bottom), len(y_label))
    lines.append(f"{y_top.rjust(label_width)} ┤{''.join(canvas[0])}")
    for row_chars in canvas[1:-1]:
        lines.append(f"{' ' * label_width} │{''.join(row_chars)}")
    lines.append(f"{y_bottom.rjust(label_width)} ┤{''.join(canvas[-1])}")
    lines.append(f"{' ' * label_width} └{'─' * width}")
    lines.append(
        f"{' ' * label_width}  {str(min_x):<{width // 2}}{str(max_x):>{width - width // 2}}"
    )
    lines.append(f"{' ' * label_width}  {x_label}   |   " + "   ".join(legend))
    return "\n".join(lines)
