"""Experiment drivers: one function per paper table/figure.

Every driver returns a list of plain dictionaries (one row per measurement)
so the benchmark tests can both assert on the measured *shape* (who wins,
how the curve moves) and print the rows the way the paper reports them.
The drivers deliberately accept the sweep values as arguments with defaults
matching Table II of the paper, scaled to the synthetic corpora.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

from repro.bench.harness import ExperimentConfig, Workbench, time_call
from repro.core.dataset import DatasetNode
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery, OverlapQuery
from repro.data.sources import SOURCE_PROFILES, build_source_datasets
from repro.distributed.center import DistributionPolicy
from repro.distributed.framework import MultiSourceFramework
from repro.index import DATASET_INDEX_CLASSES
from repro.index.dits_global import DITSGlobalIndex, SourceSummary
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy
from repro.index.dits import DITSLocalIndex
from repro.index.stats import index_memory_bytes
from repro.search.coverage import CoverageSearch
from repro.search.coverage_baselines import StandardGreedy, StandardGreedyWithDITS
from repro.search.overlap import OverlapSearch
from repro.search.overlap_baselines import (
    JosieOverlap,
    QuadTreeOverlap,
    RTreeOverlap,
    STS3Overlap,
)

__all__ = [
    "table1_source_statistics",
    "fig7_source_heatmaps",
    "fig8_index_construction",
    "fig9_overlap_vs_k",
    "fig10_overlap_vs_theta",
    "fig11_overlap_vs_q",
    "fig12_overlap_vs_leaf_capacity",
    "fig13_14_overlap_communication",
    "fig15_coverage_vs_k",
    "fig16_coverage_vs_theta",
    "fig17_coverage_vs_q",
    "fig18_coverage_vs_delta",
    "fig19_20_coverage_communication",
    "fig21_22_index_updates",
    "fig23_global_index_churn",
    "fig24_local_index_churn",
    "OVERLAP_METHODS",
    "COVERAGE_METHODS",
]

#: Parameter defaults mirroring Table II, shrunk where the synthetic corpora
#: are smaller than the real portals.
DEFAULT_K_VALUES = (2, 4, 6, 8, 10)
DEFAULT_Q_VALUES = (2, 4, 6, 8, 10)
DEFAULT_THETA_VALUES = (10, 11, 12, 13, 14)
DEFAULT_DELTA_VALUES = (0.0, 5.0, 10.0, 15.0, 20.0)
DEFAULT_LEAF_CAPACITIES = (10, 20, 30, 40, 50)
DEFAULT_UPDATE_BATCHES = (20, 40, 60, 80, 100)

OVERLAP_METHODS = ("OverlapSearch", "Rtree", "Josie", "QuadTree", "STS3")
COVERAGE_METHODS = ("CoverageSearch", "SG+DITS", "SG")


# ---------------------------------------------------------------------- #
# Table I / Fig. 7 — data source statistics
# ---------------------------------------------------------------------- #
def table1_source_statistics(scale: float = 0.02, seed: int = 7) -> list[dict]:
    """Per-source statistics mirroring Table I (at synthetic scale)."""
    rows = []
    for name, profile in SOURCE_PROFILES.items():
        datasets = build_source_datasets(profile, scale=scale, seed=seed)
        point_count = sum(len(dataset) for dataset in datasets)
        rows.append(
            {
                "source": name,
                "datasets": len(datasets),
                "points": point_count,
                "lon_range": f"[{profile.region.min_x:.2f}, {profile.region.max_x:.2f}]",
                "lat_range": f"[{profile.region.min_y:.2f}, {profile.region.max_y:.2f}]",
                "paper_datasets": profile.dataset_count,
            }
        )
    return rows


def fig7_source_heatmaps(
    scale: float = 0.02, seed: int = 7, theta: int = 6
) -> dict[str, list[dict]]:
    """Coarse occupancy histograms per source (the Fig. 7 heat-map analogue).

    Returns, for every source, rows of ``(cell, count)`` at a coarse
    resolution — enough to verify that the spatial skew of each profile is
    present (Transit dense and compact, BTAA sparse and wide).
    """
    grid = Grid(theta=theta)
    heatmaps: dict[str, list[dict]] = {}
    for name, profile in SOURCE_PROFILES.items():
        datasets = build_source_datasets(profile, scale=scale, seed=seed)
        counts: dict[int, int] = {}
        for dataset in datasets:
            for cell in grid.cell_ids_of(dataset.points):
                counts[cell] = counts.get(cell, 0) + 1
        heatmaps[name] = [
            {"cell": cell, "datasets": count}
            for cell, count in sorted(counts.items(), key=lambda kv: -kv[1])[:20]
        ]
    return heatmaps


# ---------------------------------------------------------------------- #
# Fig. 8 — index construction time and memory vs theta
# ---------------------------------------------------------------------- #
def fig8_index_construction(
    thetas: Sequence[int] = DEFAULT_THETA_VALUES,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """Construction time (ms) and memory (bytes) of the five indexes per theta."""
    base_bench = Workbench(config or ExperimentConfig())
    rows = []
    for theta in thetas:
        bench = base_bench.with_theta(theta)
        nodes = bench.all_nodes()
        for index_name, index_cls in DATASET_INDEX_CLASSES.items():
            index = index_cls()
            elapsed_ms, _ = time_call(lambda idx=index: idx.build(nodes))
            rows.append(
                {
                    "theta": theta,
                    "index": index_name,
                    "build_ms": elapsed_ms,
                    "memory_bytes": index_memory_bytes(index),
                    "datasets": len(nodes),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# OJSP search-time sweeps (Figs. 9-12)
# ---------------------------------------------------------------------- #
def _overlap_methods(bench: Workbench, leaf_capacity: int | None = None):
    """Build all five OJSP methods over the workbench's nodes."""
    nodes = bench.all_nodes()
    dits = DITSLocalIndex(leaf_capacity=leaf_capacity or bench.config.leaf_capacity)
    dits.build(nodes)
    rtree = bench.build_rtree(nodes)
    quad = bench.build_quadtree(nodes)
    sts3 = bench.build_sts3(nodes)
    josie = bench.build_josie(nodes)
    return {
        "OverlapSearch": OverlapSearch(dits),
        "Rtree": RTreeOverlap(rtree),
        "Josie": JosieOverlap(josie),
        "QuadTree": QuadTreeOverlap(quad),
        "STS3": STS3Overlap(sts3),
    }


def _run_overlap_workload(
    methods, queries, k: int, repeats: int = 3
) -> dict[str, float]:
    """Best-of-``repeats`` time (ms) per method to answer every query in ``queries``.

    The OJSP workloads are sub-millisecond per query at laptop scale, so each
    measurement is repeated and the minimum kept to suppress cold-cache and
    scheduler noise.
    """
    timings: dict[str, float] = {}
    for name, method in methods.items():
        def run(m=method):
            for query in queries:
                m.search(OverlapQuery(query=query, k=k))
        elapsed_ms, _ = time_call(run, repeats=repeats)
        timings[name] = elapsed_ms
    return timings


def fig9_overlap_vs_k(
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    query_count: int = 5,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """OJSP search time of the five methods as ``k`` grows (Fig. 9)."""
    bench = Workbench(config or ExperimentConfig())
    methods = _overlap_methods(bench)
    queries = bench.query_nodes(query_count)
    rows = []
    for k in k_values:
        timings = _run_overlap_workload(methods, queries, k)
        for name, elapsed in timings.items():
            rows.append({"k": k, "method": name, "time_ms": elapsed, "queries": query_count})
    return rows


def fig10_overlap_vs_theta(
    thetas: Sequence[int] = DEFAULT_THETA_VALUES,
    k: int = 5,
    query_count: int = 5,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """OJSP search time as the grid resolution grows (Fig. 10)."""
    base_bench = Workbench(config or ExperimentConfig())
    rows = []
    for theta in thetas:
        bench = base_bench.with_theta(theta)
        methods = _overlap_methods(bench)
        queries = bench.query_nodes(query_count)
        timings = _run_overlap_workload(methods, queries, k)
        for name, elapsed in timings.items():
            rows.append({"theta": theta, "method": name, "time_ms": elapsed})
    return rows


def fig11_overlap_vs_q(
    q_values: Sequence[int] = DEFAULT_Q_VALUES,
    k: int = 5,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """OJSP search time as the number of queries grows (Fig. 11)."""
    bench = Workbench(config or ExperimentConfig())
    methods = _overlap_methods(bench)
    all_queries = bench.query_nodes(max(q_values))
    rows = []
    for q in q_values:
        timings = _run_overlap_workload(methods, all_queries[:q], k)
        for name, elapsed in timings.items():
            rows.append({"q": q, "method": name, "time_ms": elapsed})
    return rows


def fig12_overlap_vs_leaf_capacity(
    capacities: Sequence[int] = DEFAULT_LEAF_CAPACITIES,
    k: int = 5,
    query_count: int = 5,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """OJSP search time of OverlapSearch vs. the R-tree as ``f`` grows (Fig. 12)."""
    bench = Workbench(config or ExperimentConfig())
    nodes = bench.all_nodes()
    queries = bench.query_nodes(query_count)
    rtree = bench.build_rtree(nodes)
    rtree_method = RTreeOverlap(rtree)
    rows = []
    for capacity in capacities:
        dits = DITSLocalIndex(leaf_capacity=capacity)
        dits.build(nodes)
        methods = {"OverlapSearch": OverlapSearch(dits), "Rtree": rtree_method}
        timings = _run_overlap_workload(methods, queries, k)
        for name, elapsed in timings.items():
            rows.append({"f": capacity, "method": name, "time_ms": elapsed})
    return rows


# ---------------------------------------------------------------------- #
# Figs. 13-14 — OJSP communication cost and transmission time
# ---------------------------------------------------------------------- #
def _build_framework(config: ExperimentConfig, policy: DistributionPolicy) -> MultiSourceFramework:
    framework = MultiSourceFramework(
        theta=config.theta, leaf_capacity=config.leaf_capacity, policy=policy
    )
    for source_name in config.sources:
        datasets = build_source_datasets(
            SOURCE_PROFILES[source_name], scale=config.scale, seed=config.seed
        )
        framework.add_source(source_name, datasets)
    return framework


def fig13_14_overlap_communication(
    q_values: Sequence[int] = DEFAULT_Q_VALUES,
    k: int = 5,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """Bytes transferred and transmission time for OJSP as ``q`` grows.

    ``OverlapSearch`` uses both distribution strategies (candidate routing +
    query clipping); the baselines broadcast the full query to every source,
    which is how the paper's comparison methods behave.
    """
    cfg = config or ExperimentConfig()
    optimised = _build_framework(cfg, DistributionPolicy(route_to_candidates=True, clip_query=True))
    broadcast = _build_framework(cfg, DistributionPolicy(route_to_candidates=False, clip_query=False))
    bench = Workbench(cfg)
    all_queries = bench.query_nodes(max(q_values))

    rows = []
    for q in q_values:
        queries = all_queries[:q]
        for label, framework in (("OverlapSearch", optimised), ("Broadcast", broadcast)):
            framework.reset_communication_stats()
            for query in queries:
                framework.overlap_search(query, k)
            stats = framework.communication_stats()
            rows.append(
                {
                    "q": q,
                    "method": label,
                    "bytes": stats.total_bytes,
                    "messages": stats.messages_sent,
                    "transmission_ms": framework.transmission_time_ms(),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# CJSP search-time sweeps (Figs. 15-18)
# ---------------------------------------------------------------------- #
def _coverage_methods(bench: Workbench):
    nodes = bench.all_nodes()
    dits = bench.build_dits(nodes)
    return {
        "CoverageSearch": CoverageSearch(dits),
        "SG+DITS": StandardGreedyWithDITS(dits),
        "SG": StandardGreedy(nodes),
    }


def _run_coverage_workload(methods, queries, k: int, delta: float) -> dict[str, float]:
    timings: dict[str, float] = {}
    for name, method in methods.items():
        def run(m=method):
            for query in queries:
                m.search(CoverageQuery(query=query, k=k, delta=delta))
        elapsed_ms, _ = time_call(run)
        timings[name] = elapsed_ms
    return timings


def fig15_coverage_vs_k(
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    delta: float = 10.0,
    query_count: int = 3,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """CJSP search time of the three methods as ``k`` grows (Fig. 15)."""
    bench = Workbench(config or ExperimentConfig())
    methods = _coverage_methods(bench)
    queries = bench.query_nodes(query_count)
    rows = []
    for k in k_values:
        timings = _run_coverage_workload(methods, queries, k, delta)
        for name, elapsed in timings.items():
            rows.append({"k": k, "method": name, "time_ms": elapsed})
    return rows


def fig16_coverage_vs_theta(
    thetas: Sequence[int] = DEFAULT_THETA_VALUES,
    k: int = 5,
    delta: float = 10.0,
    query_count: int = 3,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """CJSP search time as the grid resolution grows (Fig. 16)."""
    base_bench = Workbench(config or ExperimentConfig())
    rows = []
    for theta in thetas:
        bench = base_bench.with_theta(theta)
        methods = _coverage_methods(bench)
        queries = bench.query_nodes(query_count)
        timings = _run_coverage_workload(methods, queries, k, delta)
        for name, elapsed in timings.items():
            rows.append({"theta": theta, "method": name, "time_ms": elapsed})
    return rows


def fig17_coverage_vs_q(
    q_values: Sequence[int] = DEFAULT_Q_VALUES,
    k: int = 5,
    delta: float = 10.0,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """CJSP search time as the number of queries grows (Fig. 17)."""
    bench = Workbench(config or ExperimentConfig())
    methods = _coverage_methods(bench)
    all_queries = bench.query_nodes(max(q_values))
    rows = []
    for q in q_values:
        timings = _run_coverage_workload(methods, all_queries[:q], k, delta)
        for name, elapsed in timings.items():
            rows.append({"q": q, "method": name, "time_ms": elapsed})
    return rows


def fig18_coverage_vs_delta(
    delta_values: Sequence[float] = DEFAULT_DELTA_VALUES,
    k: int = 5,
    query_count: int = 3,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """CJSP search time as the connectivity threshold grows (Fig. 18)."""
    bench = Workbench(config or ExperimentConfig())
    methods = _coverage_methods(bench)
    queries = bench.query_nodes(query_count)
    rows = []
    for delta in delta_values:
        timings = _run_coverage_workload(methods, queries, k, delta)
        for name, elapsed in timings.items():
            rows.append({"delta": delta, "method": name, "time_ms": elapsed})
    return rows


# ---------------------------------------------------------------------- #
# Figs. 19-20 — CJSP communication cost and transmission time
# ---------------------------------------------------------------------- #
def fig19_20_coverage_communication(
    q_values: Sequence[int] = DEFAULT_Q_VALUES,
    k: int = 5,
    delta: float = 10.0,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """Bytes transferred and transmission time for CJSP as ``q`` grows."""
    cfg = config or ExperimentConfig()
    optimised = _build_framework(cfg, DistributionPolicy(route_to_candidates=True, clip_query=True))
    broadcast = _build_framework(cfg, DistributionPolicy(route_to_candidates=False, clip_query=False))
    bench = Workbench(cfg)
    all_queries = bench.query_nodes(max(q_values))

    rows = []
    for q in q_values:
        queries = all_queries[:q]
        for label, framework in (("CoverageSearch", optimised), ("Broadcast", broadcast)):
            framework.reset_communication_stats()
            for query in queries:
                framework.coverage_search(query, k, delta)
            stats = framework.communication_stats()
            rows.append(
                {
                    "q": q,
                    "method": label,
                    "bytes": stats.total_bytes,
                    "messages": stats.messages_sent,
                    "transmission_ms": framework.transmission_time_ms(),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 23 (repo extension) — DITS-G registration churn and pruning latency
# ---------------------------------------------------------------------- #
_CHURN_REGION = BoundingBox(-125.0, 24.0, -66.0, 49.0)


def _synthetic_summaries(count: int, rng: np.random.Generator) -> list[SourceSummary]:
    """Random source summaries over a continental region (mixed MBR sizes)."""
    summaries = []
    for i in range(count):
        cx = rng.uniform(_CHURN_REGION.min_x, _CHURN_REGION.max_x)
        cy = rng.uniform(_CHURN_REGION.min_y, _CHURN_REGION.max_y)
        half_w, half_h = rng.uniform(0.05, 2.5, size=2)
        summaries.append(
            SourceSummary(
                source_id=f"src-{i:05d}",
                rect=BoundingBox(cx - half_w, cy - half_h, cx + half_w, cy + half_h),
                dataset_count=int(rng.integers(10, 5000)),
            )
        )
    return summaries


def _churn_query_rects(count: int, rng: np.random.Generator) -> list[BoundingBox]:
    rects = []
    for _ in range(count):
        cx = rng.uniform(_CHURN_REGION.min_x, _CHURN_REGION.max_x)
        cy = rng.uniform(_CHURN_REGION.min_y, _CHURN_REGION.max_y)
        half = rng.uniform(0.2, 2.0)
        rects.append(BoundingBox(cx - half, cy - half, cx + half, cy + half))
    return rects


def _candidate_checksum(index, rects: Sequence[BoundingBox], delta_geo: float) -> int:
    """Order-sensitive CRC of every query's candidate ID list (variant parity)."""
    crc = 0
    for rect in rects:
        ids = ",".join(s.source_id for s in index.candidate_sources(rect, delta_geo))
        crc = zlib.crc32(ids.encode(), crc)
    return crc


def fig23_global_index_churn(
    source_counts: Sequence[int] = (250, 1000, 2000),
    shard_counts: Sequence[int] = (4, 16),
    churn_ops: int = 200,
    query_count: int = 50,
    delta_geo: float = 1.0,
    seed: int = 7,
) -> list[dict]:
    """DITS-G registration churn and pruning latency, monolithic vs sharded.

    For every source count and index variant the driver measures

    * ``register_ms`` — bulk-registering all sources plus the first query
      (the initial build);
    * ``churn_ms`` — ``churn_ops`` interleaved (mutate, query) steps, the
      worst case for rebuild cost: the monolithic index reconstructs its
      whole tree after every mutation, the sharded index only the touched
      shard;
    * ``prune_ms`` — ``query_count`` candidate queries on a quiescent index;
    * ``checksum`` — CRC over the ordered candidate lists, identical across
      variants by construction (asserted by the fig23 benchmark test).
    """

    def variants():
        yield "monolith", lambda: DITSGlobalIndex()
        for count in shard_counts:
            yield (
                f"sharded-{count}",
                lambda c=count: ShardedDITSGlobalIndex(ShardPolicy(shard_count=c)),
            )

    rows = []
    for sources in source_counts:
        for label, factory in variants():
            rng = np.random.default_rng(seed)
            summaries = _synthetic_summaries(sources, rng)
            probe_rects = _churn_query_rects(query_count, rng)
            churn_rects = _churn_query_rects(churn_ops, rng)
            replacements = _synthetic_summaries(churn_ops, np.random.default_rng(seed + 1))
            victims = rng.integers(0, sources, size=churn_ops)

            index = factory()

            def initial_build():
                index.register_all(summaries)
                index.candidate_sources(probe_rects[0], delta_geo)

            register_ms, _ = time_call(initial_build)

            def churn():
                for op in range(churn_ops):
                    victim = summaries[int(victims[op])].source_id
                    index.unregister(victim)
                    moved = SourceSummary(
                        source_id=victim,
                        rect=replacements[op].rect,
                        dataset_count=replacements[op].dataset_count,
                    )
                    index.register(moved)
                    index.candidate_sources(churn_rects[op], delta_geo)

            churn_ms, _ = time_call(churn)
            prune_ms, _ = time_call(
                lambda: [index.candidate_sources(rect, delta_geo) for rect in probe_rects]
            )
            rows.append(
                {
                    "sources": sources,
                    "variant": label,
                    "register_ms": register_ms,
                    "churn_ms": churn_ms,
                    "prune_ms": prune_ms,
                    "rebuilds": index.rebuild_count,
                    "checksum": _candidate_checksum(index, probe_rects, delta_geo),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Figs. 21-22 — index update time
# ---------------------------------------------------------------------- #
def fig21_22_index_updates(
    batch_sizes: Sequence[int] = DEFAULT_UPDATE_BATCHES,
    config: ExperimentConfig | None = None,
) -> list[dict]:
    """Batch insert and batch update time of the five indexes (Figs. 21-22)."""
    bench = Workbench(config or ExperimentConfig())
    base_nodes = bench.all_nodes()
    grid = bench.grid
    profile = SOURCE_PROFILES[bench.config.sources[0]]
    extra_datasets = build_source_datasets(
        profile, scale=bench.config.scale, seed=bench.config.seed + 99
    )
    extra_nodes = [
        dataset.to_node(grid)
        for dataset in extra_datasets
    ]
    # Re-identify the extra nodes so they never collide with indexed IDs.
    extra_nodes = [
        DatasetNode(
            dataset_id=f"new-{i}", rect=node.rect, cells=node.cells, point_count=node.point_count
        )
        for i, node in enumerate(extra_nodes)
    ]

    rows = []
    for batch in batch_sizes:
        inserts = extra_nodes[:batch]
        for index_name, index_cls in DATASET_INDEX_CLASSES.items():
            # Batch inserts (Fig. 21).
            index = index_cls()
            index.build(base_nodes)
            insert_ms, _ = time_call(
                lambda idx=index: [idx.insert(node) for node in inserts]
            )
            # Batch updates (Fig. 22): re-grid existing datasets with a shifted rect.
            index = index_cls()
            index.build(base_nodes)
            to_update = base_nodes[: min(batch, len(base_nodes))]
            replacements = [
                DatasetNode(
                    dataset_id=node.dataset_id,
                    rect=node.rect,
                    cells=node.cells,
                    point_count=node.point_count,
                )
                for node in to_update
            ]
            update_ms, _ = time_call(
                lambda idx=index, reps=replacements: [idx.update(node) for node in reps]
            )
            rows.append(
                {
                    "batch": batch,
                    "index": index_name,
                    "insert_ms": insert_ms,
                    "update_ms": update_ms,
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 24 (repo extension) — DITS-L churn: rebalancing vs a skewing tree
# ---------------------------------------------------------------------- #
def _churn_grid() -> Grid:
    return Grid(theta=10, space=BoundingBox(0.0, 0.0, 1024.0, 1024.0))


def _churn_dataset_node(grid: Grid, dataset_id: str, ox: int, oy: int, rng) -> "DatasetNode":
    extent = int(grid.space.width)
    ox = min(max(ox, 0), extent - 13)
    oy = min(max(oy, 0), extent - 13)
    cells = {
        grid.cell_id_from_coords(ox + int(rng.integers(0, 12)), oy + int(rng.integers(0, 12)))
        for _ in range(int(rng.integers(4, 16)))
    }
    return DatasetNode.from_cells(dataset_id, cells, grid)


def _churn_corpus(grid: Grid, count: int, rng) -> list[DatasetNode]:
    extent = int(grid.space.width)
    return [
        _churn_dataset_node(
            grid,
            f"ds-{i:06d}",
            int(rng.integers(0, extent)),
            int(rng.integers(0, extent)),
            rng,
        )
        for i in range(count)
    ]


def _churn_queries(grid: Grid, count: int, rng) -> list[DatasetNode]:
    extent = int(grid.space.width)
    return [
        _churn_dataset_node(
            grid,
            f"__churn_query__{i}",
            int(rng.integers(0, extent)),
            int(rng.integers(0, extent)),
            rng,
        )
        for i in range(count)
    ]


def _local_search_checksum(index: DITSLocalIndex, queries, k: int, delta: float) -> int:
    """Order-sensitive CRC over OJSP + CJSP results for every query."""
    overlap = OverlapSearch(index)
    coverage = CoverageSearch(index)
    crc = 0
    for query in queries:
        result = overlap.search_node(query, k)
        payload = ";".join(f"{e.dataset_id}:{e.score:.6f}" for e in result.entries)
        crc = zlib.crc32(payload.encode(), crc)
        selection = coverage.search_node(query, k, delta)
        payload = ";".join(f"{e.dataset_id}:{e.score:.6f}" for e in selection.entries)
        crc = zlib.crc32(payload.encode(), crc)
    return crc


def fig24_local_index_churn(
    dataset_counts: Sequence[int] = (1000, 5000, 10000),
    churn_ops: int = 1000,
    query_count: int = 12,
    k: int = 5,
    delta: float = 6.0,
    leaf_capacity: int = 30,
    query_every: int = 50,
    seed: int = 7,
) -> list[dict]:
    """DITS-L query latency and tree height under sustained local churn.

    For every corpus size the driver replays the same drifting mutation
    stream — interleaved inserts (whose cluster center slides across the
    data space, the classic skew generator), deletes and far-moving updates,
    with a query every ``query_every`` operations — against three
    maintenance policies:

    * ``static`` — the legacy never-rebalance behaviour
      (``RebalancePolicy(enabled=False)``);
    * ``rebalance`` — the default alpha-balance policy with eager refits;
    * ``deferred`` — rebalancing plus burst-batched MBR re-tightening
      (``deferred_refit=True``).

    After the stream, each variant's query workload is timed (best of 5) and
    compared against ``rebuilt`` — a freshly bulk-built tree over the same
    final dataset set, the paper's implicit gold standard.  ``checksum`` is
    a CRC over the ordered OJSP/CJSP results of every probe query; because
    the searches are exact and canonically tie-broken, every variant must
    match the rebuilt tree bit-for-bit (asserted by the fig24 benchmark
    test).
    """
    from repro.index.dits_rebalance import RebalancePolicy

    variants = (
        ("static", lambda: RebalancePolicy(enabled=False)),
        ("rebalance", lambda: RebalancePolicy()),
        ("deferred", lambda: RebalancePolicy(deferred_refit=True)),
    )
    grid = _churn_grid()
    extent = int(grid.space.width)

    rows = []
    for count in dataset_counts:
        for label, policy_factory in variants:
            rng = np.random.default_rng(seed)
            corpus = _churn_corpus(grid, count, rng)
            queries = _churn_queries(grid, query_count, rng)
            op_rng = np.random.default_rng(seed + 1)

            index = DITSLocalIndex(leaf_capacity=leaf_capacity, rebalance=policy_factory())
            build_ms, _ = time_call(lambda: index.build(corpus))
            overlap = OverlapSearch(index)

            live_ids = [node.dataset_id for node in corpus]

            def churn() -> None:
                for op in range(churn_ops):
                    kind = op % 3
                    # Insert clusters drift corner-to-corner across the
                    # space so a non-rebalancing tree keeps splitting the
                    # same frontier region into an ever-deeper spine.
                    drift = int((op / max(churn_ops - 1, 1)) * (extent - 48))
                    if kind == 0 or not live_ids:
                        jitter = int(op_rng.integers(0, 48))
                        node = _churn_dataset_node(
                            grid, f"new-{op:06d}", drift + jitter, drift + jitter, op_rng
                        )
                        index.insert(node)
                        live_ids.append(node.dataset_id)
                    elif kind == 1:
                        victim = live_ids.pop(int(op_rng.integers(0, len(live_ids))))
                        index.delete(victim)
                    else:
                        moved_id = live_ids[int(op_rng.integers(0, len(live_ids)))]
                        node = _churn_dataset_node(
                            grid,
                            moved_id,
                            int(op_rng.integers(0, extent)),
                            int(op_rng.integers(0, extent)),
                            op_rng,
                        )
                        index.update(node)
                    if op % query_every == 0:
                        overlap.search_node(queries[op // query_every % len(queries)], k)

            churn_ms, _ = time_call(churn)

            def query_workload(idx: DITSLocalIndex) -> None:
                search = OverlapSearch(idx)
                cover = CoverageSearch(idx)
                for query in queries:
                    search.search_node(query, k)
                    cover.search_node(query, k, delta)

            # Best-of-5: the per-query latencies are small enough that one
            # scheduler hiccup would otherwise dominate the comparison.
            query_ms, _ = time_call(lambda: query_workload(index), repeats=5)

            rebuilt = DITSLocalIndex(leaf_capacity=leaf_capacity)
            rebuilt.build(list(index.nodes()))
            rebuilt_query_ms, _ = time_call(lambda: query_workload(rebuilt), repeats=5)

            maintenance = index.rebalance_stats.as_dict()
            rows.append(
                {
                    "datasets": count,
                    "variant": label,
                    "build_ms": build_ms,
                    "churn_ms": churn_ms,
                    "query_ms": query_ms,
                    "rebuilt_query_ms": rebuilt_query_ms,
                    "height": index.height(),
                    "rebuilt_height": rebuilt.height(),
                    "rebalances": maintenance["rebalance_count"],
                    "rebuilt_entries": maintenance["rebuilt_entries"],
                    "leaf_merges": maintenance["leaf_merges"],
                    "deferred_refits": maintenance["deferred_refits"],
                    "refit_flushes": maintenance["refit_flushes"],
                    "checksum": _local_search_checksum(index, queries, k, delta),
                    "rebuilt_checksum": _local_search_checksum(rebuilt, queries, k, delta),
                }
            )
    return rows
