"""Benchmark harness: workload construction, experiment drivers and reporting.

* :mod:`repro.bench.harness` — builds the synthetic corpora/indexes once per
  configuration and provides timing utilities.
* :mod:`repro.bench.experiments` — one driver per paper figure/table; each
  returns plain row dictionaries.
* :mod:`repro.bench.reporting` — renders rows as aligned text tables and CSV.
"""

from repro.bench.harness import ExperimentConfig, Workbench, time_call
from repro.bench.plots import ascii_line_chart, series_from_rows
from repro.bench.reporting import format_table, rows_to_csv

__all__ = [
    "ExperimentConfig",
    "Workbench",
    "ascii_line_chart",
    "format_table",
    "rows_to_csv",
    "series_from_rows",
    "time_call",
]
