"""Rendering experiment rows as text tables and CSV.

The experiment drivers return plain lists of dictionaries; these helpers
format them the way EXPERIMENTS.md and the benchmark console output present
them, keeping the drivers free of any formatting concerns.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence

__all__ = ["format_table", "rows_to_csv"]


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render ``rows`` as an aligned, pipe-separated text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render ``rows`` as CSV text (header from the first row's keys)."""
    if not rows:
        return ""
    import csv

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow({key: _fmt(value) for key, value in row.items()})
    return buffer.getvalue()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
