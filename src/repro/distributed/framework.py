"""End-to-end multi-source joinable search framework (Fig. 3).

:class:`MultiSourceFramework` is the top-level object a user interacts with:
it owns the data center, creates and registers data sources, accepts queries
as raw point collections or pre-gridded cell sets, and returns aggregated
OJSP/CJSP results together with the communication statistics accumulated by
the simulated channel.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.dataset import DatasetNode, SpatialDataset
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageResult, OverlapResult
from repro.distributed.center import DataCenter, DistributionPolicy
from repro.distributed.channel import ChannelStats, SimulatedChannel
from repro.distributed.executor import ExecutionPolicy
from repro.distributed.source import DataSource
from repro.index.dits_rebalance import RebalancePolicy
from repro.index.dits_global_sharded import ShardPolicy

__all__ = ["MultiSourceFramework"]


class MultiSourceFramework:
    """A data center plus its registered data sources behind one façade.

    Parameters
    ----------
    theta:
        Grid resolution used by the data center (and by sources created via
        :meth:`add_source` unless they override it).
    space:
        Geographic data space shared by the center grid and default source
        grids.
    leaf_capacity:
        DITS-L leaf capacity used by sources created via :meth:`add_source`.
    policy:
        Query-distribution policy (candidate routing / query clipping).
    bandwidth_bytes_per_second:
        Simulated network bandwidth used to derive transmission times.
    execution:
        Per-source dispatch policy (thread-pool fan-out vs. serial loop).
        ``None`` keeps the default concurrent fan-out; pass
        ``ExecutionPolicy.serial()`` for the sequential loop.  Both modes
        return bit-identical results.
    shard_policy:
        How DITS-G partitions source summaries across shards
        (:class:`~repro.index.dits_global_sharded.ShardPolicy`).  ``None``
        keeps the default policy; every shard count returns bit-identical
        candidates and results.
    rebalance:
        DITS-L rebalancing policy applied by sources created via
        :meth:`add_source` / :meth:`add_source_from_nodes` (``None`` keeps
        the default-enabled policy).  Any policy returns bit-identical
        search results; only maintenance cost and pruning power differ.
    """

    def __init__(
        self,
        theta: int = 12,
        space: BoundingBox | None = None,
        leaf_capacity: int = 30,
        policy: DistributionPolicy = DistributionPolicy(),
        bandwidth_bytes_per_second: float = 1_048_576,
        execution: ExecutionPolicy | None = None,
        shard_policy: ShardPolicy | None = None,
        rebalance: RebalancePolicy | None = None,
    ) -> None:
        self.grid = Grid(theta=theta, space=space) if space is not None else Grid(theta=theta)
        self.leaf_capacity = leaf_capacity
        self.rebalance = rebalance
        self.channel = SimulatedChannel(bandwidth_bytes_per_second=bandwidth_bytes_per_second)
        self.center = DataCenter(
            grid=self.grid,
            channel=self.channel,
            policy=policy,
            execution=execution,
            shard_policy=shard_policy,
        )

    def close(self) -> None:
        """Release the data center's dispatch thread pool."""
        self.center.close()

    # ------------------------------------------------------------------ #
    # Source management
    # ------------------------------------------------------------------ #
    def add_source(
        self,
        source_id: str,
        datasets: Iterable[SpatialDataset],
        theta: int | None = None,
        leaf_capacity: int | None = None,
    ) -> DataSource:
        """Create a data source over ``datasets``, index it and register it."""
        grid = (
            Grid(theta=theta, space=self.grid.space) if theta is not None else self.grid
        )
        source = DataSource(
            source_id=source_id,
            grid=grid,
            leaf_capacity=leaf_capacity if leaf_capacity is not None else self.leaf_capacity,
            rebalance=self.rebalance,
        )
        source.load_datasets(datasets)
        self.center.register_source(source)
        return source

    def add_source_from_nodes(self, source_id: str, nodes: Iterable[DatasetNode]) -> DataSource:
        """Create and register a source from pre-gridded dataset nodes (center grid)."""
        source = DataSource(
            source_id=source_id,
            grid=self.grid,
            leaf_capacity=self.leaf_capacity,
            rebalance=self.rebalance,
        )
        source.load_nodes(nodes)
        self.center.register_source(source)
        return source

    def source_ids(self) -> list[str]:
        """IDs of all registered sources."""
        return self.center.source_ids()

    def add_dataset(self, source_id: str, dataset: SpatialDataset) -> None:
        """Incrementally index a new dataset at ``source_id`` and refresh routing."""
        self.center.source(source_id).add_dataset(dataset)
        self.center.refresh_source(source_id)

    def update_dataset(self, source_id: str, dataset: SpatialDataset) -> None:
        """Re-index a changed dataset at ``source_id`` and refresh routing."""
        self.center.source(source_id).update_dataset(dataset)
        self.center.refresh_source(source_id)

    def remove_dataset(self, source_id: str, dataset_id: str) -> None:
        """Remove a dataset from ``source_id`` and refresh routing."""
        self.center.source(source_id).remove_dataset(dataset_id)
        self.center.refresh_source(source_id)

    def dataset_counts(self) -> Mapping[str, int]:
        """Number of datasets held by each registered source."""
        return {
            source_id: self.center.source(source_id).dataset_count()
            for source_id in self.center.source_ids()
        }

    # ------------------------------------------------------------------ #
    # Query construction
    # ------------------------------------------------------------------ #
    def query_from_points(
        self, coordinates: Sequence[Sequence[float]], query_id: str = "query"
    ) -> DatasetNode:
        """Grid a raw point collection into a query node under the center grid."""
        dataset = SpatialDataset.from_coordinates(query_id, coordinates)
        return dataset.to_node(self.grid)

    def query_from_dataset(self, dataset: SpatialDataset) -> DatasetNode:
        """Grid an existing :class:`SpatialDataset` into a query node."""
        return dataset.to_node(self.grid)

    # ------------------------------------------------------------------ #
    # Search entry points
    # ------------------------------------------------------------------ #
    def overlap_search(self, query: DatasetNode, k: int) -> OverlapResult:
        """Multi-source OJSP: the k datasets with maximum overlap with ``query``."""
        return self.center.overlap_search(query, k)

    def coverage_search(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Multi-source CJSP: maximise coverage with at most ``k`` connected datasets."""
        return self.center.coverage_search(query, k, delta)

    # ------------------------------------------------------------------ #
    # Communication accounting
    # ------------------------------------------------------------------ #
    def communication_stats(self) -> ChannelStats:
        """Snapshot of the traffic exchanged so far."""
        return self.channel.snapshot()

    def transmission_time_ms(self) -> float:
        """Simulated transmission time implied by the traffic so far."""
        return self.channel.transmission_time_ms()

    def reset_communication_stats(self) -> None:
        """Zero the traffic counters (used between benchmark repetitions)."""
        self.channel.reset()
