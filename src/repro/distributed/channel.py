"""Simulated communication channel between the data center and data sources.

The paper's Figs. 13–14 and 19–20 report *communication cost* (bytes
transferred) and *transmission time* (bytes divided by a fixed network
bandwidth).  :class:`SimulatedChannel` reproduces both metrics for an
in-process deployment: every message routed through :meth:`send` is measured
with :func:`repro.utils.sizeof.encoded_size` and tallied per direction, and
:meth:`transmission_time_ms` converts the byte total into milliseconds under
a configurable bandwidth.

The channel is thread-safe: the data center dispatches per-source requests
concurrently (see :mod:`repro.distributed.executor`), so every stats mutation
happens under a lock and concurrent sends can never drop a message or a byte
from the totals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.utils.sizeof import encoded_size

__all__ = ["ChannelStats", "SimulatedChannel"]

#: Default simulated bandwidth: 1 MiB/s, a conservative WAN figure.
DEFAULT_BANDWIDTH_BYTES_PER_SECOND = 1_048_576
#: Default per-message latency in milliseconds.
DEFAULT_LATENCY_MS = 0.5


@dataclass(slots=True)
class ChannelStats:
    """Aggregated traffic statistics for one simulated channel."""

    messages_sent: int = 0
    bytes_to_sources: int = 0
    bytes_to_center: int = 0
    per_source_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """All bytes that crossed the channel in either direction."""
        return self.bytes_to_sources + self.bytes_to_center


class SimulatedChannel:
    """Byte- and message-counting channel with a simple bandwidth/latency model."""

    def __init__(
        self,
        bandwidth_bytes_per_second: float = DEFAULT_BANDWIDTH_BYTES_PER_SECOND,
        latency_ms: float = DEFAULT_LATENCY_MS,
    ) -> None:
        if bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bytes_per_second = bandwidth_bytes_per_second
        self.latency_ms = latency_ms
        self.stats = ChannelStats()  # guarded-by: _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Traffic accounting
    # ------------------------------------------------------------------ #
    def send(self, message: object, destination: str, to_center: bool = False) -> int:
        """Account for ``message`` travelling to ``destination``; returns its size.

        ``to_center`` distinguishes upstream traffic (source -> center) from
        downstream traffic (center -> source) so the two directions can be
        reported separately.
        """
        size = encoded_size(message)
        with self._lock:
            self.stats.messages_sent += 1
            if to_center:
                self.stats.bytes_to_center += size
            else:
                self.stats.bytes_to_sources += size
            self.stats.per_source_bytes[destination] = (
                self.stats.per_source_bytes.get(destination, 0) + size
            )
        return size

    def reset(self) -> None:
        """Clear all accumulated statistics."""
        with self._lock:
            self.stats = ChannelStats()

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    def transmission_time_ms(self) -> float:
        """Total transmission time implied by the byte count and message count."""
        with self._lock:
            # Snapshot both counters together: reading them unlocked while a
            # concurrent send() lands between the two reads would pair a new
            # byte total with an old message count.
            total_bytes = self.stats.total_bytes
            messages_sent = self.stats.messages_sent
        transfer_ms = total_bytes / self.bandwidth_bytes_per_second * 1000.0
        return transfer_ms + messages_sent * self.latency_ms

    def snapshot(self) -> ChannelStats:
        """A consistent copy of the current statistics."""
        with self._lock:
            return ChannelStats(
                messages_sent=self.stats.messages_sent,
                bytes_to_sources=self.stats.bytes_to_sources,
                bytes_to_center=self.stats.bytes_to_center,
                per_source_bytes=dict(self.stats.per_source_bytes),
            )
