"""The data center: global index, query distribution and result aggregation.

The :class:`DataCenter` implements both query-distribution strategies of
Section VI-A:

1. **Candidate-source routing** — DITS-G is consulted first and a request is
   only sent to sources whose region intersects the query MBR (OJSP) or whose
   distance lower bound to the query is within the connectivity threshold
   (CJSP).
2. **Query clipping** — the request carries only the query cells falling
   inside the candidate source's (slightly expanded) region instead of the
   whole cell set, cutting the bytes per message.

Both strategies can be disabled independently, which is what the
communication-cost benchmarks use to emulate the broadcast-everything
baselines.

Candidate sources answer independently (the framework of Fig. 3 is
inherently parallel), so per-source request execution fans out over a thread
pool governed by :class:`~repro.distributed.executor.ExecutionPolicy`.
Responses are aggregated in candidate order regardless of completion order,
so parallel and serial dispatch return bit-identical results and byte totals.

DITS-G itself is sharded (:class:`~repro.index.dits_global_sharded.ShardedDITSGlobalIndex`):
source registration only rebuilds the touched shard, and candidate pruning
for large federations fans out across shards over the same dispatcher used
for per-source requests.  Shard count 1 reproduces the monolithic tree.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import DatasetNode
from repro.core.distance_engine import get_engine
from repro.core.errors import SourceNotFoundError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageResult, OverlapResult, ScoredDataset
from repro.distributed.channel import SimulatedChannel
from repro.distributed.executor import ExecutionPolicy, SourceDispatcher
from repro.distributed.messages import (
    CoverageRequest,
    CoverageResponse,
    OverlapRequest,
    OverlapResponse,
    RootUpload,
)
from repro.distributed.source import DataSource
from repro.index.dits_global import SourceSummary
from repro.index.dits_global_sharded import ShardedDITSGlobalIndex, ShardPolicy
from repro.utils import cellsets
from repro.utils.heaps import BoundedTopK

__all__ = ["DataCenter", "DistributionPolicy"]


@dataclass(frozen=True, slots=True)
class DistributionPolicy:
    """Which query-distribution optimisations the data center applies."""

    route_to_candidates: bool = True
    clip_query: bool = True


class _QueryCellView:
    """Per-search cache of a query's sorted cell vector and decoded centres.

    The sorted cell tuple (the no-clip request payload) is built once per
    query instead of once per candidate source, and the geographic centres of
    all query cells are batch-decoded lazily on the first clip so that every
    candidate rectangle costs one numpy mask instead of a per-cell Python
    ``cell_center``/``contains_point`` loop.
    """

    __slots__ = ("_grid", "_array", "_full", "_xs", "_ys")

    def __init__(self, query: DatasetNode, grid: Grid) -> None:
        self._grid = grid
        self._array = query.cells_array  # sorted unique int64, cached on the node
        self._full: tuple[int, ...] | None = None
        self._xs: np.ndarray | None = None
        self._ys: np.ndarray | None = None

    @property
    def full(self) -> tuple[int, ...]:
        """All query cells in ascending order (the unclipped payload)."""
        if self._full is None:
            self._full = tuple(self._array.tolist())
        return self._full

    def clipped_to(self, geo_rect: BoundingBox) -> tuple[int, ...]:
        """Query cells whose geographic centre falls inside ``geo_rect``."""
        if self._xs is None:
            self._xs, self._ys = self._grid.cell_centers_of_batch(self._array)
        mask = (
            (geo_rect.min_x <= self._xs)
            & (self._xs <= geo_rect.max_x)
            & (geo_rect.min_y <= self._ys)
            & (self._ys <= geo_rect.max_y)
        )
        if mask.all():
            return self.full
        return tuple(self._array[mask].tolist())


class DataCenter:
    """Coordinates multi-source joinable search over registered data sources."""

    def __init__(
        self,
        grid: Grid,
        channel: SimulatedChannel | None = None,
        policy: DistributionPolicy = DistributionPolicy(),
        global_leaf_capacity: int = 4,
        execution: ExecutionPolicy | None = None,
        shard_policy: ShardPolicy | None = None,
    ) -> None:
        self.grid = grid
        self.channel = channel if channel is not None else SimulatedChannel()
        self.policy = policy
        self._sources: dict[str, DataSource] = {}  # guarded-by: _sources_lock
        self._sources_lock = threading.Lock()
        self._query_counter = itertools.count()
        self._dispatcher = SourceDispatcher(execution)
        # DITS-G is sharded by default; shard pruning reuses the per-source
        # dispatch pool, so global routing and request fan-out share threads.
        self._global_index = ShardedDITSGlobalIndex(
            policy=shard_policy,
            leaf_capacity=global_leaf_capacity,
            dispatcher=self._dispatcher,
        )

    @property
    def execution(self) -> ExecutionPolicy:
        """The per-source dispatch policy in effect."""
        return self._dispatcher.policy

    def close(self) -> None:
        """Release the dispatch thread pool (the center stays usable)."""
        self._dispatcher.close()

    # ------------------------------------------------------------------ #
    # Source registration
    # ------------------------------------------------------------------ #
    def register_source(self, source: DataSource) -> None:
        """Register ``source``: receive its root upload and add it to DITS-G."""
        upload: RootUpload = source.root_upload()
        self.channel.send(upload, destination=source.source_id, to_center=True)
        summary = SourceSummary(
            source_id=upload.source_id,
            rect=BoundingBox(*upload.rect),
            dataset_count=upload.dataset_count,
        )
        # The source must be resolvable before it becomes routable: queries
        # racing this registration may see the summary as soon as it lands
        # in DITS-G and immediately dispatch a request to the source.  The
        # lock pairs that write with the reads on pool threads, which would
        # otherwise race the dict mutation itself.
        with self._sources_lock:
            self._sources[source.source_id] = source
        self._global_index.register(summary)

    def refresh_source(self, source_id: str) -> None:
        """Re-receive ``source_id``'s root summary after its datasets changed.

        Incremental inserts/updates at a source can grow or shrink its MBR;
        the source re-uploads its root summary and DITS-G is refreshed so
        query routing stays correct (Appendix IX-C applied at the global
        level).
        """
        source = self.source(source_id)
        upload: RootUpload = source.root_upload()
        self.channel.send(upload, destination=source_id, to_center=True)
        self._global_index.register(
            SourceSummary(
                source_id=upload.source_id,
                rect=BoundingBox(*upload.rect),
                dataset_count=upload.dataset_count,
            )
        )

    def source_ids(self) -> list[str]:
        """IDs of all registered sources."""
        with self._sources_lock:
            return sorted(self._sources)

    def source(self, source_id: str) -> DataSource:
        """The registered source object for ``source_id``."""
        try:
            with self._sources_lock:
                return self._sources[source_id]
        except KeyError as exc:
            raise SourceNotFoundError(source_id) from exc

    @property
    def global_index(self) -> ShardedDITSGlobalIndex:
        """The DITS-G global index (sharded; shard count 1 = one tree)."""
        return self._global_index

    # ------------------------------------------------------------------ #
    # Overlap joinable search (OJSP)
    # ------------------------------------------------------------------ #
    def overlap_search(self, query: DatasetNode, k: int) -> OverlapResult:
        """Run multi-source OJSP for ``query`` (cells in the center's grid)."""
        query_id = f"q{next(self._query_counter)}"
        query_geo_rect = self._grid_rect_to_geo(query.rect)
        candidates = self._candidate_sources(query_geo_rect, delta_geo=0.0)
        cell_view = _QueryCellView(query, self.grid)

        tasks: list[tuple[SourceSummary, OverlapRequest]] = []
        for summary in candidates:
            cells = (
                cell_view.clipped_to(summary.rect)
                if self.policy.clip_query
                else cell_view.full
            )
            if not cells:
                continue
            tasks.append(
                (
                    summary,
                    OverlapRequest(
                        query_id=query_id,
                        cells=cells,
                        query_rect=query_geo_rect.as_tuple(),
                        k=k,
                    ),
                )
            )

        responses = self._dispatcher.map(self._execute_overlap, tasks)

        heap: BoundedTopK[tuple[str, str]] = BoundedTopK(k)
        for (summary, _request), response in zip(tasks, responses):
            for dataset_id, score in response.results:
                heap.push(score, (summary.source_id, dataset_id))

        entries = tuple(
            ScoredDataset(dataset_id=dataset_id, score=score, source_id=source_id)
            for score, (source_id, dataset_id) in heap.items()
        )
        return OverlapResult(entries=entries)

    def _execute_overlap(
        self, task: tuple[SourceSummary, OverlapRequest]
    ) -> OverlapResponse:
        summary, request = task
        source = self.source(summary.source_id)
        self.channel.send(request, destination=summary.source_id)
        response = source.handle_overlap(request, self.grid)
        self.channel.send(response, destination=summary.source_id, to_center=True)
        return response

    # ------------------------------------------------------------------ #
    # Coverage joinable search (CJSP)
    # ------------------------------------------------------------------ #
    def coverage_search(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Run multi-source CJSP for ``query``.

        Every candidate source runs its local greedy search and proposes up to
        ``k`` datasets (with their cell sets translated into the center grid);
        the data center then runs a final greedy pass over the union of
        proposals, enforcing connectivity against the merged result, so the
        returned set is connected and at most ``k`` large.
        """
        query_id = f"q{next(self._query_counter)}"
        delta_geo = self._delta_to_geo(delta)
        query_geo_rect = self._grid_rect_to_geo(query.rect)
        candidates = self._candidate_sources(query_geo_rect, delta_geo=delta_geo)
        cell_view = _QueryCellView(query, self.grid)

        tasks: list[tuple[SourceSummary, CoverageRequest]] = []
        for summary in candidates:
            cells = (
                cell_view.clipped_to(summary.rect.expanded(delta_geo))
                if self.policy.clip_query
                else cell_view.full
            )
            if not cells:
                continue
            tasks.append(
                (
                    summary,
                    CoverageRequest(
                        query_id=query_id,
                        cells=cells,
                        query_rect=query_geo_rect.as_tuple(),
                        k=k,
                        delta=delta,
                    ),
                )
            )

        responses = self._dispatcher.map(self._execute_coverage, tasks)

        proposals: dict[str, tuple[str, frozenset[int]]] = {}
        for (summary, _request), response in zip(tasks, responses):
            for dataset_id, cell_tuple in response.selections:
                proposals[dataset_id] = (summary.source_id, frozenset(cell_tuple))

        return self._aggregate_coverage(query, k, delta, proposals)

    def _execute_coverage(
        self, task: tuple[SourceSummary, CoverageRequest]
    ) -> CoverageResponse:
        summary, request = task
        source = self.source(summary.source_id)
        self.channel.send(request, destination=summary.source_id)
        response = source.handle_coverage(request, self.grid)
        self.channel.send(response, destination=summary.source_id, to_center=True)
        return response

    def _aggregate_coverage(  # parity-critical
        self,
        query: DatasetNode,
        k: int,
        delta: float,
        proposals: dict[str, tuple[str, frozenset[int]]],
    ) -> CoverageResult:
        """Final greedy pass over the union of per-source proposals.

        The result set only ever grows, so connectivity against it is
        monotone: a candidate proven connected once stays connected, and a
        candidate that failed against earlier members only needs testing
        against the member added last round.  Each round's untested
        candidates are settled with the Lemma 4 bounds where decisive and one
        batched δ-bounded distance-engine call for the remainder, instead of
        per-candidate exact distances.  Marginal gains run on the vectorized
        cell-set kernels instead of rebuilding ``candidate.cells - covered``
        frozensets each round.  Selections and tie-breaks are identical to
        the exhaustive per-round rescan.
        """
        candidate_nodes: dict[str, DatasetNode] = {}
        source_of: dict[str, str] = {}
        for dataset_id, (source_id, cells) in proposals.items():
            if not cells:
                continue
            candidate_nodes[dataset_id] = DatasetNode.from_cells(dataset_id, cells, self.grid)
            source_of[dataset_id] = source_id

        use_vector = cellsets.use_vector()
        covered: set[int] = set() if use_vector else set(query.cells)
        covered_array = query.cells_array if use_vector else None
        entries: list[ScoredDataset] = []
        remaining = dict(candidate_nodes)
        ordered_ids = sorted(remaining)
        connected_ids: set[str] = set()
        last_member = query

        for _ in range(k):
            untested = [
                (dataset_id, node)
                for dataset_id in ordered_ids
                if (node := remaining.get(dataset_id)) is not None
                and dataset_id not in connected_ids
            ]
            if untested:
                mask = get_engine().connected_mask(
                    last_member, [node for _, node in untested], delta
                )
                connected_ids.update(
                    dataset_id for (dataset_id, _), ok in zip(untested, mask) if ok
                )
            best_id: str | None = None
            best_gain = 0
            for dataset_id in ordered_ids:
                node = remaining.get(dataset_id)
                if node is None:
                    continue
                if dataset_id not in connected_ids:
                    continue
                if use_vector:
                    gain = cellsets.difference_size(node.cells_array, covered_array)
                else:
                    gain = len(node.cells - covered)
                if gain > best_gain:
                    best_gain = gain
                    best_id = dataset_id
            if best_id is None or best_gain == 0:
                break
            node = remaining.pop(best_id)
            connected_ids.discard(best_id)
            if use_vector:
                covered_array = cellsets.union(covered_array, node.cells_array)
            else:
                covered |= node.cells
            last_member = node
            entries.append(
                ScoredDataset(
                    dataset_id=best_id, score=float(best_gain), source_id=source_of[best_id]
                )
            )

        total_coverage = int(covered_array.size) if use_vector else len(covered)
        return CoverageResult(
            entries=tuple(entries),
            total_coverage=total_coverage,
            query_coverage=len(query.cells),
        )

    # ------------------------------------------------------------------ #
    # Distribution strategy helpers
    # ------------------------------------------------------------------ #
    def _candidate_sources(self, query_geo_rect: BoundingBox, delta_geo: float) -> list[SourceSummary]:
        if self.policy.route_to_candidates:
            return self._global_index.candidate_sources(query_geo_rect, delta_geo)
        return list(self._global_index.all_summaries())

    def _grid_rect_to_geo(self, rect: BoundingBox) -> BoundingBox:
        return BoundingBox(
            self.grid.space.min_x + rect.min_x * self.grid.cell_width,
            self.grid.space.min_y + rect.min_y * self.grid.cell_height,
            self.grid.space.min_x + (rect.max_x + 1) * self.grid.cell_width,
            self.grid.space.min_y + (rect.max_y + 1) * self.grid.cell_height,
        )

    def _delta_to_geo(self, delta: float) -> float:
        """Convert a connectivity threshold in cell units to geographic units."""
        return delta * max(self.grid.cell_width, self.grid.cell_height)
