"""The data center: global index, query distribution and result aggregation.

The :class:`DataCenter` implements both query-distribution strategies of
Section VI-A:

1. **Candidate-source routing** — DITS-G is consulted first and a request is
   only sent to sources whose region intersects the query MBR (OJSP) or whose
   distance lower bound to the query is within the connectivity threshold
   (CJSP).
2. **Query clipping** — the request carries only the query cells falling
   inside the candidate source's (slightly expanded) region instead of the
   whole cell set, cutting the bytes per message.

Both strategies can be disabled independently, which is what the
communication-cost benchmarks use to emulate the broadcast-everything
baselines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.dataset import DatasetNode
from repro.core.errors import SourceNotFoundError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageResult, OverlapResult, ScoredDataset
from repro.distributed.channel import SimulatedChannel
from repro.distributed.messages import (
    CoverageRequest,
    CoverageResponse,
    OverlapRequest,
    OverlapResponse,
    RootUpload,
)
from repro.distributed.source import DataSource
from repro.index.dits_global import DITSGlobalIndex, SourceSummary
from repro.utils.heaps import BoundedTopK

__all__ = ["DataCenter", "DistributionPolicy"]


@dataclass(frozen=True, slots=True)
class DistributionPolicy:
    """Which query-distribution optimisations the data center applies."""

    route_to_candidates: bool = True
    clip_query: bool = True


class DataCenter:
    """Coordinates multi-source joinable search over registered data sources."""

    def __init__(
        self,
        grid: Grid,
        channel: SimulatedChannel | None = None,
        policy: DistributionPolicy = DistributionPolicy(),
        global_leaf_capacity: int = 4,
    ) -> None:
        self.grid = grid
        self.channel = channel if channel is not None else SimulatedChannel()
        self.policy = policy
        self._global_index = DITSGlobalIndex(leaf_capacity=global_leaf_capacity)
        self._sources: dict[str, DataSource] = {}
        self._query_counter = itertools.count()

    # ------------------------------------------------------------------ #
    # Source registration
    # ------------------------------------------------------------------ #
    def register_source(self, source: DataSource) -> None:
        """Register ``source``: receive its root upload and add it to DITS-G."""
        upload: RootUpload = source.root_upload()
        self.channel.send(upload, destination=source.source_id, to_center=True)
        summary = SourceSummary(
            source_id=upload.source_id,
            rect=BoundingBox(*upload.rect),
            dataset_count=upload.dataset_count,
        )
        self._global_index.register(summary)
        self._sources[source.source_id] = source

    def refresh_source(self, source_id: str) -> None:
        """Re-receive ``source_id``'s root summary after its datasets changed.

        Incremental inserts/updates at a source can grow or shrink its MBR;
        the source re-uploads its root summary and DITS-G is refreshed so
        query routing stays correct (Appendix IX-C applied at the global
        level).
        """
        source = self.source(source_id)
        upload: RootUpload = source.root_upload()
        self.channel.send(upload, destination=source_id, to_center=True)
        self._global_index.register(
            SourceSummary(
                source_id=upload.source_id,
                rect=BoundingBox(*upload.rect),
                dataset_count=upload.dataset_count,
            )
        )

    def source_ids(self) -> list[str]:
        """IDs of all registered sources."""
        return sorted(self._sources)

    def source(self, source_id: str) -> DataSource:
        """The registered source object for ``source_id``."""
        try:
            return self._sources[source_id]
        except KeyError as exc:
            raise SourceNotFoundError(source_id) from exc

    @property
    def global_index(self) -> DITSGlobalIndex:
        """The DITS-G global index."""
        return self._global_index

    # ------------------------------------------------------------------ #
    # Overlap joinable search (OJSP)
    # ------------------------------------------------------------------ #
    def overlap_search(self, query: DatasetNode, k: int) -> OverlapResult:
        """Run multi-source OJSP for ``query`` (cells in the center's grid)."""
        query_id = f"q{next(self._query_counter)}"
        query_geo_rect = self._grid_rect_to_geo(query.rect)
        candidates = self._candidate_sources(query_geo_rect, delta_geo=0.0)

        heap: BoundedTopK[tuple[str, str]] = BoundedTopK(k)
        for summary in candidates:
            source = self._sources[summary.source_id]
            cells = self._clip_cells(query, summary.rect)
            if not cells:
                continue
            request = OverlapRequest(
                query_id=query_id,
                cells=tuple(sorted(cells)),
                query_rect=query_geo_rect.as_tuple(),
                k=k,
            )
            self.channel.send(request, destination=summary.source_id)
            response: OverlapResponse = source.handle_overlap(request, self.grid)
            self.channel.send(response, destination=summary.source_id, to_center=True)
            for dataset_id, score in response.results:
                heap.push(score, (summary.source_id, dataset_id))

        entries = tuple(
            ScoredDataset(dataset_id=dataset_id, score=score, source_id=source_id)
            for score, (source_id, dataset_id) in heap.items()
        )
        return OverlapResult(entries=entries)

    # ------------------------------------------------------------------ #
    # Coverage joinable search (CJSP)
    # ------------------------------------------------------------------ #
    def coverage_search(self, query: DatasetNode, k: int, delta: float) -> CoverageResult:
        """Run multi-source CJSP for ``query``.

        Every candidate source runs its local greedy search and proposes up to
        ``k`` datasets (with their cell sets translated into the center grid);
        the data center then runs a final greedy pass over the union of
        proposals, enforcing connectivity against the merged result, so the
        returned set is connected and at most ``k`` large.
        """
        query_id = f"q{next(self._query_counter)}"
        delta_geo = self._delta_to_geo(delta)
        query_geo_rect = self._grid_rect_to_geo(query.rect)
        candidates = self._candidate_sources(query_geo_rect, delta_geo=delta_geo)

        proposals: dict[str, tuple[str, frozenset[int]]] = {}
        for summary in candidates:
            source = self._sources[summary.source_id]
            clip_rect = summary.rect.expanded(delta_geo)
            cells = self._clip_cells(query, clip_rect)
            if not cells:
                continue
            request = CoverageRequest(
                query_id=query_id,
                cells=tuple(sorted(cells)),
                query_rect=query_geo_rect.as_tuple(),
                k=k,
                delta=delta,
            )
            self.channel.send(request, destination=summary.source_id)
            response: CoverageResponse = source.handle_coverage(request, self.grid)
            self.channel.send(response, destination=summary.source_id, to_center=True)
            for dataset_id, cell_tuple in response.selections:
                proposals[dataset_id] = (summary.source_id, frozenset(cell_tuple))

        return self._aggregate_coverage(query, k, delta, proposals)

    def _aggregate_coverage(
        self,
        query: DatasetNode,
        k: int,
        delta: float,
        proposals: dict[str, tuple[str, frozenset[int]]],
    ) -> CoverageResult:
        candidate_nodes: dict[str, DatasetNode] = {}
        source_of: dict[str, str] = {}
        for dataset_id, (source_id, cells) in proposals.items():
            if not cells:
                continue
            candidate_nodes[dataset_id] = DatasetNode.from_cells(dataset_id, cells, self.grid)
            source_of[dataset_id] = source_id

        merged = query
        covered: set[int] = set(query.cells)
        entries: list[ScoredDataset] = []
        remaining = dict(candidate_nodes)
        from repro.core.connectivity import is_directly_connected  # local import avoids a cycle

        for _ in range(k):
            best_id: str | None = None
            best_gain = 0
            for dataset_id in sorted(remaining):
                node = remaining[dataset_id]
                if not is_directly_connected(node, merged, delta):
                    continue
                gain = len(node.cells - covered)
                if gain > best_gain:
                    best_gain = gain
                    best_id = dataset_id
            if best_id is None or best_gain == 0:
                break
            node = remaining.pop(best_id)
            covered |= node.cells
            merged = merged.merged_with(node, merged_id="__merged_query__")
            entries.append(
                ScoredDataset(
                    dataset_id=best_id, score=float(best_gain), source_id=source_of[best_id]
                )
            )

        return CoverageResult(
            entries=tuple(entries),
            total_coverage=len(covered),
            query_coverage=len(query.cells),
        )

    # ------------------------------------------------------------------ #
    # Distribution strategy helpers
    # ------------------------------------------------------------------ #
    def _candidate_sources(self, query_geo_rect: BoundingBox, delta_geo: float) -> list[SourceSummary]:
        if self.policy.route_to_candidates:
            return self._global_index.candidate_sources(query_geo_rect, delta_geo)
        return list(self._global_index.all_summaries())

    def _clip_cells(self, query: DatasetNode, geo_rect: BoundingBox) -> list[int]:
        """Cells of ``query`` whose geographic position falls inside ``geo_rect``."""
        if not self.policy.clip_query:
            return sorted(query.cells)
        kept = []
        for cell in query.cells:
            center = self.grid.cell_center(cell)
            if geo_rect.contains_point(center):
                kept.append(cell)
        return sorted(kept)

    def _grid_rect_to_geo(self, rect: BoundingBox) -> BoundingBox:
        return BoundingBox(
            self.grid.space.min_x + rect.min_x * self.grid.cell_width,
            self.grid.space.min_y + rect.min_y * self.grid.cell_height,
            self.grid.space.min_x + (rect.max_x + 1) * self.grid.cell_width,
            self.grid.space.min_y + (rect.max_y + 1) * self.grid.cell_height,
        )

    def _delta_to_geo(self, delta: float) -> float:
        """Convert a connectivity threshold in cell units to geographic units."""
        return delta * max(self.grid.cell_width, self.grid.cell_height)
