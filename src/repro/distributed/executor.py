"""Concurrent per-source query dispatch for the data center.

The Fig. 3 framework is inherently parallel: every candidate source answers a
request against its own local index, independently of the others, before the
data center aggregates.  The seed reproduction simulated that with a strictly
sequential per-source loop; this module provides the fan-out machinery.

:class:`ExecutionPolicy` selects between the serial loop (``max_workers <= 1``)
and a :class:`~concurrent.futures.ThreadPoolExecutor` fan-out, and
:class:`SourceDispatcher` owns the (lazily created, reused) pool.  Results are
always returned in *input order*, so aggregation at the center is
deterministic and bit-identical to the serial loop regardless of the order in
which sources finish (``tests/distributed/test_parallel_dispatch.py`` asserts
the parity).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import InvalidParameterError

__all__ = ["ExecutionPolicy", "SourceDispatcher"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Default fan-out width: enough to cover the paper's five-portal federation
#: without oversubscribing small machines.
DEFAULT_MAX_WORKERS = min(8, os.cpu_count() or 1)


@dataclass(frozen=True, slots=True)
class ExecutionPolicy:
    """How the data center executes per-source requests.

    ``max_workers <= 1`` selects the serial fallback (the seed behaviour);
    anything larger fans requests out over a shared thread pool.  Both modes
    produce identical results and identical channel byte totals.
    """

    max_workers: int = DEFAULT_MAX_WORKERS

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be at least 1, got {self.max_workers}"
            )

    @classmethod
    def serial(cls) -> "ExecutionPolicy":
        """The sequential per-source loop (no thread pool)."""
        return cls(max_workers=1)

    @property
    def parallel(self) -> bool:
        """Whether this policy dispatches concurrently."""
        return self.max_workers > 1


class SourceDispatcher:
    """Runs one callable per work item, serially or over a reusable pool.

    The pool is created on first parallel use and reused across queries, so
    per-query dispatch overhead is one task submission per source rather than
    a pool construction.
    """

    def __init__(self, policy: ExecutionPolicy | None = None) -> None:
        self.policy = policy if policy is not None else ExecutionPolicy()
        self._pool: ThreadPoolExecutor | None = None  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()

    def map(
        self,
        function: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
    ) -> list[ResultT]:
        """Apply ``function`` to every item; results come back in input order."""
        work: Sequence[ItemT] = items if isinstance(items, (list, tuple)) else list(items)
        if not self.policy.parallel or len(work) <= 1:
            return [function(item) for item in work]
        return list(self._ensure_pool().map(function, work))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Two threads can race the first parallel map (e.g. concurrent
        # searches against one shared center): without the lock both would
        # build a pool and one would leak its worker threads unshut.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.max_workers,
                    thread_name_prefix="repro-dispatch",
                )
            return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent; a closed dispatcher can be reused)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        # Shut down outside the lock: wait=True blocks until in-flight tasks
        # drain, and a task calling back into the dispatcher must not deadlock.
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "SourceDispatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
