"""Multi-source joinable search framework (Section IV and VI-A).

The framework mirrors Fig. 3 of the paper:

* every :class:`~repro.distributed.source.DataSource` owns its datasets and a
  DITS-L local index;
* the :class:`~repro.distributed.center.DataCenter` owns the DITS-G global
  index built from the root summaries the sources upload;
* all traffic between them flows through a
  :class:`~repro.distributed.channel.SimulatedChannel` that counts messages
  and bytes, from which communication cost and transmission time are derived;
* :class:`~repro.distributed.framework.MultiSourceFramework` wires everything
  together and exposes end-to-end ``overlap_search`` / ``coverage_search``.
"""

from repro.distributed.channel import ChannelStats, SimulatedChannel
from repro.distributed.center import DataCenter, DistributionPolicy
from repro.distributed.executor import ExecutionPolicy, SourceDispatcher
from repro.distributed.framework import MultiSourceFramework
from repro.distributed.messages import (
    CoverageRequest,
    CoverageResponse,
    OverlapRequest,
    OverlapResponse,
    RootUpload,
)
from repro.distributed.source import DataSource

__all__ = [
    "ChannelStats",
    "CoverageRequest",
    "CoverageResponse",
    "DataCenter",
    "DataSource",
    "DistributionPolicy",
    "ExecutionPolicy",
    "MultiSourceFramework",
    "OverlapRequest",
    "OverlapResponse",
    "RootUpload",
    "SimulatedChannel",
    "SourceDispatcher",
]
