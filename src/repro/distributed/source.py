"""A data source: owns its datasets, its DITS-L index and its local search.

Every :class:`DataSource` is autonomous (Section IV): it grids its own
datasets, builds its own DITS-L at its own resolution and leaf capacity, and
answers OJSP/CJSP requests arriving from the data center against its local
index only.  The only information it ever ships out unprompted is its root
summary (MBR + dataset count) in geographic coordinates.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.dataset import DatasetNode, SpatialDataset
from repro.core.errors import EmptyDatasetError
from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.distributed.messages import (
    CoverageRequest,
    CoverageResponse,
    OverlapRequest,
    OverlapResponse,
    RootUpload,
)
from repro.index.dits import DITSLocalIndex
from repro.index.dits_rebalance import RebalancePolicy
from repro.index.stats import local_index_stats
from repro.search.coverage import CoverageSearch
from repro.search.overlap import OverlapSearch

__all__ = ["DataSource", "grid_rect_to_geo"]


def grid_rect_to_geo(grid: Grid, rect: BoundingBox) -> BoundingBox:
    """Convert an MBR expressed in grid-cell coordinates to geographic coordinates."""
    return BoundingBox(
        grid.space.min_x + rect.min_x * grid.cell_width,
        grid.space.min_y + rect.min_y * grid.cell_height,
        grid.space.min_x + (rect.max_x + 1) * grid.cell_width,
        grid.space.min_y + (rect.max_y + 1) * grid.cell_height,
    )


class DataSource:
    """One autonomous spatial data source with a DITS-L local index."""

    def __init__(
        self,
        source_id: str,
        grid: Grid,
        leaf_capacity: int = 30,
        rebalance: RebalancePolicy | None = None,
    ) -> None:
        self.source_id = source_id
        self.grid = grid
        self._index = DITSLocalIndex(leaf_capacity=leaf_capacity, rebalance=rebalance)
        self._overlap_search = OverlapSearch(self._index)
        self._coverage_search = CoverageSearch(self._index)

    # ------------------------------------------------------------------ #
    # Loading data
    # ------------------------------------------------------------------ #
    def load_datasets(self, datasets: Iterable[SpatialDataset]) -> None:
        """Grid ``datasets`` and (re)build the local index over them."""
        nodes = [dataset.to_node(self.grid) for dataset in datasets]
        self._index.build(nodes)

    def load_nodes(self, nodes: Iterable[DatasetNode]) -> None:
        """(Re)build the local index directly from pre-gridded dataset nodes."""
        self._index.build(list(nodes))

    def add_dataset(self, dataset: SpatialDataset) -> None:
        """Incrementally index a new dataset."""
        self._index.insert(dataset.to_node(self.grid))

    def update_dataset(self, dataset: SpatialDataset) -> None:
        """Re-grid and re-index a dataset whose points changed.

        The local index relocates the dataset to a better leaf when it moved
        (and rebalances the tree if the churn skewed it), so a source can
        refresh datasets indefinitely without degrading its search bounds.
        """
        self._index.update(dataset.to_node(self.grid))

    def remove_dataset(self, dataset_id: str) -> None:
        """Remove a dataset from the local index."""
        self._index.delete(dataset_id)

    @property
    def index(self) -> DITSLocalIndex:
        """The source's DITS-L local index."""
        return self._index

    def dataset_count(self) -> int:
        """Number of datasets indexed by this source."""
        return len(self._index)

    def index_stats(self) -> dict[str, object]:
        """Shape and churn-maintenance statistics of the local index."""
        return local_index_stats(self._index)

    # ------------------------------------------------------------------ #
    # Root upload (DITS-G registration)
    # ------------------------------------------------------------------ #
    def root_upload(self) -> RootUpload:
        """The root summary shipped to the data center (geographic coordinates)."""
        if not self._index.is_built():
            raise EmptyDatasetError(f"source {self.source_id!r} has no datasets")
        rect, _pivot, _radius, count = self._index.root_summary()
        geo_rect = grid_rect_to_geo(self.grid, rect)
        return RootUpload(
            source_id=self.source_id,
            rect=geo_rect.as_tuple(),
            dataset_count=count,
        )

    def geographic_region(self) -> BoundingBox:
        """The geographic MBR of everything this source stores."""
        rect, _, _, _ = self._index.root_summary()
        return grid_rect_to_geo(self.grid, rect)

    # ------------------------------------------------------------------ #
    # Local query execution
    # ------------------------------------------------------------------ #
    def handle_overlap(self, request: OverlapRequest, center_grid: Grid) -> OverlapResponse:
        """Answer an OJSP request from the data center against the local index."""
        query_node = self._request_query_node(request.query_id, request.cells, center_grid)
        if query_node is None:
            return OverlapResponse(
                source_id=self.source_id, query_id=request.query_id, results=()
            )
        result = self._overlap_search.search_node(query_node, request.k)
        return OverlapResponse(
            source_id=self.source_id,
            query_id=request.query_id,
            results=tuple((entry.dataset_id, entry.score) for entry in result.entries),
        )

    def handle_coverage(self, request: CoverageRequest, center_grid: Grid) -> CoverageResponse:
        """Answer a CJSP request: run the local greedy search and return selections.

        The response carries, for every locally selected dataset, the full
        list of cells it covers translated back into the *center's* grid so
        the data center can compute global marginal gains and connectivity.
        """
        query_node = self._request_query_node(request.query_id, request.cells, center_grid)
        if query_node is None:
            return CoverageResponse(
                source_id=self.source_id, query_id=request.query_id, selections=()
            )
        result = self._coverage_search.search_node(query_node, request.k, request.delta)
        selections = []
        for entry in result.entries:
            if entry.dataset_id in request.exclude_ids:
                continue
            node = self._index.get(entry.dataset_id)
            center_cells = self._cells_to_center_grid(node.cells, center_grid)
            selections.append((entry.dataset_id, tuple(sorted(center_cells))))
        return CoverageResponse(
            source_id=self.source_id,
            query_id=request.query_id,
            selections=tuple(selections),
        )

    # ------------------------------------------------------------------ #
    # Grid translation helpers
    # ------------------------------------------------------------------ #
    def _request_query_node(
        self, query_id: str, cells: Sequence[int], center_grid: Grid
    ) -> DatasetNode | None:
        """Translate the request's cells (center grid) into a local query node."""
        if not cells:
            return None
        local_cells = self._cells_from_center_grid(cells, center_grid)
        if not local_cells:
            return None
        return DatasetNode.from_cells(f"__query__{query_id}", local_cells, self.grid)

    def _cells_from_center_grid(self, cells: Sequence[int], center_grid: Grid) -> set[int]:
        if self._same_grid(center_grid):
            return set(cells)
        return {center_grid.rescale_cell(cell, self.grid) for cell in cells}

    def _cells_to_center_grid(self, cells: Iterable[int], center_grid: Grid) -> set[int]:
        if self._same_grid(center_grid):
            return set(cells)
        return {self.grid.rescale_cell(cell, center_grid) for cell in cells}

    def _same_grid(self, other: Grid) -> bool:
        return other.theta == self.grid.theta and other.space == self.grid.space
