"""Message types exchanged between the data center and data sources.

Each message knows how to describe itself as a ``wire_payload`` — a plain
structure of numbers, strings and containers — which the simulated channel
feeds to :func:`repro.utils.sizeof.encoded_size` to account for the bytes a
real deployment would put on the network.  The query-distribution strategies
of Section VI-A are visible here: an :class:`OverlapRequest` or
:class:`CoverageRequest` carries only the *clipped* portion of the query's
cells that intersects the target source's region, not the whole query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.geometry import BoundingBox

__all__ = [
    "RootUpload",
    "OverlapRequest",
    "OverlapResponse",
    "CoverageRequest",
    "CoverageResponse",
]


@dataclass(frozen=True, slots=True)
class RootUpload:
    """A source uploading its DITS-L root summary to the data center."""

    source_id: str
    rect: tuple[float, float, float, float]
    dataset_count: int

    def wire_payload(self) -> dict[str, object]:
        """Payload used for byte accounting."""
        return {"source": self.source_id, "rect": list(self.rect), "count": self.dataset_count}


@dataclass(frozen=True, slots=True)
class OverlapRequest:
    """An OJSP request sent from the data center to one candidate source."""

    query_id: str
    cells: tuple[int, ...]
    query_rect: tuple[float, float, float, float]
    k: int

    def wire_payload(self) -> dict[str, object]:
        """Payload used for byte accounting."""
        return {
            "query": self.query_id,
            "cells": list(self.cells),
            "rect": list(self.query_rect),
            "k": self.k,
        }


@dataclass(frozen=True, slots=True)
class OverlapResponse:
    """A source's local OJSP answer: ``(dataset_id, overlap)`` pairs."""

    source_id: str
    query_id: str
    results: tuple[tuple[str, float], ...]

    def wire_payload(self) -> dict[str, object]:
        """Payload used for byte accounting."""
        return {
            "source": self.source_id,
            "query": self.query_id,
            "results": [[dataset_id, score] for dataset_id, score in self.results],
        }


@dataclass(frozen=True, slots=True)
class CoverageRequest:
    """A CJSP request sent from the data center to one candidate source.

    ``known_cells`` carries the cells already covered by the data center's
    partial result so the source can compute true marginal gains; it is
    clipped to the source's region for the same byte-saving reason as the
    query cells.
    """

    query_id: str
    cells: tuple[int, ...]
    query_rect: tuple[float, float, float, float]
    k: int
    delta: float
    known_cells: tuple[int, ...] = field(default=())
    exclude_ids: tuple[str, ...] = field(default=())

    def wire_payload(self) -> dict[str, object]:
        """Payload used for byte accounting."""
        return {
            "query": self.query_id,
            "cells": list(self.cells),
            "rect": list(self.query_rect),
            "k": self.k,
            "delta": self.delta,
            "known": list(self.known_cells),
            "exclude": list(self.exclude_ids),
        }


@dataclass(frozen=True, slots=True)
class CoverageResponse:
    """A source's local CJSP answer: selected datasets with their new cells."""

    source_id: str
    query_id: str
    selections: tuple[tuple[str, tuple[int, ...]], ...]

    def wire_payload(self) -> dict[str, object]:
        """Payload used for byte accounting."""
        return {
            "source": self.source_id,
            "query": self.query_id,
            "selections": [
                [dataset_id, list(cells)] for dataset_id, cells in self.selections
            ],
        }


def clip_cells_to_rect(
    cells: Sequence[int], cell_coords: Sequence[tuple[int, int]], rect: BoundingBox
) -> list[int]:
    """Keep the cells whose grid coordinates fall inside ``rect``.

    Helper shared by the data center's clipping strategy; ``cell_coords`` must
    be aligned with ``cells``.
    """
    return [
        cell
        for cell, (col, row) in zip(cells, cell_coords)
        if rect.min_x <= col <= rect.max_x and rect.min_y <= row <= rect.max_y
    ]
