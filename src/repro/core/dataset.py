"""Spatial datasets, cell-based datasets and DITS dataset nodes.

Three representations of the same data appear throughout the paper:

* :class:`SpatialDataset` — the raw collection of longitude/latitude points
  (Definition 2), identified by a string or integer ID.
* :class:`CellSet` — the *cell-based dataset* (Definition 5): the set of grid
  cell IDs touched by at least one point, produced by a :class:`Grid`.
* :class:`DatasetNode` — the per-dataset entry stored in DITS (Definition
  12): the dataset ID, its MBR, pivot, radius and its cell set.

All search algorithms consume :class:`DatasetNode` objects; the raw points
are only needed when building nodes or re-gridding at a different
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.errors import EmptyDatasetError
from repro.core.geometry import BoundingBox, Point
from repro.core.grid import Grid
from repro.utils import cellsets

__all__ = ["SpatialDataset", "CellSet", "DatasetNode"]

DatasetId = str


def _cached_cells_array(obj: "CellSet | DatasetNode") -> np.ndarray:
    """Shared lazy cache: sorted int64 vector of ``obj.cells``, computed once."""
    array = obj._cells_array
    if array is None:
        array = cellsets.as_cell_array(obj.cells)
        object.__setattr__(obj, "_cells_array", array)
    return array


@dataclass(frozen=True, slots=True)
class SpatialDataset:
    """A named collection of 2-D spatial points (Definition 2)."""

    dataset_id: DatasetId
    points: tuple[Point, ...]

    @classmethod
    def from_coordinates(
        cls, dataset_id: DatasetId, coordinates: "Iterable[Sequence[float]] | np.ndarray"
    ) -> "SpatialDataset":
        """Build a dataset from an iterable of ``(x, y)`` pairs."""
        if isinstance(coordinates, np.ndarray):
            # ``tolist`` yields native floats directly, avoiding a per-row
            # numpy scalar round-trip.
            points = tuple(Point(x, y) for x, y in coordinates.tolist())
        else:
            points = tuple(Point(float(x), float(y)) for x, y in coordinates)
        return cls(dataset_id=dataset_id, points=points)

    def __post_init__(self) -> None:
        if not self.points:
            raise EmptyDatasetError(f"dataset {self.dataset_id!r} has no points")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    @property
    def bounding_box(self) -> BoundingBox:
        """Minimum bounding rectangle of the points."""
        return BoundingBox.from_points(self.points)

    def to_cell_set(self, grid: Grid) -> "CellSet":
        """Discretise the dataset onto ``grid`` (Definition 5).

        Runs one vectorized discretisation pass over all points instead of a
        per-point Python loop; the resulting sorted cell vector is cached on
        the cell set so later set algebra can reuse it.
        """
        array = grid.cell_ids_of_batch(self.points)
        cell_set = CellSet(dataset_id=self.dataset_id, cells=frozenset(array.tolist()))
        object.__setattr__(cell_set, "_cells_array", array)
        return cell_set

    def to_node(self, grid: Grid) -> "DatasetNode":
        """Build the DITS dataset node for this dataset under ``grid``."""
        return DatasetNode.from_dataset(self, grid)


@dataclass(frozen=True, slots=True)
class CellSet:
    """A cell-based dataset: the set of grid cell IDs covered by a dataset."""

    dataset_id: DatasetId
    cells: frozenset[int]
    _cells_array: "np.ndarray | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.cells:
            raise EmptyDatasetError(f"cell set {self.dataset_id!r} is empty")

    @property
    def cells_array(self) -> np.ndarray:
        """Sorted int64 vector of the cell IDs (computed once, then cached)."""
        return _cached_cells_array(self)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cells)

    def __contains__(self, cell_id: int) -> bool:
        return cell_id in self.cells

    @property
    def coverage(self) -> int:
        """Spatial coverage: the number of distinct cells."""
        return len(self.cells)

    def overlap_with(self, other: "CellSet | frozenset[int] | set[int]") -> int:
        """Size of the intersection with another cell set."""
        if isinstance(other, CellSet):
            if cellsets.use_vector():
                return cellsets.intersection_size(self.cells_array, other.cells_array)
            other_cells = other.cells
        else:
            other_cells = other
        return len(self.cells & other_cells)

    def union_with(self, other: "CellSet | frozenset[int] | set[int]") -> frozenset[int]:
        """Union of the two cell sets."""
        other_cells = other.cells if isinstance(other, CellSet) else other
        return self.cells | other_cells

    def clipped_to(self, cell_ids: Iterable[int]) -> "CellSet | None":
        """Restrict this cell set to ``cell_ids``; ``None`` if nothing survives.

        Used by the query-distribution strategy that only ships the portion of
        the query intersecting a candidate source's MBR.
        """
        kept = self.cells & set(cell_ids)
        if not kept:
            return None
        return CellSet(dataset_id=self.dataset_id, cells=frozenset(kept))


@dataclass(frozen=True, slots=True)
class DatasetNode:
    """A DITS dataset node (Definition 12).

    Attributes
    ----------
    dataset_id:
        Identifier of the underlying dataset.
    rect:
        Minimum bounding rectangle of the dataset in grid coordinates (the
        same coordinate system as the cell IDs, so distances are in cell
        units and directly comparable with the connectivity threshold
        ``delta``).
    pivot:
        Centre of ``rect``.
    radius:
        Half of the diagonal of ``rect``.
    cells:
        The cell-based dataset.
    point_count:
        Number of raw points, kept for statistics and size accounting.
    """

    dataset_id: DatasetId
    rect: BoundingBox
    cells: frozenset[int]
    point_count: int = 0
    pivot: Point = field(init=False)
    radius: float = field(init=False)
    _cells_array: "np.ndarray | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.cells:
            raise EmptyDatasetError(f"dataset node {self.dataset_id!r} has no cells")
        object.__setattr__(self, "pivot", self.rect.center)
        object.__setattr__(self, "radius", self.rect.radius)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(cls, dataset: SpatialDataset, grid: Grid) -> "DatasetNode":
        """Build a node from raw points: discretise, then take the cell MBR."""
        array = grid.cell_ids_of_batch(dataset.points)
        return cls._from_cell_array(
            dataset.dataset_id, array, grid, point_count=len(dataset)
        )

    @classmethod
    def from_cells(
        cls,
        dataset_id: DatasetId,
        cells: Iterable[int],
        grid: Grid,
        point_count: int = 0,
    ) -> "DatasetNode":
        """Build a node directly from cell IDs under ``grid``."""
        array = cellsets.as_cell_array(cells)
        if array.size == 0:
            raise EmptyDatasetError(f"dataset node {dataset_id!r} has no cells")
        return cls._from_cell_array(dataset_id, array, grid, point_count)

    @classmethod
    def _from_cell_array(
        cls,
        dataset_id: DatasetId,
        array: np.ndarray,
        grid: Grid,
        point_count: int = 0,
    ) -> "DatasetNode":
        """Build a node from a sorted cell vector (one batch MBR computation)."""
        cols, rows = grid.cells_to_coords_batch(array)
        rect = BoundingBox(
            int(cols.min()), int(rows.min()), int(cols.max()), int(rows.max())
        )
        node = cls(
            dataset_id=dataset_id,
            rect=rect,
            cells=frozenset(array.tolist()),
            point_count=point_count or int(array.size),
        )
        object.__setattr__(node, "_cells_array", array)
        return node

    @property
    def cells_array(self) -> np.ndarray:
        """Sorted int64 vector of the cell IDs (computed once, then cached)."""
        return _cached_cells_array(self)

    @classmethod
    def from_cell_set(cls, cell_set: CellSet, grid: Grid, point_count: int = 0) -> "DatasetNode":
        """Build a node from an existing :class:`CellSet`."""
        return cls.from_cells(cell_set.dataset_id, cell_set.cells, grid, point_count)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def coverage(self) -> int:
        """Number of distinct cells covered by the dataset."""
        return len(self.cells)

    def overlap_with(self, other: "DatasetNode | frozenset[int] | set[int]") -> int:
        """Intersection size with another node or raw cell set."""
        if isinstance(other, DatasetNode):
            if cellsets.use_vector():
                return cellsets.intersection_size(self.cells_array, other.cells_array)
            other_cells = other.cells
        else:
            other_cells = other
        return len(self.cells & other_cells)

    def as_cell_set(self) -> CellSet:
        """The node's cell-based dataset as a :class:`CellSet`."""
        return CellSet(dataset_id=self.dataset_id, cells=self.cells)

    def wire_payload(self) -> dict[str, object]:
        """Compact representation used for communication-byte accounting."""
        return {
            "id": self.dataset_id,
            "rect": self.rect.as_tuple(),
            "cells": self.cells_array.tolist(),
        }

    def merged_with(self, other: "DatasetNode", merged_id: DatasetId = "merged") -> "DatasetNode":
        """Node covering the union of the two nodes' cells and MBRs.

        This is the *spatial merge* used by CoverageSearch: after a dataset is
        added to the result set, the query node is replaced by the merged node
        so only one connectivity search per iteration is required.
        """
        return DatasetNode(
            dataset_id=merged_id,
            rect=self.rect.union(other.rect),
            cells=self.cells | other.cells,
            point_count=self.point_count + other.point_count,
        )
