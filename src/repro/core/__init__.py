"""Core data model of the joinable spatial search library.

This subpackage contains the paper's primary abstractions:

* :mod:`repro.core.geometry` — points and minimum bounding rectangles.
* :mod:`repro.core.grid` — grid partition at resolution ``theta`` and the
  z-order cell encoding (Definitions 4–5).
* :mod:`repro.core.dataset` — spatial datasets, cell-based datasets and the
  dataset nodes stored in DITS (Definitions 2, 5 and 12).
* :mod:`repro.core.distance` — cell-based dataset distance and the node
  distance bounds of Lemma 4 (Definition 6).
* :mod:`repro.core.distance_engine` — batched one-vs-many exact distance
  kernels with bounded per-dataset geometry caching.
* :mod:`repro.core.connectivity` — direct/indirect connectivity and the
  spatial connectivity predicate (Definitions 7–9).
* :mod:`repro.core.problems` — OJSP and CJSP problem statements, exact
  scoring functions and result containers (Definitions 10–11).
"""

from repro.core.connectivity import (
    ConnectivityGraph,
    is_directly_connected,
    satisfies_spatial_connectivity,
)
from repro.core.dataset import CellSet, DatasetNode, SpatialDataset
from repro.core.distance import (
    cell_distance,
    cell_set_distance,
    node_distance_bounds,
)
from repro.core.distance_engine import DistanceEngine, get_engine, set_engine
from repro.core.errors import (
    DatasetNotFoundError,
    EmptyDatasetError,
    InvalidParameterError,
    ReproError,
)
from repro.core.geometry import BoundingBox, Point
from repro.core.grid import Grid
from repro.core.problems import (
    CoverageQuery,
    CoverageResult,
    OverlapQuery,
    OverlapResult,
    coverage_of,
    marginal_gain,
    overlap_of,
)

__all__ = [
    "BoundingBox",
    "CellSet",
    "ConnectivityGraph",
    "CoverageQuery",
    "CoverageResult",
    "DatasetNode",
    "DatasetNotFoundError",
    "DistanceEngine",
    "EmptyDatasetError",
    "Grid",
    "InvalidParameterError",
    "OverlapQuery",
    "OverlapResult",
    "Point",
    "ReproError",
    "SpatialDataset",
    "cell_distance",
    "cell_set_distance",
    "coverage_of",
    "get_engine",
    "is_directly_connected",
    "marginal_gain",
    "set_engine",
    "node_distance_bounds",
    "overlap_of",
    "satisfies_spatial_connectivity",
]
