"""Grid partition of a 2-D space at resolution ``theta`` (Definition 4).

The grid divides a rectangular *data space* into ``2**theta x 2**theta``
equal-sized cells.  Each cell is identified by a single non-negative integer
obtained from the z-order (Morton) interleaving of its column/row
coordinates, which keeps nearby cells numerically close.

A :class:`Grid` is the bridge between raw spatial points (longitude /
latitude) and the *cell-based dataset* representation (Definition 5) that all
search algorithms operate on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.geometry import BoundingBox, Point
from repro.utils.zorder import (
    zorder_decode,
    zorder_decode_batch,
    zorder_encode,
    zorder_encode_batch,
)

__all__ = ["Grid", "WORLD_SPACE"]

#: The whole-globe data space used by default (longitude x latitude degrees).
WORLD_SPACE = BoundingBox(-180.0, -90.0, 180.0, 90.0)

_MAX_THETA = 20


@dataclass(frozen=True, slots=True)
class Grid:
    """A ``2**theta x 2**theta`` uniform grid over ``space``.

    Parameters
    ----------
    theta:
        Resolution exponent; the paper evaluates ``theta in {10, .., 14}``.
    space:
        The data space covered by the grid.  Points outside the space are
        clamped onto the boundary cells so that slightly out-of-range
        coordinates (a common artefact of real GPS data) never raise.
    """

    theta: int
    space: BoundingBox = WORLD_SPACE

    def __post_init__(self) -> None:
        if not 1 <= self.theta <= _MAX_THETA:
            raise InvalidParameterError(
                f"theta must be in [1, {_MAX_THETA}], got {self.theta}"
            )
        if self.space.width <= 0 or self.space.height <= 0:
            raise InvalidParameterError("grid space must have positive extent")

    # ------------------------------------------------------------------ #
    # Basic quantities
    # ------------------------------------------------------------------ #
    @property
    def cells_per_side(self) -> int:
        """Number of cells along each axis (``2**theta``)."""
        return 1 << self.theta

    @property
    def total_cells(self) -> int:
        """Total number of cells in the grid."""
        return self.cells_per_side * self.cells_per_side

    @property
    def cell_width(self) -> float:
        """Width ``nu`` of a single cell."""
        return self.space.width / self.cells_per_side

    @property
    def cell_height(self) -> float:
        """Height ``mu`` of a single cell."""
        return self.space.height / self.cells_per_side

    # ------------------------------------------------------------------ #
    # Point <-> cell conversions
    # ------------------------------------------------------------------ #
    def cell_coords_of(self, point: Point | Sequence[float]) -> tuple[int, int]:
        """Grid coordinates ``(X, Y)`` of the cell containing ``point``.

        Points outside the data space are clamped to the border cells so
        that the mapping is total.
        """
        x, y = (point.x, point.y) if isinstance(point, Point) else (point[0], point[1])
        side = self.cells_per_side
        col = int((x - self.space.min_x) / self.cell_width)
        row = int((y - self.space.min_y) / self.cell_height)
        col = min(max(col, 0), side - 1)
        row = min(max(row, 0), side - 1)
        return col, row

    def cell_id_of(self, point: Point | Sequence[float]) -> int:
        """Z-order cell ID of the cell containing ``point``."""
        col, row = self.cell_coords_of(point)
        return zorder_encode(col, row)

    def cell_ids_of(self, points: Iterable[Point | Sequence[float]]) -> set[int]:
        """Set of cell IDs covered by ``points`` (the cell-based dataset)."""
        return set(self.cell_ids_of_batch(points).tolist())

    # ------------------------------------------------------------------ #
    # Batch point <-> cell conversions (the discretisation hot path)
    # ------------------------------------------------------------------ #
    def cell_coords_of_batch(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_coords_of`: ``(cols, rows)`` int64 vectors.

        Uses the same truncating division and border clamping as the scalar
        path, so results are element-wise identical for finite coordinates.
        Non-finite coordinates raise (the scalar path's ``int()`` would),
        and clamping happens before the int64 cast so out-of-range values
        land on the border cells instead of overflowing.
        """
        side = self.cells_per_side
        cols_f = (xs - self.space.min_x) / self.cell_width
        rows_f = (ys - self.space.min_y) / self.cell_height
        if not (np.isfinite(cols_f).all() and np.isfinite(rows_f).all()):
            raise ValueError("point coordinates must be finite")
        cols = np.clip(cols_f, 0, side - 1).astype(np.int64)
        rows = np.clip(rows_f, 0, side - 1).astype(np.int64)
        return cols, rows

    def cell_ids_of_batch(
        self, points: "Iterable[Point | Sequence[float]] | np.ndarray"
    ) -> np.ndarray:
        """Sorted unique int64 vector of the cell IDs covered by ``points``.

        This is the batch form of :meth:`cell_ids_of` (one vectorized
        discretisation pass instead of a per-point Python loop) and the
        canonical way to build a cell-based dataset.
        """
        xs, ys = _points_to_arrays(points)
        if xs.size == 0:
            return np.empty(0, dtype=np.int64)
        cols, rows = self.cell_coords_of_batch(xs, ys)
        return np.unique(zorder_encode_batch(cols, rows))

    def cells_to_coords_batch(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`coords_of_cell` over a cell-ID vector."""
        cell_ids = np.asarray(cell_ids)
        if cell_ids.size:
            lowest = int(cell_ids.min())
            highest = int(cell_ids.max())
            if lowest < 0 or highest >= self.total_cells:
                bad = lowest if lowest < 0 else highest
                raise InvalidParameterError(
                    f"cell id {bad} outside grid with {self.total_cells} cells"
                )
        return zorder_decode_batch(cell_ids)

    def cell_centers_of_batch(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_center`: geographic centres of a cell vector.

        Returns ``(xs, ys)`` float64 vectors computed with the exact same
        expression as the scalar path, so each element is bit-identical to
        ``cell_center(cell_id)``.  This is the decode step of the query-clipping
        hot path: the data center decodes a query's cells once and masks the
        centres against every candidate source rectangle with numpy.
        """
        cols, rows = self.cells_to_coords_batch(cell_ids)
        xs = self.space.min_x + (cols + 0.5) * self.cell_width
        ys = self.space.min_y + (rows + 0.5) * self.cell_height
        return xs, ys

    def coords_of_cell(self, cell_id: int) -> tuple[int, int]:
        """Grid coordinates ``(X, Y)`` of ``cell_id``."""
        self._validate_cell(cell_id)
        return zorder_decode(cell_id)

    def cell_id_from_coords(self, col: int, row: int) -> int:
        """Z-order cell ID of grid coordinates ``(col, row)``."""
        side = self.cells_per_side
        if not (0 <= col < side and 0 <= row < side):
            raise InvalidParameterError(
                f"cell coordinates ({col}, {row}) outside grid of side {side}"
            )
        return zorder_encode(col, row)

    def cell_center(self, cell_id: int) -> Point:
        """Geographic centre of ``cell_id``."""
        col, row = self.coords_of_cell(cell_id)
        return Point(
            self.space.min_x + (col + 0.5) * self.cell_width,
            self.space.min_y + (row + 0.5) * self.cell_height,
        )

    def cell_box(self, cell_id: int) -> BoundingBox:
        """Geographic bounding box of ``cell_id``."""
        col, row = self.coords_of_cell(cell_id)
        min_x = self.space.min_x + col * self.cell_width
        min_y = self.space.min_y + row * self.cell_height
        return BoundingBox(min_x, min_y, min_x + self.cell_width, min_y + self.cell_height)

    # ------------------------------------------------------------------ #
    # Region queries
    # ------------------------------------------------------------------ #
    def cells_in_box(self, box: BoundingBox) -> list[int]:
        """All cell IDs whose cells intersect ``box`` (clipped to the space)."""
        clipped = box.intersection(self.space)
        if clipped is None:
            return []
        min_col, min_row = self.cell_coords_of(Point(clipped.min_x, clipped.min_y))
        max_col, max_row = self.cell_coords_of(Point(clipped.max_x, clipped.max_y))
        return [
            zorder_encode(col, row)
            for row in range(min_row, max_row + 1)
            for col in range(min_col, max_col + 1)
        ]

    def cell_grid_distance(self, cell_a: int, cell_b: int) -> float:
        """Euclidean distance between two cells measured in grid units.

        This is the distance used by Definition 6: cell IDs are decomposed
        into their grid coordinates and compared with the L2 norm, so two
        horizontally adjacent cells are at distance 1.
        """
        ax, ay = self.coords_of_cell(cell_a)
        bx, by = self.coords_of_cell(cell_b)
        return math.hypot(ax - bx, ay - by)

    def neighbours_of(self, cell_id: int, radius: int = 1) -> list[int]:
        """Cell IDs within Chebyshev distance ``radius`` of ``cell_id`` (excluding it)."""
        if radius < 0:
            raise InvalidParameterError(f"radius must be non-negative, got {radius}")
        col, row = self.coords_of_cell(cell_id)
        side = self.cells_per_side
        neighbours = []
        for d_row in range(-radius, radius + 1):
            for d_col in range(-radius, radius + 1):
                if d_row == 0 and d_col == 0:
                    continue
                n_col, n_row = col + d_col, row + d_row
                if 0 <= n_col < side and 0 <= n_row < side:
                    neighbours.append(zorder_encode(n_col, n_row))
        return neighbours

    # ------------------------------------------------------------------ #
    # Conversions between grids of different resolution
    # ------------------------------------------------------------------ #
    def rescale_cell(self, cell_id: int, target: "Grid") -> int:
        """Map ``cell_id`` of this grid to the cell of ``target`` containing its centre.

        Used by the data center when sources build their local indexes at
        different resolutions (Section V-B): MBRs and pivots are exchanged in
        geographic coordinates and re-discretised on arrival.
        """
        return target.cell_id_of(self.cell_center(cell_id))

    def _validate_cell(self, cell_id: int) -> None:
        if not 0 <= cell_id < self.total_cells:
            raise InvalidParameterError(
                f"cell id {cell_id} outside grid with {self.total_cells} cells"
            )


def _points_to_arrays(
    points: "Iterable[Point | Sequence[float]] | np.ndarray",
) -> tuple[np.ndarray, np.ndarray]:
    """Split points into ``(xs, ys)`` float64 vectors without a per-point branch."""
    if isinstance(points, np.ndarray):
        if points.size == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
        array = points.astype(np.float64, copy=False).reshape(-1, 2)
        return np.ascontiguousarray(array[:, 0]), np.ascontiguousarray(array[:, 1])
    pts = points if isinstance(points, (list, tuple)) else list(points)
    count = len(pts)
    if count == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
    try:
        if isinstance(pts[0], Point):
            xs = np.fromiter((p.x for p in pts), dtype=np.float64, count=count)
            ys = np.fromiter((p.y for p in pts), dtype=np.float64, count=count)
        else:
            xs = np.fromiter((p[0] for p in pts), dtype=np.float64, count=count)
            ys = np.fromiter((p[1] for p in pts), dtype=np.float64, count=count)
    except (AttributeError, TypeError, IndexError):
        # Mixed Point/sequence input: fall back to a per-point branch.
        xs = np.empty(count, dtype=np.float64)
        ys = np.empty(count, dtype=np.float64)
        for i, p in enumerate(pts):
            xs[i], ys[i] = (p.x, p.y) if isinstance(p, Point) else (p[0], p[1])
    return xs, ys
