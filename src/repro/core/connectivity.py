"""Spatial connectivity between cell-based datasets (Definitions 7-9).

Two datasets are *directly connected* when their cell-based distance does not
exceed the threshold ``delta``.  A collection satisfies *spatial
connectivity* when every pair of datasets is directly or indirectly
connected, i.e. when the "directly connected" graph over the collection is
connected.

:class:`ConnectivityGraph` maintains that graph incrementally so CJSP result
sets can be validated cheaply, and the module-level helpers provide one-shot
predicates used by tests and by the baseline (non-indexed) greedy search.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.dataset import DatasetNode
from repro.core.distance import (
    node_distance_lower_bound,
    node_distance_upper_bound,
)
from repro.core.distance_engine import get_engine
from repro.core.errors import InvalidParameterError

__all__ = [
    "is_directly_connected",
    "satisfies_spatial_connectivity",
    "connected_components",
    "ConnectivityGraph",
]


def is_directly_connected(node_a: DatasetNode, node_b: DatasetNode, delta: float) -> bool:
    """Whether two dataset nodes are directly connected under threshold ``delta``.

    The Lemma 4 bounds are used to avoid the exact (quadratic) distance
    whenever they are decisive: if even the upper bound is within ``delta``
    the nodes must be connected, and if the lower bound already exceeds
    ``delta`` they cannot be.  Border cases fall through to the distance
    engine's δ-bounded exact predicate, which stops as soon as any cell pair
    is within ``delta`` instead of computing the true minimum.
    """
    if delta < 0:
        raise InvalidParameterError(f"delta must be non-negative, got {delta}")
    if node_distance_upper_bound(node_a, node_b) <= delta:
        return True
    if node_distance_lower_bound(node_a, node_b) > delta:
        return False
    return get_engine().within_delta(node_a, node_b, delta)


def connected_components(
    nodes: Sequence[DatasetNode], delta: float
) -> list[set[str]]:
    """Partition ``nodes`` into connected components of the delta-graph."""
    graph = ConnectivityGraph(delta)
    for node in nodes:
        graph.add_node(node)
    return graph.components()


def satisfies_spatial_connectivity(nodes: Sequence[DatasetNode], delta: float) -> bool:
    """Whether the collection ``nodes`` satisfies spatial connectivity (Definition 9)."""
    if not nodes:
        return True
    return len(connected_components(nodes, delta)) == 1


class ConnectivityGraph:
    """Incremental connectivity structure over dataset nodes.

    Nodes are added one at a time; edges to previously added nodes are
    materialised using :func:`is_directly_connected`, and a union-find keeps
    track of the components.  This matches how CJSP result sets grow: the
    greedy algorithm adds one dataset per iteration and must keep the result
    connected to the query.
    """

    def __init__(self, delta: float) -> None:
        if delta < 0:
            raise InvalidParameterError(f"delta must be non-negative, got {delta}")
        self._delta = delta
        self._nodes: dict[str, DatasetNode] = {}
        self._parent: dict[str, str] = {}
        self._rank: dict[str, int] = {}
        self._adjacency: dict[str, set[str]] = {}

    # ------------------------------------------------------------------ #
    # Union-find plumbing
    # ------------------------------------------------------------------ #
    def _find(self, node_id: str) -> str:
        root = node_id
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node_id] != root:
            self._parent[node_id], node_id = root, self._parent[node_id]
        return root

    def _union(self, id_a: str, id_b: str) -> None:
        root_a, root_b = self._find(id_a), self._find(id_b)
        if root_a == root_b:
            return
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def delta(self) -> float:
        """Connectivity threshold in grid-cell units."""
        return self._delta

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node: DatasetNode) -> set[str]:
        """Add ``node`` and return the IDs it is directly connected to.

        The candidate frontier is batched: the Lemma 4 bounds settle most
        existing nodes, and the undecided remainder is resolved with one
        vectorized δ-bounded engine call instead of per-pair exact distances.
        """
        if node.dataset_id in self._nodes:
            return set(self._adjacency[node.dataset_id])
        neighbours: set[str] = set()
        if self._nodes:
            others = list(self._nodes.values())
            mask = get_engine().connected_mask(node, others, self._delta)
            neighbours = {other.dataset_id for other, ok in zip(others, mask) if ok}
        self._nodes[node.dataset_id] = node
        self._parent[node.dataset_id] = node.dataset_id
        self._rank[node.dataset_id] = 0
        self._adjacency[node.dataset_id] = set(neighbours)
        for other_id in neighbours:
            self._adjacency[other_id].add(node.dataset_id)
            self._union(node.dataset_id, other_id)
        return neighbours

    def add_nodes(self, nodes: Iterable[DatasetNode]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def are_connected(self, id_a: str, id_b: str) -> bool:
        """Whether the two datasets are directly or indirectly connected."""
        if id_a not in self._nodes or id_b not in self._nodes:
            return False
        return self._find(id_a) == self._find(id_b)

    def is_connected_to_any(self, node: DatasetNode, ids: Iterable[str]) -> bool:
        """Whether ``node`` would be directly connected to any member of ``ids``."""
        return any(
            other_id in self._nodes
            and is_directly_connected(node, self._nodes[other_id], self._delta)
            for other_id in ids
        )

    def components(self) -> list[set[str]]:
        """Connected components as sets of dataset IDs (deterministic order)."""
        groups: dict[str, set[str]] = {}
        for node_id in self._nodes:
            groups.setdefault(self._find(node_id), set()).add(node_id)
        return [groups[root] for root in sorted(groups)]

    def is_fully_connected(self) -> bool:
        """Whether all added nodes form a single component."""
        if not self._nodes:
            return True
        return len(self.components()) == 1

    def adjacency(self) -> Mapping[str, set[str]]:
        """Read-only view of the direct-connection adjacency lists."""
        return {node_id: set(neigh) for node_id, neigh in self._adjacency.items()}
