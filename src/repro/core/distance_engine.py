"""Batched exact cell-set distance kernels with bounded per-dataset caching.

Every CJSP algorithm ultimately asks one of two questions about Definition 6
distances, and both come in a *one-vs-many* shape:

* ``within_delta(a, b, delta)`` / ``within_delta_many(query, candidates,
  delta)`` / ``connected_mask(...)`` — the exact connectivity predicate
  ``dist(S_A, S_B) <= delta``, which never needs the true minimum, only
  whether *any* cell pair is within ``delta``.  This is the question the
  greedy rounds, FindConnectSet and the connectivity graph actually ask,
  and what every rewired hot path runs on.
* ``min_distances(query, candidates)`` — the exact distance from one node to
  each of many candidate nodes, for callers that need true distances rather
  than the predicate (diagnostics, ranking, the differential test suites).

The :class:`DistanceEngine` serves both shapes from shared state: decoded
``(x, y)`` coordinate arrays and reusable :class:`~scipy.spatial.cKDTree`
instances are cached per dataset id in a bounded LRU (replacing the seed's
per-frozenset ``lru_cache``, which pinned up to 8 192 whole cell sets by
value with no notion of dataset identity or invalidation), and the batched
kernels stack
all candidate cells into a single array with an owner-index vector so one
KD-tree query plus a ``numpy`` segment reduction replaces a Python loop of
per-pair tree builds.

Exactness
---------
Grid coordinates are integers, so squared cell distances are exact integers
far below ``2**53``: every path (brute-force broadcast, plain KD-tree query,
``distance_upper_bound``-pruned KD-tree query) computes the same float64
distances bit-for-bit, and the ``delta`` predicate is exact by construction.
Two structural facts are additionally exploited:

* two *distinct* cells are at distance >= 1, so ``dist <= delta`` with
  ``delta < 1`` reduces to "the sets share a cell" — resolved with one sorted
  intersection and no floating point at all (this also sidesteps the
  underflow of squaring a subnormal ``distance_upper_bound`` at ``delta=0``);
* the KD-tree upper bound is widened to ``nextafter(delta, inf)`` and the
  returned distances re-checked against ``delta`` itself, so the predicate
  does not depend on whether SciPy treats the bound inclusively.

Cache coherence is by *identity*: an entry is only reused while the node's
``cells`` frozenset is the same object that populated it.  Rebuilding a
dataset under the same id (a refreshed source, a different grid resolution,
CoverageSearch's per-iteration ``__merged_query__`` node) therefore can never
serve stale geometry — the entry is invalidated and recomputed.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import NamedTuple, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError
from repro.utils import cellsets
from repro.utils.zorder import zorder_decode_batch

__all__ = [
    "KDTREE_PAIR_THRESHOLD",
    "DistanceCacheInfo",
    "DistanceEngine",
    "cell_coords_of_array",
    "get_engine",
    "min_coords_distance",
    "set_engine",
]

#: Environment variable naming the per-dataset geometry cache capacity.
#: Read when an engine is constructed (not at import), so setting it before
#: the first distance computation always takes effect.
_CACHE_SIZE_ENV = "REPRO_DISTANCE_CACHE_SIZE"
_FALLBACK_CACHE_SIZE = 4_096

#: Below this pairwise-comparison count a brute-force broadcast beats
#: building/querying a KD-tree.  The single switch-over constant for every
#: exact-distance path (engine kernels and the stateless reference kernel).
KDTREE_PAIR_THRESHOLD = 2_048


def _env_cache_size() -> int:
    raw = os.environ.get(_CACHE_SIZE_ENV)
    if raw is None:
        return _FALLBACK_CACHE_SIZE
    try:
        return int(raw)
    except ValueError as exc:
        raise InvalidParameterError(
            f"{_CACHE_SIZE_ENV} must be an integer, got {raw!r}"
        ) from exc


def cell_coords_of_array(cells_array: np.ndarray) -> np.ndarray:
    """Decoded ``(x, y)`` grid coordinates of a sorted cell-ID vector.

    Returns an ``(n, 2)`` float64 array in the order of ``cells_array``.
    """
    xs, ys = zorder_decode_batch(cells_array)
    coords = np.empty((cells_array.size, 2), dtype=np.float64)
    coords[:, 0] = xs
    coords[:, 1] = ys
    return coords


def min_coords_distance(coords_a: np.ndarray, coords_b: np.ndarray) -> float:
    """Minimum pairwise Euclidean distance between two coordinate arrays.

    The stateless scalar kernel shared by :func:`repro.core.distance.cell_set_distance`
    and the engine: a brute-force broadcast below :data:`KDTREE_PAIR_THRESHOLD`
    pairs, one KD-tree nearest-neighbour pass (tree over the smaller side)
    above it.  On integer grid coordinates both paths are exact in float64
    and bit-identical.
    """
    if coords_a.shape[0] * coords_b.shape[0] <= KDTREE_PAIR_THRESHOLD:
        deltas = coords_a[:, None, :] - coords_b[None, :, :]
        squared = np.einsum("ijk,ijk->ij", deltas, deltas)
        return float(np.sqrt(squared.min()))
    if coords_a.shape[0] > coords_b.shape[0]:
        coords_a, coords_b = coords_b, coords_a
    distances, _ = cKDTree(coords_a).query(coords_b, k=1)
    return float(distances.min())


class DistanceCacheInfo(NamedTuple):
    """Counters describing the engine's cache and kernel activity."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    currsize: int
    maxsize: int
    trees_built: int
    batch_queries: int
    pair_queries: int


class _NodeGeometry:
    """Cached geometry of one dataset node: decoded coords + lazy KD-tree."""

    __slots__ = ("cells", "coords", "tree")

    def __init__(self, cells: frozenset[int], coords: np.ndarray) -> None:
        self.cells = cells  # identity token guarding reuse
        self.coords = coords
        self.tree: cKDTree | None = None


class DistanceEngine:
    """One-vs-many exact cell-set distance kernels over cached geometry.

    Thread-safe: the cache is guarded by a lock (per-source dispatch runs
    coverage searches concurrently), while the numpy/KD-tree work happens
    outside it.  ``cKDTree`` queries are read-only and safe to share.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        size = _env_cache_size() if max_entries is None else max_entries
        if size <= 0:
            raise InvalidParameterError(
                f"distance cache size must be positive, got {size}"
            )
        self._max_entries = size
        self._cache: "OrderedDict[str, _NodeGeometry]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock
        self._trees_built = 0  # guarded-by: _lock
        self._batch_queries = 0  # guarded-by: _lock
        self._pair_queries = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    # Geometry cache
    # ------------------------------------------------------------------ #
    @property
    def max_entries(self) -> int:
        """Capacity of the per-dataset geometry cache."""
        return self._max_entries

    def _geometry_of(self, node: DatasetNode) -> _NodeGeometry:
        key = node.dataset_id
        cells = node.cells
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                if entry.cells is cells:
                    self._hits += 1
                    self._cache.move_to_end(key)
                    return entry
                # Same id, different cell set (refreshed dataset, another
                # grid resolution, a rebuilt merged node): never reuse.
                self._invalidations += 1
            self._misses += 1
        coords = cell_coords_of_array(node.cells_array)
        entry = _NodeGeometry(cells, coords)
        with self._lock:
            self._cache[key] = entry
            self._cache.move_to_end(key)
            while len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)
                self._evictions += 1
        return entry

    def coords_of(self, node: DatasetNode) -> np.ndarray:
        """Decoded ``(n, 2)`` coordinate array of ``node``'s cells (cached)."""
        return self._geometry_of(node).coords

    def tree_of(self, node: DatasetNode) -> cKDTree:
        """Reusable KD-tree over ``node``'s cell coordinates (cached, lazy)."""
        return self._tree_for(self._geometry_of(node))

    def _tree_for(self, entry: _NodeGeometry) -> cKDTree:
        tree = entry.tree
        if tree is None:
            tree = cKDTree(entry.coords)
            entry.tree = tree  # benign race: both winners are equivalent
            with self._lock:
                self._trees_built += 1
        return tree

    def cache_info(self) -> DistanceCacheInfo:
        """Cache and kernel counters (monotone except ``currsize``)."""
        with self._lock:
            return DistanceCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                currsize=len(self._cache),
                maxsize=self._max_entries,
                trees_built=self._trees_built,
                batch_queries=self._batch_queries,
                pair_queries=self._pair_queries,
            )

    def clear(self) -> None:
        """Drop all cached geometry (counters are preserved)."""
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------ #
    # Batched kernels
    # ------------------------------------------------------------------ #
    def _stack(
        self, candidates: Sequence[DatasetNode]
    ) -> tuple[np.ndarray, np.ndarray]:
        """All candidate coords in one array + segment start offsets."""
        geoms = [self._geometry_of(candidate) for candidate in candidates]
        counts = np.fromiter(
            (geom.coords.shape[0] for geom in geoms), dtype=np.intp, count=len(geoms)
        )
        offsets = np.zeros(len(geoms), dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        stacked = (
            geoms[0].coords if len(geoms) == 1 else np.concatenate([g.coords for g in geoms])
        )
        return stacked, offsets

    def _nearest_to(
        self, query: _NodeGeometry, stacked: np.ndarray, bound: float | None = None
    ) -> np.ndarray:
        """Distance from each stacked point to its nearest cell of ``query``.

        Takes the already-resolved geometry so each batched kernel performs
        exactly one cache access for the query node (a node without a stable
        id, like CoverageSearch's merged query, is then looked up at most
        once per call even under concurrent searches).  With ``bound`` the
        KD-tree search is pruned at that radius and points with no neighbour
        inside it report ``inf``.  Small workloads take the brute-force
        broadcast instead (bit-identical distances).
        """
        if query.coords.shape[0] * stacked.shape[0] <= KDTREE_PAIR_THRESHOLD:
            deltas = stacked[:, None, :] - query.coords[None, :, :]
            squared = np.einsum("ijk,ijk->ij", deltas, deltas)
            return np.sqrt(squared.min(axis=1))
        tree = self._tree_for(query)
        if bound is None:
            distances, _ = tree.query(stacked, k=1)
        else:
            distances, _ = tree.query(stacked, k=1, distance_upper_bound=bound)
        return distances

    def min_distances(  # parity-critical
        self, query: DatasetNode, candidates: Sequence[DatasetNode]
    ) -> np.ndarray:
        """Exact Definition 6 distance from ``query`` to each candidate.

        One KD-tree over ``query``'s cells answers all candidates: their cell
        coordinates are stacked into a single array, nearest-neighbour
        distances are computed in one batched query and reduced per candidate
        with ``np.minimum.reduceat``.  Element ``i`` is bit-identical to
        ``cell_set_distance(query.cells, candidates[i].cells)``.
        """
        if not candidates:
            return np.empty(0, dtype=np.float64)
        stacked, offsets = self._stack(candidates)
        distances = self._nearest_to(self._geometry_of(query), stacked)
        with self._lock:
            self._batch_queries += 1
        return np.minimum.reduceat(distances, offsets)

    def within_delta_many(  # parity-critical
        self, query: DatasetNode, candidates: Sequence[DatasetNode], delta: float
    ) -> np.ndarray:
        """Exact boolean vector ``dist(query, candidate) <= delta`` per candidate.

        The KD-tree query is pruned at radius ``delta`` (``distance_upper_bound``),
        so the per-point search stops as soon as any cell pair is close enough
        instead of computing the true minimum.  For ``delta < 1`` the predicate
        degenerates to shared-cell membership on the integer grid and is
        answered with sorted intersections only.
        """
        if delta < 0:
            raise InvalidParameterError(f"delta must be non-negative, got {delta}")
        if not candidates:
            return np.zeros(0, dtype=bool)
        if delta < 1.0:
            # Distinct cells are >= 1 apart on the integer grid.
            query_array = query.cells_array
            return np.fromiter(
                (
                    cellsets.intersection_size(query_array, candidate.cells_array) > 0
                    for candidate in candidates
                ),
                dtype=bool,
                count=len(candidates),
            )
        stacked, offsets = self._stack(candidates)
        bound = np.nextafter(delta, np.inf)
        distances = self._nearest_to(self._geometry_of(query), stacked, bound=bound)
        with self._lock:
            self._batch_queries += 1
        return np.logical_or.reduceat(distances <= delta, offsets)

    def connected_mask(  # parity-critical
        self, query: DatasetNode, candidates: Sequence[DatasetNode], delta: float
    ) -> np.ndarray:
        """:meth:`within_delta_many` with a Lemma 4 bounds pre-pass.

        Candidates whose pivot/radius bounds are decisive are settled without
        touching their cells; only the undecided remainder enters the batched
        δ-bounded verification.  Element-wise identical to
        ``[dist(query, c) <= delta for c in candidates]``.
        """
        # Deferred import: repro.core.distance imports this module at top
        # level, so the bounds helper (one definition for every caller) is
        # resolved lazily here.
        from repro.core.distance import node_distance_bounds

        if delta < 0:
            raise InvalidParameterError(f"delta must be non-negative, got {delta}")
        result = np.zeros(len(candidates), dtype=bool)
        pending_nodes: list[DatasetNode] = []
        pending_index: list[int] = []
        for i, candidate in enumerate(candidates):
            lower, upper = node_distance_bounds(query, candidate)
            if upper <= delta:
                result[i] = True
            elif lower > delta:
                continue
            else:
                pending_index.append(i)
                pending_nodes.append(candidate)
        if pending_nodes:
            result[pending_index] = self.within_delta_many(query, pending_nodes, delta)
        return result

    # ------------------------------------------------------------------ #
    # Pairwise kernels
    # ------------------------------------------------------------------ #
    def within_delta(self, node_a: DatasetNode, node_b: DatasetNode, delta: float) -> bool:
        """Exact predicate ``dist(S_A, S_B) <= delta`` with early exit.

        Equivalent to ``cell_set_distance(node_a.cells, node_b.cells) <=
        delta`` but never computes the true minimum: shared cells resolve via
        one sorted intersection, and the KD-tree search is pruned at radius
        ``delta``.
        """
        if delta < 0:
            raise InvalidParameterError(f"delta must be non-negative, got {delta}")
        array_a = node_a.cells_array
        array_b = node_b.cells_array
        if cellsets.intersection_size(array_a, array_b) > 0:
            return True
        if delta < 1.0:
            return False
        with self._lock:
            self._pair_queries += 1
        # Tree over the larger set (amortised by the cache), probe the smaller.
        if array_a.size < array_b.size:
            node_a, node_b = node_b, node_a
        probe = self._geometry_of(node_b).coords
        distances = self._nearest_to(
            self._geometry_of(node_a), probe, bound=np.nextafter(delta, np.inf)
        )
        return bool(np.any(distances <= delta))

    def pair_distance(self, node_a: DatasetNode, node_b: DatasetNode) -> float:
        """Exact Definition 6 distance between two dataset nodes (cached geometry)."""
        if cellsets.intersection_size(node_a.cells_array, node_b.cells_array) > 0:
            return 0.0
        with self._lock:
            self._pair_queries += 1
        if node_a.cells_array.size < node_b.cells_array.size:
            node_a, node_b = node_b, node_a
        probe = self._geometry_of(node_b).coords
        return float(self._nearest_to(self._geometry_of(node_a), probe).min())


# ---------------------------------------------------------------------- #
# Module-level default engine (built lazily so REPRO_DISTANCE_CACHE_SIZE is
# honoured whenever it is set before the first distance computation)
# ---------------------------------------------------------------------- #
_default_engine: DistanceEngine | None = None
_default_engine_lock = threading.Lock()


def get_engine() -> DistanceEngine:
    """The process-wide default distance engine (created on first use)."""
    global _default_engine
    engine = _default_engine
    if engine is None:
        with _default_engine_lock:
            if _default_engine is None:
                _default_engine = DistanceEngine()
            engine = _default_engine
    return engine


def set_engine(engine: DistanceEngine) -> DistanceEngine:
    """Swap the default engine (tests, cache re-sizing); returns the old one."""
    global _default_engine
    previous = get_engine()
    _default_engine = engine
    return previous
