"""Planar geometry primitives: points and minimum bounding rectangles.

Spatial datasets in the paper are sets of longitude/latitude points
(Definition 1) and every index node carries a minimum bounding rectangle
(MBR), a pivot (the MBR centre) and a radius (half the diagonal) —
Definitions 12–14.  :class:`Point` and :class:`BoundingBox` provide those
primitives plus the handful of geometric predicates the indexes need
(intersection, containment, distances between boxes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Point", "BoundingBox"]


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D spatial point with longitude ``x`` and latitude ``y``."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``, handy for serialisation."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned minimum bounding rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"invalid bounding box: ({self.min_x}, {self.min_y}) - "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Iterable[Point | Sequence[float]]) -> "BoundingBox":
        """Smallest box enclosing ``points``; raises on an empty iterable."""
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        seen = False
        for point in points:
            seen = True
            x, y = (point.x, point.y) if isinstance(point, Point) else (point[0], point[1])
            min_x = min(min_x, x)
            min_y = min(min_y, y)
            max_x = max(max_x, x)
            max_y = max(max_y, y)
        if not seen:
            raise ValueError("cannot build a bounding box from an empty point set")
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def union_of(cls, boxes: Iterable["BoundingBox"]) -> "BoundingBox":
        """Smallest box enclosing every box in ``boxes``."""
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        seen = False
        for box in boxes:
            seen = True
            min_x = min(min_x, box.min_x)
            min_y = min(min_y, box.min_y)
            max_x = max(max_x, box.max_x)
            max_y = max(max_y, box.max_y)
        if not seen:
            raise ValueError("cannot union an empty collection of boxes")
        return cls(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """The pivot: the centre of the rectangle."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def radius(self) -> float:
        """Half of the diagonal, the node radius used by DITS."""
        return math.hypot(self.width, self.height) / 2.0

    def extent(self, dimension: int) -> float:
        """Width of the box along ``dimension`` (0 for x, 1 for y)."""
        if dimension == 0:
            return self.width
        if dimension == 1:
            return self.height
        raise ValueError(f"dimension must be 0 or 1, got {dimension}")

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes share at least one point (closed boxes)."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` lies inside the closed box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """Whether ``other`` lies completely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping rectangle, or ``None`` if the boxes are disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest rectangle enclosing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy enlarged by ``margin`` on every side (negative shrinks)."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def min_distance_to(self, other: "BoundingBox") -> float:
        """Smallest Euclidean distance between any two points of the boxes."""
        dx = max(self.min_x - other.max_x, other.min_x - self.max_x, 0.0)
        dy = max(self.min_y - other.max_y, other.min_y - self.max_y, 0.0)
        return math.hypot(dx, dy)

    def min_distance_to_point(self, point: Point) -> float:
        """Smallest Euclidean distance from the box to ``point``."""
        dx = max(self.min_x - point.x, point.x - self.max_x, 0.0)
        dy = max(self.min_y - point.y, point.y - self.max_y, 0.0)
        return math.hypot(dx, dy)

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed to also cover ``other`` (R-tree insertion metric)."""
        return self.union(other).area - self.area

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)
