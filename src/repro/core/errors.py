"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class.  Programming errors (wrong types) still raise the
built-in exceptions; these classes are reserved for domain conditions a user
of the library can reasonably trigger and handle.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "EmptyDatasetError",
    "DatasetNotFoundError",
    "IndexNotBuiltError",
    "SourceNotFoundError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A search or index parameter is outside its valid range."""


class EmptyDatasetError(ReproError, ValueError):
    """An operation that requires a non-empty dataset received an empty one."""


class DatasetNotFoundError(ReproError, KeyError):
    """A dataset identifier does not exist in the index or data source."""


class IndexNotBuiltError(ReproError, RuntimeError):
    """A query was issued against an index that has not been built yet."""


class SourceNotFoundError(ReproError, KeyError):
    """A data-source identifier does not exist at the data center."""
