"""Problem statements and exact scoring for OJSP and CJSP.

This module holds the *semantic* definitions of the two search problems
(Definitions 10 and 11) independently of any index:

* :func:`overlap_of` and :func:`coverage_of` score a candidate answer.
* :func:`marginal_gain` is the greedy objective of Algorithm 3 (Equation 3).
* :class:`OverlapQuery` / :class:`CoverageQuery` bundle a query node with its
  search parameters.
* :class:`OverlapResult` / :class:`CoverageResult` are the returned answers,
  carrying both the chosen datasets and their scores so benchmarks and tests
  can validate them without re-deriving anything.
* :func:`brute_force_overlap` and :func:`brute_force_coverage` are reference
  (exponential/exact) solvers used to validate the fast algorithms on small
  instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.connectivity import satisfies_spatial_connectivity
from repro.core.dataset import DatasetNode
from repro.core.errors import InvalidParameterError

__all__ = [
    "overlap_of",
    "coverage_of",
    "marginal_gain",
    "OverlapQuery",
    "CoverageQuery",
    "OverlapResult",
    "CoverageResult",
    "ScoredDataset",
    "brute_force_overlap",
    "brute_force_coverage",
]


# ---------------------------------------------------------------------- #
# Scoring functions
# ---------------------------------------------------------------------- #
def overlap_of(query: DatasetNode, candidate: DatasetNode) -> int:
    """OJSP score: ``|S_Q intersect S_D|``."""
    return len(query.cells & candidate.cells)


def coverage_of(query: DatasetNode, chosen: Iterable[DatasetNode]) -> int:
    """CJSP objective: ``|S_Q union (union of chosen cell sets)|``."""
    covered = set(query.cells)
    for node in chosen:
        covered |= node.cells
    return len(covered)


def marginal_gain(candidate: DatasetNode, covered_cells: set[int] | frozenset[int]) -> int:
    """Marginal gain of adding ``candidate`` given the already ``covered_cells``.

    Equation (3) of the paper: the number of new cells the candidate brings.
    """
    return len(candidate.cells - covered_cells)


# ---------------------------------------------------------------------- #
# Query / result containers
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class OverlapQuery:
    """An OJSP request: find the ``k`` datasets with maximum overlap with ``query``."""

    query: DatasetNode
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise InvalidParameterError(f"k must be positive, got {self.k}")


@dataclass(frozen=True, slots=True)
class CoverageQuery:
    """A CJSP request: maximise coverage with at most ``k`` connected datasets."""

    query: DatasetNode
    k: int
    delta: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise InvalidParameterError(f"k must be positive, got {self.k}")
        if self.delta < 0:
            raise InvalidParameterError(f"delta must be non-negative, got {self.delta}")


@dataclass(frozen=True, slots=True)
class ScoredDataset:
    """A result entry: a dataset ID together with its score for the query."""

    dataset_id: str
    score: float
    source_id: str | None = None


@dataclass(frozen=True, slots=True)
class OverlapResult:
    """Answer to an :class:`OverlapQuery`, best overlap first."""

    entries: tuple[ScoredDataset, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScoredDataset]:
        return iter(self.entries)

    @property
    def dataset_ids(self) -> list[str]:
        """IDs of the returned datasets in score order."""
        return [entry.dataset_id for entry in self.entries]

    @property
    def scores(self) -> list[float]:
        """Overlap scores in the same order as :attr:`dataset_ids`."""
        return [entry.score for entry in self.entries]

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[str, float]], source_id: str | None = None
    ) -> "OverlapResult":
        """Build a result from ``(dataset_id, score)`` pairs (sorted internally)."""
        ordered = sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
        return cls(
            entries=tuple(
                ScoredDataset(dataset_id=did, score=score, source_id=source_id)
                for did, score in ordered
            )
        )


@dataclass(frozen=True, slots=True)
class CoverageResult:
    """Answer to a :class:`CoverageQuery`.

    ``entries`` are listed in the order the greedy algorithm selected them;
    ``total_coverage`` is the value of the CJSP objective including the query
    itself.
    """

    entries: tuple[ScoredDataset, ...]
    total_coverage: int
    query_coverage: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScoredDataset]:
        return iter(self.entries)

    @property
    def dataset_ids(self) -> list[str]:
        """IDs of the selected datasets in selection order."""
        return [entry.dataset_id for entry in self.entries]

    @property
    def gain_over_query(self) -> int:
        """How many cells the selected datasets add beyond the query alone."""
        return self.total_coverage - self.query_coverage


# ---------------------------------------------------------------------- #
# Reference (brute force) solvers
# ---------------------------------------------------------------------- #
def brute_force_overlap(
    query: DatasetNode, candidates: Sequence[DatasetNode], k: int
) -> OverlapResult:
    """Exact OJSP by scoring every candidate — the ground truth for tests."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    scored = [(node.dataset_id, float(overlap_of(query, node))) for node in candidates]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return OverlapResult.from_pairs(scored[:k])


def brute_force_coverage(
    query: DatasetNode, candidates: Sequence[DatasetNode], k: int, delta: float
) -> CoverageResult:
    """Optimal CJSP by enumerating all subsets of size <= k.

    Exponential — only usable on the small instances the property tests build
    — but it is the exact optimum the greedy algorithm's approximation ratio
    is measured against.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    best_subset: tuple[DatasetNode, ...] = ()
    best_cover = len(query.cells)
    for size in range(1, min(k, len(candidates)) + 1):
        for subset in itertools.combinations(candidates, size):
            if not satisfies_spatial_connectivity([query, *subset], delta):
                continue
            cover = coverage_of(query, subset)
            if cover > best_cover:
                best_cover = cover
                best_subset = subset
    covered = set(query.cells)
    entries = []
    for node in best_subset:
        gain = len(node.cells - covered)
        covered |= node.cells
        entries.append(ScoredDataset(dataset_id=node.dataset_id, score=float(gain)))
    return CoverageResult(
        entries=tuple(entries),
        total_coverage=best_cover,
        query_coverage=len(query.cells),
    )
