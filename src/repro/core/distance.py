"""Cell-based dataset distances and the node distance bounds of Lemma 4.

Definition 6 measures the distance between two cell-based datasets as the
Euclidean distance between their two closest cells (in grid coordinates).
The exact computation is quadratic in the number of cells, so CoverageSearch
relies on cheap lower/upper bounds derived from the pivot/radius of each
dataset node (Lemma 4):

    max(||p1 - p2|| - r1 - r2, 0)  <=  dist(S1, S2)  <=  ||p1 - p2|| + r1 + r2

The bounds let FindConnectSet accept whole subtrees (upper bound <= delta)
or reject them (lower bound > delta) without touching individual cells.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.dataset import DatasetNode
from repro.core.distance_engine import (
    cell_coords_of_array,
    get_engine,
    min_coords_distance,
)
from repro.core.errors import EmptyDatasetError
from repro.core.grid import Grid
from repro.utils import cellsets
from repro.utils.zorder import zorder_decode

__all__ = [
    "cell_distance",
    "cell_set_distance",
    "node_distance_bounds",
    "node_distance_lower_bound",
    "node_distance_upper_bound",
    "exact_node_distance",
]


def cell_distance(cell_a: int, cell_b: int) -> float:
    """Euclidean distance between two cells identified by z-order IDs.

    Cell IDs are decoded into grid coordinates and compared with the L2
    norm, so horizontally/vertically adjacent cells are at distance 1 and
    diagonal neighbours at ``sqrt(2)``.
    """
    ax, ay = zorder_decode(cell_a)
    bx, by = zorder_decode(cell_b)
    return math.hypot(ax - bx, ay - by)


def cell_set_distance(cells_a: Iterable[int], cells_b: Iterable[int]) -> float:
    """Exact distance between two cell-based datasets (Definition 6).

    The distance is the minimum pairwise cell distance.  Small instances
    compute the full pairwise distance matrix in one vectorized pass (after
    an early exit at distance 0 for shared cells); large instances build a
    KD-tree over the smaller set and run one vectorised nearest-neighbour
    query, which keeps the multi-thousand-cell datasets of the worldwide
    portals tractable.  Grid coordinates are integers, so the squared
    distances are exact in float64 and both paths return bit-identical
    results.

    This is the stateless reference kernel for raw cell-ID iterables;
    node-level callers go through :class:`~repro.core.distance_engine.DistanceEngine`,
    which caches decoded coordinates and KD-trees per dataset id.
    """
    set_a = cells_a if isinstance(cells_a, frozenset) else frozenset(cells_a)
    set_b = cells_b if isinstance(cells_b, frozenset) else frozenset(cells_b)
    if not set_a or not set_b:
        raise EmptyDatasetError("cell set distance requires two non-empty sets")
    if set_a & set_b:
        return 0.0
    return min_coords_distance(
        cell_coords_of_array(cellsets.as_cell_array(set_a)),
        cell_coords_of_array(cellsets.as_cell_array(set_b)),
    )


def exact_node_distance(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Exact cell-based distance between the cells of two dataset nodes.

    Delegates to the default :class:`~repro.core.distance_engine.DistanceEngine`
    so decoded coordinates and KD-trees are reused across calls.
    """
    return get_engine().pair_distance(node_a, node_b)


def node_distance_lower_bound(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Lemma 4 lower bound on ``dist(S_A, S_B)`` from pivots and radii."""
    pivot_distance = node_a.pivot.distance_to(node_b.pivot)
    return max(pivot_distance - node_a.radius - node_b.radius, 0.0)


def node_distance_upper_bound(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Lemma 4 upper bound on ``dist(S_A, S_B)`` from pivots and radii."""
    pivot_distance = node_a.pivot.distance_to(node_b.pivot)
    return pivot_distance + node_a.radius + node_b.radius


def node_distance_bounds(node_a: DatasetNode, node_b: DatasetNode) -> tuple[float, float]:
    """Both Lemma 4 bounds as ``(lower, upper)`` in one pivot-distance pass."""
    pivot_distance = node_a.pivot.distance_to(node_b.pivot)
    slack = node_a.radius + node_b.radius
    return max(pivot_distance - slack, 0.0), pivot_distance + slack


def point_set_distance(
    points_a: Iterable[tuple[float, float]],
    points_b: Iterable[tuple[float, float]],
) -> float:
    """Exact minimum pairwise Euclidean distance between two raw point sets.

    Provided for completeness (e.g. validating the grid discretisation in
    tests); the search algorithms themselves only use cell distances.
    """
    array_a = np.asarray([tuple(point) for point in points_a], dtype=np.float64)
    array_b = np.asarray([tuple(point) for point in points_b], dtype=np.float64)
    if array_a.size == 0 or array_b.size == 0:
        raise EmptyDatasetError("point set distance requires two non-empty sets")
    array_a = array_a.reshape(len(array_a), 2)
    array_b = array_b.reshape(len(array_b), 2)
    # Raw points are arbitrary floats, so unlike the integer-grid kernels this
    # keeps the scalar path's ``hypot`` semantics: correctly rounded and safe
    # from overflow when squaring large coordinates.  The broadcast runs in
    # row blocks so memory stays bounded for large point sets.
    rows_per_block = max(1, 131_072 // len(array_b))
    best = math.inf
    for start in range(0, len(array_a), rows_per_block):
        block = array_a[start : start + rows_per_block]
        dx = block[:, None, 0] - array_b[None, :, 0]
        dy = block[:, None, 1] - array_b[None, :, 1]
        best = min(best, float(np.hypot(dx, dy).min()))
    return best


def grid_cell_set_distance(grid: Grid, cells_a: Iterable[int], cells_b: Iterable[int]) -> float:
    """Cell-set distance validated against ``grid`` (raises on invalid IDs)."""
    set_a = set(cells_a)
    set_b = set(cells_b)
    # One vectorized range check per side replaces the O(|union|) Python
    # decode loop; same InvalidParameterError as Grid.coords_of_cell.
    for array in (cellsets.as_cell_array(set_a), cellsets.as_cell_array(set_b)):
        if array.size:
            grid.cells_to_coords_batch(array)
    return cell_set_distance(set_a, set_b)
