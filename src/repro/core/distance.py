"""Cell-based dataset distances and the node distance bounds of Lemma 4.

Definition 6 measures the distance between two cell-based datasets as the
Euclidean distance between their two closest cells (in grid coordinates).
The exact computation is quadratic in the number of cells, so CoverageSearch
relies on cheap lower/upper bounds derived from the pivot/radius of each
dataset node (Lemma 4):

    max(||p1 - p2|| - r1 - r2, 0)  <=  dist(S1, S2)  <=  ||p1 - p2|| + r1 + r2

The bounds let FindConnectSet accept whole subtrees (upper bound <= delta)
or reject them (lower bound > delta) without touching individual cells.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable

import numpy as np
from scipy.spatial import cKDTree

from repro.core.dataset import DatasetNode
from repro.core.errors import EmptyDatasetError
from repro.core.grid import Grid
from repro.utils.zorder import zorder_decode, zorder_decode_batch

__all__ = [
    "cell_distance",
    "cell_set_distance",
    "node_distance_bounds",
    "node_distance_lower_bound",
    "node_distance_upper_bound",
    "exact_node_distance",
]


def cell_distance(cell_a: int, cell_b: int) -> float:
    """Euclidean distance between two cells identified by z-order IDs.

    Cell IDs are decoded into grid coordinates and compared with the L2
    norm, so horizontally/vertically adjacent cells are at distance 1 and
    diagonal neighbours at ``sqrt(2)``.
    """
    ax, ay = zorder_decode(cell_a)
    bx, by = zorder_decode(cell_b)
    return math.hypot(ax - bx, ay - by)


#: Below this pairwise-comparison count the pure-Python loop beats building a
#: KD-tree; above it the vectorised nearest-neighbour query wins by orders of
#: magnitude on the large, world-spanning cell sets of the synthetic portals.
_KDTREE_PAIR_THRESHOLD = 2_048


@lru_cache(maxsize=8_192)
def _cell_coords_array(cells: frozenset[int]) -> np.ndarray:
    """Decoded ``(x, y)`` grid coordinates of ``cells`` as a float array (cached)."""
    codes = np.fromiter(cells, dtype=np.int64, count=len(cells))
    xs, ys = zorder_decode_batch(codes)
    coords = np.empty((len(cells), 2), dtype=np.float64)
    coords[:, 0] = xs
    coords[:, 1] = ys
    return coords


def cell_set_distance(cells_a: Iterable[int], cells_b: Iterable[int]) -> float:
    """Exact distance between two cell-based datasets (Definition 6).

    The distance is the minimum pairwise cell distance.  Small instances
    compute the full pairwise distance matrix in one vectorized pass (after
    an early exit at distance 0 for shared cells); large instances build a
    KD-tree over the smaller set and run one vectorised nearest-neighbour
    query, which keeps the multi-thousand-cell datasets of the worldwide
    portals tractable.  Grid coordinates are integers, so the squared
    distances are exact in float64 and both paths return bit-identical
    results.
    """
    set_a = cells_a if isinstance(cells_a, frozenset) else frozenset(cells_a)
    set_b = cells_b if isinstance(cells_b, frozenset) else frozenset(cells_b)
    if not set_a or not set_b:
        raise EmptyDatasetError("cell set distance requires two non-empty sets")
    if set_a & set_b:
        return 0.0

    if len(set_a) * len(set_b) <= _KDTREE_PAIR_THRESHOLD:
        coords_a = _cell_coords_array(set_a)
        coords_b = _cell_coords_array(set_b)
        deltas = coords_a[:, None, :] - coords_b[None, :, :]
        squared = np.einsum("ijk,ijk->ij", deltas, deltas)
        return float(math.sqrt(squared.min()))

    # Build the tree over the smaller set and query with the larger one.
    if len(set_a) > len(set_b):
        set_a, set_b = set_b, set_a
    tree = cKDTree(_cell_coords_array(set_a))
    distances, _ = tree.query(_cell_coords_array(set_b), k=1)
    return float(distances.min())


def exact_node_distance(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Exact cell-based distance between the cells of two dataset nodes."""
    return cell_set_distance(node_a.cells, node_b.cells)


def node_distance_lower_bound(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Lemma 4 lower bound on ``dist(S_A, S_B)`` from pivots and radii."""
    pivot_distance = node_a.pivot.distance_to(node_b.pivot)
    return max(pivot_distance - node_a.radius - node_b.radius, 0.0)


def node_distance_upper_bound(node_a: DatasetNode, node_b: DatasetNode) -> float:
    """Lemma 4 upper bound on ``dist(S_A, S_B)`` from pivots and radii."""
    pivot_distance = node_a.pivot.distance_to(node_b.pivot)
    return pivot_distance + node_a.radius + node_b.radius


def node_distance_bounds(node_a: DatasetNode, node_b: DatasetNode) -> tuple[float, float]:
    """Both Lemma 4 bounds as ``(lower, upper)`` in one pivot-distance pass."""
    pivot_distance = node_a.pivot.distance_to(node_b.pivot)
    slack = node_a.radius + node_b.radius
    return max(pivot_distance - slack, 0.0), pivot_distance + slack


def point_set_distance(
    points_a: Iterable[tuple[float, float]],
    points_b: Iterable[tuple[float, float]],
) -> float:
    """Exact minimum pairwise Euclidean distance between two raw point sets.

    Provided for completeness (e.g. validating the grid discretisation in
    tests); the search algorithms themselves only use cell distances.
    """
    list_a = list(points_a)
    list_b = list(points_b)
    if not list_a or not list_b:
        raise EmptyDatasetError("point set distance requires two non-empty sets")
    best = math.inf
    for ax, ay in list_a:
        for bx, by in list_b:
            d = math.hypot(ax - bx, ay - by)
            if d < best:
                best = d
    return best


def grid_cell_set_distance(grid: Grid, cells_a: Iterable[int], cells_b: Iterable[int]) -> float:
    """Cell-set distance validated against ``grid`` (raises on invalid IDs)."""
    set_a = set(cells_a)
    set_b = set(cells_b)
    for cell in set_a | set_b:
        grid.coords_of_cell(cell)
    return cell_set_distance(set_a, set_b)
