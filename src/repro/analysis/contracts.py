"""In-source contract annotations consumed by the checkers.

The analysis layer is driven by three lightweight comment annotations that
live next to the code they describe (so a reviewer sees contract and
implementation together), plus the suppression syntax:

``# guarded-by: <lock>``
    On a ``self.<attr> = ...`` statement: declares that ``<attr>`` is shared
    mutable state and every read/write (outside ``__init__``) must happen
    inside ``with self.<lock>:``.  ``<lock>`` is another attribute of the
    same class (a ``threading.Lock``/``RLock``).

``# repro-lint: holds=<lock>``
    On a ``def`` line: declares that callers invoke this method with
    ``<lock>`` already held, so guarded accesses inside it are considered
    protected.  (The checker cannot verify the callers; the annotation is
    the documented contract, e.g. ``ShardedDITSGlobalIndex._place``.)

``# parity-critical``
    On a ``def`` line: registers the function as a bit-identical hot path
    (greedy rounds, shard candidate generation, ``CanonicalTopK``); the
    parity-purity checker then rejects nondeterminism sources in its body.

``# repro-lint: disable=<code>[,<code>...]``
    On the offending line: suppresses the named codes (or ``all``) for that
    line.  ``python -m repro.cli lint --strict`` fails on suppressions that
    no longer match any finding, so stale escapes cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterator, Sequence

__all__ = [
    "GUARDED_BY_RE",
    "HOLDS_RE",
    "PARITY_RE",
    "SUPPRESS_RE",
    "guarded_attributes",
    "held_locks_of",
    "is_parity_critical",
    "iter_self_assignments",
    "parse_suppressions",
    "self_attribute_of",
]

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
HOLDS_RE = re.compile(r"#\s*repro-lint:\s*holds=([A-Za-z_][A-Za-z0-9_]*)")
PARITY_RE = re.compile(r"#\s*parity-critical\b")
# The code list stops at the first non-code token, so a justification may
# follow the codes on the same comment, e.g. "disable=REPRO301 (commutative)".
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-indexed line numbers to the codes suppressed on that line.

    ``all`` (case-insensitive) suppresses every code on the line.
    """
    suppressions: dict[int, frozenset[str]] = {}
    source = "\n".join(lines) + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - engine parses first
        return suppressions
    for token in tokens:
        # Only genuine comment tokens count: a docstring that *mentions* the
        # marker must not register (or go stale under --strict).
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() for code in match.group(1).split(",") if code.strip()
        )
        if codes:
            suppressions[token.start[0]] = codes
    return suppressions


def self_attribute_of(node: ast.AST) -> str | None:
    """The attribute name if ``node`` is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_self_assignments(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[str, ast.stmt]]:
    """Yield ``(attribute, statement)`` for every ``self.<attr> = ...`` in ``function``."""
    for statement in ast.walk(function):
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
            targets = [statement.target]
        for target in targets:
            attribute = self_attribute_of(target)
            if attribute is not None and isinstance(statement, ast.stmt):
                yield attribute, statement


def guarded_attributes(
    class_node: ast.ClassDef, lines: Sequence[str]
) -> dict[str, tuple[str, int]]:
    """Guarded-by declarations of a class: ``{attr: (lock, declaration line)}``.

    A declaration is a ``# guarded-by: <lock>`` comment on the line of any
    ``self.<attr> = ...`` statement inside the class (conventionally the
    ``__init__`` assignment that creates the attribute).
    """
    guarded: dict[str, tuple[str, int]] = {}
    for member in class_node.body:
        if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for attribute, statement in iter_self_assignments(member):
            text = lines[statement.lineno - 1] if statement.lineno <= len(lines) else ""
            match = GUARDED_BY_RE.search(text)
            if match is not None:
                guarded.setdefault(attribute, (match.group(1), statement.lineno))
    return guarded


def held_locks_of(
    function: ast.FunctionDef | ast.AsyncFunctionDef, lines: Sequence[str]
) -> frozenset[str]:
    """Locks declared held on entry via ``# repro-lint: holds=<lock>``."""
    text = lines[function.lineno - 1] if function.lineno <= len(lines) else ""
    match = HOLDS_RE.search(text)
    if match is None:
        return frozenset()
    return frozenset({match.group(1)})


def is_parity_critical(
    function: ast.FunctionDef | ast.AsyncFunctionDef, lines: Sequence[str]
) -> bool:
    """Whether ``function`` carries the ``# parity-critical`` marker on its def line."""
    text = lines[function.lineno - 1] if function.lineno <= len(lines) else ""
    return PARITY_RE.search(text) is not None
