"""Unsafe-cache checker: ``functools`` caches must key safe values only.

PR 4 replaced a ``functools.lru_cache`` keyed by whole ``frozenset`` cell
sets — value-keyed, unbounded in entry size, with no notion of dataset
identity or invalidation — with the bounded, identity-guarded
:class:`~repro.core.distance_engine.DistanceEngine`.  This pass keeps that
bug class out of the tree: a ``@functools.lru_cache`` / ``@functools.cache``
decorated function is flagged (``REPRO201``) when

* it is a method (the cache would retain ``self``, pinning every instance
  forever and keying results by object identity);
* any parameter is unannotated (the cache key is then unknowable); or
* any parameter's annotation is not a *safe cache key*: one of ``int``,
  ``float``, ``bool``, ``str``, ``bytes``, ``None``, an enum-like
  ``Literal``, or a ``tuple``/``Optional``/union built from safe keys.
  Collections like ``frozenset`` are deliberately unsafe even though they
  are hashable — hashing whole values pins arbitrarily large payloads and
  cannot observe rebuilds of the logical entity they describe.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.engine import ModuleSource
from repro.analysis.findings import Finding

__all__ = ["UnsafeCacheChecker"]

_CACHE_NAMES = frozenset({"lru_cache", "cache"})
_SAFE_SCALARS = frozenset({"int", "float", "bool", "str", "bytes", "complex", "None"})
_SAFE_GENERIC_HEADS = frozenset({"tuple", "Tuple", "Optional", "Union", "Literal", "Final"})


def _decorator_cache_name(decorator: ast.expr) -> str | None:
    """The cache name when ``decorator`` is a functools cache, else ``None``."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name) and target.id in _CACHE_NAMES:
        return target.id
    if (
        isinstance(target, ast.Attribute)
        and target.attr in _CACHE_NAMES
        and isinstance(target.value, ast.Name)
        and target.value.id == "functools"
    ):
        return f"functools.{target.attr}"
    return None


def _is_safe_annotation(annotation: ast.expr) -> bool:
    """Whether ``annotation`` names an immutable, identity-stable cache key."""
    if isinstance(annotation, ast.Constant):
        # `None`, string forward references, Literal members.
        if annotation.value is None:
            return True
        if isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return False
            return _is_safe_annotation(parsed)
        return isinstance(annotation.value, (int, float, bool, bytes, complex))
    if isinstance(annotation, ast.Name):
        return annotation.id in _SAFE_SCALARS
    if isinstance(annotation, ast.Attribute):
        # typing.Optional etc. — judge by the terminal name.
        return annotation.attr in _SAFE_SCALARS or annotation.attr in _SAFE_GENERIC_HEADS
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _is_safe_annotation(annotation.left) and _is_safe_annotation(annotation.right)
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = (
            head.id
            if isinstance(head, ast.Name)
            else head.attr
            if isinstance(head, ast.Attribute)
            else None
        )
        if head_name not in _SAFE_GENERIC_HEADS:
            return False
        if head_name == "Literal":
            return True
        inner = annotation.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(
            _is_safe_annotation(element)
            for element in elements
            if not (isinstance(element, ast.Constant) and element.value is Ellipsis)
        )
    return False


class UnsafeCacheChecker(Checker):
    """Flags functools caches whose keys are mutable or identity-unstable."""

    name = "unsafe-cache"
    codes = ("REPRO201",)

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Check every functools-cached function defined in ``module``."""
        class_stack: list[ast.ClassDef] = []
        yield from self._walk(module, module.tree, class_stack)

    def _walk(
        self, module: ModuleSource, scope: ast.AST, class_stack: list[ast.ClassDef]
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, ast.ClassDef):
                class_stack.append(child)
                yield from self._walk(module, child, class_stack)
                class_stack.pop()
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                in_class = bool(class_stack) and self._is_method(child, class_stack[-1], scope)
                yield from self._check_function(module, child, in_class)
                yield from self._walk(module, child, class_stack)
                continue
            yield from self._walk(module, child, class_stack)

    @staticmethod
    def _is_method(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        class_node: ast.ClassDef,
        scope: ast.AST,
    ) -> bool:
        if scope is not class_node:
            return False
        decorators = {
            decorator.id
            for decorator in function.decorator_list
            if isinstance(decorator, ast.Name)
        }
        return "staticmethod" not in decorators

    def _check_function(
        self,
        module: ModuleSource,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
    ) -> Iterator[Finding]:
        cache_name = None
        for decorator in function.decorator_list:
            cache_name = _decorator_cache_name(decorator)
            if cache_name is not None:
                break
        if cache_name is None:
            return
        if is_method:
            yield Finding(
                path=module.path,
                line=function.lineno,
                code="REPRO201",
                message=(
                    f"@{cache_name} on method {function.name!r} retains every "
                    "`self` it ever sees and keys results by instance identity; "
                    "cache per-instance state explicitly instead"
                ),
                symbol=function.name,
            )
            return
        arguments = function.args
        parameters = list(arguments.posonlyargs) + list(arguments.args) + list(
            arguments.kwonlyargs
        )
        for parameter in parameters:
            if parameter.annotation is None:
                yield Finding(
                    path=module.path,
                    line=function.lineno,
                    code="REPRO201",
                    message=(
                        f"@{cache_name} on {function.name!r}: parameter "
                        f"{parameter.arg!r} is unannotated, so the cache key "
                        "cannot be proven immutable and identity-stable"
                    ),
                    symbol=function.name,
                )
            elif not _is_safe_annotation(parameter.annotation):
                rendered = ast.unparse(parameter.annotation)
                yield Finding(
                    path=module.path,
                    line=function.lineno,
                    code="REPRO201",
                    message=(
                        f"@{cache_name} on {function.name!r}: parameter "
                        f"{parameter.arg!r}: {rendered} is not a safe cache key "
                        "(mutable or identity-unstable; the PR 4 frozenset-cache "
                        "bug class)"
                    ),
                    symbol=function.name,
                )
