"""Pluggable checker passes of the static-analysis layer.

Each checker subclasses :class:`~repro.analysis.checkers.base.Checker` and
emits :class:`~repro.analysis.findings.Finding` records; :func:`all_checkers`
is the registry the engine (and the CLI) instantiate by default.  New
invariants — e.g. the serving-tier contracts the ROADMAP plans — land here
as additional passes without touching the engine.
"""

from __future__ import annotations

from repro.analysis.checkers.api_drift import ApiDriftChecker
from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.parity_purity import ParityPurityChecker
from repro.analysis.checkers.unsafe_cache import UnsafeCacheChecker

__all__ = [
    "ApiDriftChecker",
    "Checker",
    "LockDisciplineChecker",
    "ParityPurityChecker",
    "UnsafeCacheChecker",
    "all_checkers",
]


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker pass."""
    return [
        LockDisciplineChecker(),
        UnsafeCacheChecker(),
        ParityPurityChecker(),
        ApiDriftChecker(),
    ]
