"""API-drift checker: the exported surface exists, is typed and documented.

Every package ``__init__`` re-exports its public surface through ``__all__``;
a rename or deletion deeper in the tree silently breaks that contract until
an import fails at runtime.  This pass resolves every ``__all__`` entry of
every module (following ``from repro.x import name`` chains across the
project) and reports:

* ``REPRO401`` — the name does not resolve to any definition;
* ``REPRO402`` — it resolves to a function whose parameters or return type
  are unannotated (or a class whose public methods are), so the strict-mypy
  gate cannot see through the export;
* ``REPRO403`` — the resolved function or class has no docstring.

Symbols resolving to plain data assignments (profile tables, version
strings, type aliases) are checked for existence only.  Dunder methods must
be annotated but are exempt from the docstring requirement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.engine import ModuleSource, Project
from repro.analysis.findings import Finding

__all__ = ["ApiDriftChecker"]

_MAX_RESOLUTION_DEPTH = 16


@dataclass(frozen=True, slots=True)
class _Symbol:
    """Where an exported name resolved: its module and defining AST node."""

    module: ModuleSource
    node: ast.AST


class ApiDriftChecker(Checker):
    """Validates ``__all__`` exports: existence, annotations, docstrings."""

    name = "api-drift"
    codes = ("REPRO401", "REPRO402", "REPRO403")

    def run(self, project: Project) -> Iterable[Finding]:
        """Resolve and validate every ``__all__`` export across the project."""
        tables = {
            module.module: self._symbol_table(module)
            for module in project.modules.values()
        }
        seen: set[int] = set()
        for module in project.sorted_modules():
            exports = self._module_all(module)
            if exports is None:
                continue
            for lineno, name in exports:
                resolved = self._resolve(project, tables, module.module, name, 0)
                if resolved is None:
                    yield Finding(
                        path=module.path,
                        line=lineno,
                        code="REPRO401",
                        message=(
                            f"__all__ exports {name!r}, which does not resolve to "
                            "any definition in the project"
                        ),
                        symbol=name,
                    )
                    continue
                if resolved == "external":
                    continue
                marker = id(resolved.node)
                if marker in seen:
                    continue  # one report per definition, not per re-export
                seen.add(marker)
                yield from self._check_symbol(name, resolved)

    # ------------------------------------------------------------------ #
    # Symbol tables and resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _symbol_table(module: ModuleSource) -> dict[str, ast.AST | tuple[str, str]]:
        """Top-level bindings: name -> defining node or (module, name) import."""
        table: dict[str, ast.AST | tuple[str, str]] = {}
        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                table[statement.name] = statement
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        table[target.id] = statement
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    table[statement.target.id] = statement
            elif isinstance(statement, ast.ImportFrom):
                if statement.module is None or statement.level:
                    continue
                for alias in statement.names:
                    bound = alias.asname if alias.asname else alias.name
                    table[bound] = (statement.module, alias.name)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound = alias.asname if alias.asname else alias.name.split(".", 1)[0]
                    table[bound] = statement
            elif isinstance(statement, ast.If):
                # TYPE_CHECKING blocks and friends: take the happy branch.
                for sub in statement.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        table[sub.name] = sub
        return table

    def _module_all(self, module: ModuleSource) -> list[tuple[int, str]] | None:
        """The ``(line, name)`` entries of the module's ``__all__``, if literal."""
        for statement in module.tree.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "__all__"
                and isinstance(statement.value, (ast.List, ast.Tuple))
            ):
                entries = []
                for element in statement.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        entries.append((element.lineno, element.value))
                return entries
        return None

    def _resolve(
        self,
        project: Project,
        tables: dict[str, dict[str, ast.AST | tuple[str, str]]],
        module_name: str,
        symbol: str,
        depth: int,
    ) -> "_Symbol | str | None":
        """Follow import chains to the defining node; ``'external'`` leaves the project."""
        if depth > _MAX_RESOLUTION_DEPTH:
            return None
        module = project.module(module_name)
        if module is None:
            return "external"
        entry = tables[module_name].get(symbol)
        if entry is None:
            # `from repro.pkg import name` may address a submodule itself.
            if project.module(f"{module_name}.{symbol}") is not None:
                return "external"
            return None
        if isinstance(entry, tuple):
            source_module, source_name = entry
            if (source_module, source_name) == (module_name, symbol):
                # `from pkg import sub` inside pkg itself: the binding points
                # back at this very lookup, so it names a submodule (or
                # nothing), never a definition.
                if project.module(f"{source_module}.{source_name}") is not None:
                    return "external"
                return None
            return self._resolve(project, tables, source_module, source_name, depth + 1)
        if isinstance(entry, ast.Import):
            return "external"
        return _Symbol(module=module, node=entry)

    # ------------------------------------------------------------------ #
    # Annotation and docstring requirements
    # ------------------------------------------------------------------ #
    def _check_symbol(self, name: str, symbol: _Symbol) -> Iterator[Finding]:
        node = symbol.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_callable(name, symbol, node, is_method=False)
        elif isinstance(node, ast.ClassDef):
            yield from self._check_class(name, symbol, node)
        # Plain assignments (constants, aliases, tables): existence suffices.

    def _check_class(
        self, name: str, symbol: _Symbol, node: ast.ClassDef
    ) -> Iterator[Finding]:
        if ast.get_docstring(node) is None:
            yield Finding(
                path=symbol.module.path,
                line=node.lineno,
                code="REPRO403",
                message=f"exported class {name!r} has no docstring",
                symbol=name,
            )
        for member in node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if member.name.startswith("_") and not member.name.startswith("__"):
                continue  # private helpers are not part of the exported surface
            yield from self._check_callable(
                f"{name}.{member.name}", symbol, member, is_method=True
            )

    def _check_callable(
        self,
        name: str,
        symbol: _Symbol,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
    ) -> Iterator[Finding]:
        dunder = node.name.startswith("__") and node.name.endswith("__")
        if ast.get_docstring(node) is None and not dunder:
            yield Finding(
                path=symbol.module.path,
                line=node.lineno,
                code="REPRO403",
                message=f"exported callable {name!r} has no docstring",
                symbol=name,
            )
        missing: list[str] = []
        arguments = node.args
        parameters = (
            list(arguments.posonlyargs) + list(arguments.args) + list(arguments.kwonlyargs)
        )
        skip_first = is_method and not any(
            isinstance(decorator, ast.Name) and decorator.id == "staticmethod"
            for decorator in node.decorator_list
        )
        if skip_first and parameters:
            parameters = parameters[1:]
        for parameter in parameters:
            if parameter.annotation is None:
                missing.append(parameter.arg)
        for variadic in (arguments.vararg, arguments.kwarg):
            if variadic is not None and variadic.annotation is None:
                missing.append(f"*{variadic.arg}")
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        if missing:
            yield Finding(
                path=symbol.module.path,
                line=node.lineno,
                code="REPRO402",
                message=(
                    f"exported callable {name!r} is missing annotations for: "
                    + ", ".join(missing)
                ),
                symbol=name,
            )
