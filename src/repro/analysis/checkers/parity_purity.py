"""Parity-purity checker: bit-identical hot paths stay deterministic.

The repo's performance work carries hard parity contracts — serial vs
parallel dispatch, monolithic vs sharded DITS-G, fresh rebuild vs
incremental churn all must return *bit-identical* answers.  Functions under
such a contract are registered with a ``# parity-critical`` marker on their
``def`` line (greedy rounds, shard candidate generation,
``CanonicalTopK``); this pass rejects the nondeterminism sources that have
historically broken exactly these guarantees:

* **clocks** — any ``time.*`` call (``time``, ``perf_counter``,
  ``monotonic``, ...): timing belongs in the bench harness, never in a
  result path;
* **unseeded randomness** — ``random.*`` / ``secrets.*`` / ``uuid.*`` /
  ``os.urandom`` / ``numpy.random.*`` calls.  Constructing an explicitly
  seeded generator (``random.Random(seed)``, ``default_rng(seed)``) is
  allowed: the seed is then plumbed, not ambient;
* **set-order leakage** — iterating a set expression (set/frozenset
  literals, comprehensions, constructors, unions/intersections, including
  ``x & d.keys()`` views) into ordered output, unless wrapped in
  ``sorted(...)``/order-insensitive reducers, plus ``dict.popitem()``;
* **identity / hash dependence** — ``id(...)`` and ``hash(...)`` feeding
  results varies across processes (hash randomisation) and runs.

All fire as ``REPRO301``.  Order-insensitive uses (e.g. accumulating
commutative counts into a :class:`~repro.utils.heaps.CanonicalTopK`) are
suppressed in place with ``# repro-lint: disable=REPRO301`` so the escape is
visible next to its justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.contracts import is_parity_critical
from repro.analysis.engine import ModuleSource
from repro.analysis.findings import Finding

__all__ = ["ParityPurityChecker"]

_CLOCK_MODULES = frozenset({"time"})
_RANDOM_MODULES = frozenset({"random", "secrets", "uuid"})
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` syntactically produces an unordered set-like value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _SET_METHODS:
                return True
            if node.func.attr == "keys" and not node.args:
                # dict views are ordered, but combining them below makes
                # sets; a bare .keys() only counts inside a BinOp operand.
                return False
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return (
            _is_set_operand(node.left)
            or _is_set_operand(node.right)
        )
    return False


def _is_set_operand(node: ast.expr) -> bool:
    """Operand view for set algebra: set expressions or dict ``.keys()`` views."""
    if _is_set_expression(node):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


class ParityPurityChecker(Checker):
    """Rejects nondeterminism sources inside ``# parity-critical`` functions."""

    name = "parity-purity"
    codes = ("REPRO301",)

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Check every ``# parity-critical`` function defined in ``module``."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_parity_critical(node, module.lines):
                    yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleSource, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        symbol = function.name
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, symbol, node)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(module, symbol, node.iter, "for-loop")
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(
                    module, symbol, node.iter, "comprehension"
                )

    def _check_call(
        self, module: ModuleSource, symbol: str, call: ast.Call
    ) -> Iterator[Finding]:
        dotted = _dotted_name(call.func)
        if dotted is not None:
            root = dotted.split(".", 1)[0]
            if root in _CLOCK_MODULES and "." in dotted:
                yield self._finding(
                    module, call, symbol, f"clock call {dotted}() in a parity-critical path"
                )
                return
            if root in _RANDOM_MODULES and "." in dotted:
                if dotted == "random.Random" and call.args:
                    return  # explicitly seeded generator: seed is plumbed
                yield self._finding(
                    module,
                    call,
                    symbol,
                    f"unseeded nondeterminism source {dotted}() in a parity-critical path",
                )
                return
            if dotted == "os.urandom":
                yield self._finding(
                    module, call, symbol, "os.urandom() in a parity-critical path"
                )
                return
            leaf = dotted.rsplit(".", 1)[-1]
            if ".random." in f".{dotted}" and leaf != "default_rng":
                yield self._finding(
                    module,
                    call,
                    symbol,
                    f"unseeded numpy randomness {dotted}() in a parity-critical path",
                )
                return
            if leaf == "default_rng" and not call.args:
                yield self._finding(
                    module, call, symbol, "default_rng() without a seed in a parity-critical path"
                )
                return
            if dotted in {"id", "hash"}:
                yield self._finding(
                    module,
                    call,
                    symbol,
                    f"{dotted}() result is run-dependent (identity/hash randomisation) "
                    "in a parity-critical path",
                )
                return
            if leaf == "popitem":
                yield self._finding(
                    module, call, symbol, "popitem() order-dependence in a parity-critical path"
                )
                return
        # list(<set expr>) / tuple(<set expr>) materialise set order.
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in {"list", "tuple", "enumerate", "iter", "next"}
            and call.args
            and _is_set_expression(call.args[0])
        ):
            yield self._finding(
                module,
                call,
                symbol,
                f"{call.func.id}() over a set expression leaks set iteration "
                "order into a parity-critical path (wrap in sorted(...))",
            )

    def _check_iteration(
        self, module: ModuleSource, symbol: str, iterable: ast.expr, context: str
    ) -> Iterator[Finding]:
        if _is_set_expression(iterable):
            yield self._finding(
                module,
                iterable,
                symbol,
                f"{context} iterates a set expression; set order feeds ordered "
                "output in a parity-critical path (wrap in sorted(...))",
            )

    @staticmethod
    def _finding(
        module: ModuleSource, node: ast.AST, symbol: str, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            code="REPRO301",
            message=message,
            symbol=symbol,
            column=getattr(node, "col_offset", 0),
        )
