"""Lock-discipline checker: guarded attributes only move under their lock.

Shared mutable attributes are declared with a ``# guarded-by: <lock>``
comment on the ``self.<attr> = ...`` statement that creates them (see
``SimulatedChannel.stats``, ``DistanceEngine._cache``,
``ShardedDITSGlobalIndex._summaries``).  This pass then verifies, purely
lexically, that every other read or write of the attribute sits inside a
``with self.<lock>:`` block of the same method — the static complement of
the runtime thread-safety tests.

Scope and deliberate limits (catalogued in ``docs/invariants.md``):

* Only ``self.<attr>`` accesses are tracked; cross-object accesses
  (``shard.summaries`` mutated by the owner of the shard under
  ``shard.lock``) are outside the lexical model.
* ``__init__``/``__post_init__`` are exempt — the object is not shared
  until construction returns.
* A nested function or lambda does not inherit the enclosing ``with``: it
  may run after the lock is released (the executor-submission pattern), so
  guarded accesses inside it are flagged unless the def carries its own
  ``# repro-lint: holds=<lock>`` annotation.

Codes: ``REPRO101`` (guarded access outside the lock), ``REPRO102``
(declaration names a lock attribute the class never assigns).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.contracts import (
    guarded_attributes,
    held_locks_of,
    iter_self_assignments,
    self_attribute_of,
)
from repro.analysis.engine import ModuleSource
from repro.analysis.findings import Finding

__all__ = ["LockDisciplineChecker"]

#: Methods in which guarded accesses are exempt (construction-time only).
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _with_locks(node: ast.With | ast.AsyncWith) -> frozenset[str]:
    """Lock attributes acquired by ``with self.<lock>[, ...]:`` items."""
    locks = set()
    for item in node.items:
        attribute = self_attribute_of(item.context_expr)
        if attribute is not None:
            locks.add(attribute)
    return frozenset(locks)


class LockDisciplineChecker(Checker):
    """Flags guarded-attribute accesses outside their declared lock scope."""

    name = "lock-discipline"
    codes = ("REPRO101", "REPRO102")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Check every class of ``module`` that declares guarded attributes."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------ #
    # Per-class analysis
    # ------------------------------------------------------------------ #
    def _check_class(
        self, module: ModuleSource, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = guarded_attributes(class_node, module.lines)
        if not guarded:
            return
        assigned = self._assigned_attributes(class_node)
        for attribute, (lock, lineno) in sorted(guarded.items()):
            if lock not in assigned:
                yield Finding(
                    path=module.path,
                    line=lineno,
                    code="REPRO102",
                    message=(
                        f"attribute {attribute!r} is declared guarded-by {lock!r}, "
                        f"but class {class_node.name!r} never assigns self.{lock}"
                    ),
                    symbol=f"{class_node.name}.{attribute}",
                )
        locks = {lock for lock, _ in guarded.values()}
        for member in class_node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if member.name in _CONSTRUCTORS:
                continue
            held = frozenset(held_locks_of(member, module.lines) & locks)
            yield from self._check_function(
                module, class_node, member, member, guarded, held
            )

    @staticmethod
    def _assigned_attributes(class_node: ast.ClassDef) -> frozenset[str]:
        assigned = set()
        for member in class_node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for attribute, _ in iter_self_assignments(member):
                    assigned.add(attribute)
        return frozenset(assigned)

    # ------------------------------------------------------------------ #
    # Lexical lock-scope walk
    # ------------------------------------------------------------------ #
    def _check_function(
        self,
        module: ModuleSource,
        class_node: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: ast.AST,
        guarded: dict[str, tuple[str, int]],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(scope):
            yield from self._check_node(module, class_node, method, child, guarded, held)

    def _check_node(
        self,
        module: ModuleSource,
        class_node: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        guarded: dict[str, tuple[str, int]],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held | _with_locks(node)
            for item in node.items:
                # The context expressions themselves evaluate unlocked.
                yield from self._check_expression(
                    module, class_node, method, item.context_expr, guarded, held
                )
            for statement in node.body:
                yield from self._check_node(
                    module, class_node, method, statement, guarded, inner
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def may outlive the with-block; only its own
            # holds-annotation counts.
            nested_held = frozenset(held_locks_of(node, module.lines))
            yield from self._check_function(
                module, class_node, method, node, guarded, nested_held
            )
            return
        if isinstance(node, ast.Lambda):
            yield from self._check_expression(
                module, class_node, method, node.body, guarded, frozenset()
            )
            return
        if isinstance(node, ast.Attribute):
            yield from self._check_attribute(
                module, class_node, method, node, guarded, held
            )
            # Fall through: the value side may itself be self.<attr>.
        yield from self._check_function(
            module, class_node, method, node, guarded, held
        )

    def _check_expression(
        self,
        module: ModuleSource,
        class_node: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        expression: ast.AST,
        guarded: dict[str, tuple[str, int]],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(expression):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(
                    module, class_node, method, node, guarded, held
                )

    @staticmethod
    def _check_attribute(
        module: ModuleSource,
        class_node: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Attribute,
        guarded: dict[str, tuple[str, int]],
        held: frozenset[str],
    ) -> Iterator[Finding]:
        attribute = self_attribute_of(node)
        if attribute is None or attribute not in guarded:
            return
        lock, _ = guarded[attribute]
        if lock in held:
            return
        access = "written" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        yield Finding(
            path=module.path,
            line=node.lineno,
            code="REPRO101",
            message=(
                f"self.{attribute} is {access} in {class_node.name}.{method.name} "
                f"without holding self.{lock} (declared guarded-by {lock!r})"
            ),
            symbol=f"{class_node.name}.{method.name}",
            column=node.col_offset,
        )
