"""Checker base class: one pass over the parsed project, findings out.

A checker either overrides :meth:`run` for project-wide analysis (API drift
needs every module at once to resolve re-export chains) or the simpler
:meth:`check_module` for module-local passes; the default :meth:`run` loops
``check_module`` over the project in deterministic module order.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.analysis.engine import ModuleSource, Project
from repro.analysis.findings import Finding

__all__ = ["Checker"]


class Checker(abc.ABC):
    """One static-analysis pass."""

    #: Short kebab-case name used in CLI output and the checker registry.
    name: str = "checker"
    #: Error codes this checker can emit (a subset of ``CHECKER_CODES``).
    codes: tuple[str, ...] = ()

    def run(self, project: Project) -> Iterable[Finding]:
        """Analyse the whole project; default defers to :meth:`check_module`."""
        for module in project.sorted_modules():
            yield from self.check_module(module)

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Analyse one module in isolation (module-local passes override this)."""
        return ()
