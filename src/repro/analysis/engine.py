"""The analysis engine: source-tree walking, parsing and checker dispatch.

The engine reads every ``*.py`` file under a package root exactly once,
parses it into a :class:`ModuleSource` (AST + raw lines + suppression table)
and hands the assembled :class:`Project` to each checker pass.  Checkers are
pure functions of the project view; the engine owns everything stateful —
file IO, suppression bookkeeping, deterministic ordering — so a checker is
just "AST in, findings out" and trivially unit-testable against fixture
snippets.

Suppression semantics: a ``# repro-lint: disable=<code>`` comment on a
finding's line removes the finding from the report's failure set (it is kept
in ``suppressed`` for auditability).  Suppression comments that matched no
finding are reported as ``unused_suppressions`` so ``--strict`` runs can
refuse stale escapes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.analysis.contracts import parse_suppressions
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.checkers.base import Checker

__all__ = ["AnalysisEngine", "AnalysisReport", "ModuleSource", "Project"]


@dataclass(frozen=True, slots=True)
class ModuleSource:
    """One parsed module: path, dotted name, raw lines and suppressions."""

    path: str
    module: str
    lines: tuple[str, ...]
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]

    def suppresses(self, finding: Finding) -> bool:
        """Whether a suppression comment on the finding's line covers its code."""
        codes = self.suppressions.get(finding.line)
        if codes is None:
            return False
        return "ALL" in codes or finding.code in codes


@dataclass(frozen=True, slots=True)
class Project:
    """Everything the checkers see: all modules of the analysed tree."""

    root: str
    modules: dict[str, ModuleSource]

    def module(self, dotted: str) -> ModuleSource | None:
        """Look a module up by dotted name (``repro.core.grid``)."""
        return self.modules.get(dotted)

    def sorted_modules(self) -> list[ModuleSource]:
        """Modules in deterministic (dotted-name) order."""
        return [self.modules[name] for name in sorted(self.modules)]


@dataclass(slots=True)
class AnalysisReport:
    """Outcome of one engine run.

    ``findings`` are the live diagnostics (sorted by location); anything a
    suppression comment matched lands in ``suppressed`` instead.
    ``unused_suppressions`` lists ``(path, line, code)`` triples whose
    comment matched no finding — stale escapes a ``--strict`` gate rejects.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[tuple[str, int, str]] = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run produced no live findings."""
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        """JSON-ready document (schema ``repro-lint/v1``, ordered keys)."""
        return {
            "schema": "repro-lint/v1",
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [finding.as_dict() for finding in self.suppressed],
            "summary": {
                "finding_count": len(self.findings),
                "modules_scanned": self.modules_scanned,
                "suppressed_count": len(self.suppressed),
                "unused_suppression_count": len(self.unused_suppressions),
            },
            "unused_suppressions": [
                {"code": code, "line": line, "path": path}
                for path, line, code in self.unused_suppressions
            ],
        }


class AnalysisEngine:
    """Walks a package tree and runs checker passes over the parsed project."""

    def __init__(
        self,
        root: Path,
        checkers: "Sequence[Checker] | None" = None,
        select: Sequence[str] | None = None,
    ) -> None:
        from repro.analysis.checkers import all_checkers

        self.root = root.resolve()
        self._checkers: list[Checker] = (
            list(checkers) if checkers is not None else all_checkers()
        )
        self._select = tuple(select) if select else ()

    @classmethod
    def for_package(
        cls,
        checkers: "Sequence[Checker] | None" = None,
        select: Sequence[str] | None = None,
    ) -> "AnalysisEngine":
        """An engine over the installed ``repro`` package source tree."""
        import repro

        package_root = Path(repro.__file__).resolve().parent
        return cls(package_root, checkers=checkers, select=select)

    # ------------------------------------------------------------------ #
    # Project loading
    # ------------------------------------------------------------------ #
    def load_project(self) -> Project:
        """Parse every ``*.py`` under the root into a :class:`Project`."""
        if self.root.is_file():
            paths = [self.root]
            base = self.root.parent
        else:
            paths = sorted(self.root.rglob("*.py"))
            base = self.root.parent
        modules: dict[str, ModuleSource] = {}
        for path in paths:
            if "__pycache__" in path.parts:
                continue
            source = self._load_module(path, base)
            modules[source.module] = source
        return Project(root=str(self.root), modules=modules)

    def _load_module(self, path: Path, base: Path) -> ModuleSource:
        text = path.read_text(encoding="utf-8")
        relative = path.relative_to(base)
        parts = list(relative.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts.pop()
        dotted = ".".join(parts)
        lines = tuple(text.splitlines())
        return ModuleSource(
            path=str(relative),
            module=dotted,
            lines=lines,
            tree=ast.parse(text, filename=str(relative)),
            suppressions=parse_suppressions(lines),
        )

    # ------------------------------------------------------------------ #
    # Checker dispatch
    # ------------------------------------------------------------------ #
    def _selected(self, finding: Finding) -> bool:
        if not self._select:
            return True
        return any(finding.code.startswith(prefix) for prefix in self._select)

    def run(self, project: Project | None = None) -> AnalysisReport:
        """Run every checker and fold the results into one report."""
        view = project if project is not None else self.load_project()
        report = AnalysisReport(modules_scanned=len(view.modules))
        raw: list[Finding] = []
        for checker in self._checkers:
            raw.extend(checker.run(view))
        used: dict[tuple[str, int], set[str]] = {}
        for finding in sorted(raw, key=Finding.sort_key):
            if not self._selected(finding):
                continue
            module = self._module_for_path(view, finding.path)
            if module is not None and module.suppresses(finding):
                codes = module.suppressions[finding.line]
                matched = finding.code if finding.code in codes else "ALL"
                used.setdefault((finding.path, finding.line), set()).add(matched)
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
        if not self._select:
            # With a --select filter active, suppressions for unselected
            # codes would all look stale; only audit them on full runs.
            for module in view.sorted_modules():
                for line, codes in sorted(module.suppressions.items()):
                    matched = used.get((module.path, line), set())
                    for code in sorted(codes - matched):
                        report.unused_suppressions.append((module.path, line, code))
        return report

    @staticmethod
    def _module_for_path(project: Project, path: str) -> ModuleSource | None:
        for module in project.modules.values():
            if module.path == path:
                return module
        return None
