"""Finding records and the error-code registry of the static analysis layer.

Every checker reports :class:`Finding` instances carrying a stable error
code.  Codes are grouped by checker family (``REPRO1xx`` lock discipline,
``REPRO2xx`` unsafe caching, ``REPRO3xx`` parity purity, ``REPRO4xx`` API
drift) so suppression comments and ``--select`` filters can address either a
single code or a whole family by prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CHECKER_CODES", "Finding"]

#: Every error code the shipped checkers can emit, with a one-line summary.
#: ``python -m repro.cli lint --codes`` prints this table; the fixture tests
#: assert each code fires on a known-bad snippet.
CHECKER_CODES: dict[str, str] = {
    "REPRO101": "guarded attribute accessed outside its declared lock",
    "REPRO102": "guarded-by declaration names a lock the class never defines",
    "REPRO201": "functools cache on a function with mutable or identity-unstable parameters",
    "REPRO301": "nondeterminism source inside a parity-critical function",
    "REPRO401": "exported symbol does not resolve to a definition",
    "REPRO402": "exported callable is missing parameter or return annotations",
    "REPRO403": "exported symbol is missing a docstring",
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One checker diagnostic, anchored to a source location.

    ``path`` is repo-relative (as the engine walked it), ``line`` is
    1-indexed and matches the line a ``# repro-lint: disable=<code>``
    suppression comment must sit on.  ``symbol`` names the offending
    function, attribute or export where that helps triage.
    """

    path: str
    line: int
    code: str
    message: str
    symbol: str = ""
    column: int = field(default=0, compare=False)

    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic reporting order: path, line, column, code."""
        return (self.path, self.line, self.column, self.code)

    def location(self) -> str:
        """``path:line`` form used by the table output (clickable in IDEs)."""
        return f"{self.path}:{self.line}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation with deterministically ordered keys."""
        return {
            "code": self.code,
            "column": self.column,
            "line": self.line,
            "message": self.message,
            "path": self.path,
            "symbol": self.symbol,
        }
