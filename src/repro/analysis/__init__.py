"""Static analysis for the repro codebase: lock discipline, purity, API drift.

PRs 2-5 turned the reproduction into a concurrent system whose correctness
rests on invariants that runtime differential tests can only sample: shared
mutable state must be touched under its lock, caches must not key mutable or
identity-unstable values, parity-critical hot paths must stay deterministic,
and the public API surface must not silently drift.  This subpackage checks
those contracts *statically*, at lint time, the way a race detector or
sanitizer would in a native stack:

* :mod:`repro.analysis.engine` walks a source tree, parses every module once
  and runs the registered checker passes over the shared project view;
* :mod:`repro.analysis.checkers` hosts the pluggable passes — lock
  discipline (``REPRO1xx``), unsafe caching (``REPRO2xx``), parity purity
  (``REPRO3xx``) and API drift (``REPRO4xx``);
* :mod:`repro.analysis.contracts` parses the in-source annotations the
  checkers consume (``# guarded-by: <lock>``, ``# parity-critical``,
  ``# repro-lint: holds=<lock>``) and the suppression syntax
  (``# repro-lint: disable=<code>``).

Run it via ``python -m repro.cli lint`` (table or JSON output) or
programmatically::

    >>> from repro.analysis import AnalysisEngine
    >>> report = AnalysisEngine.for_package().run()
    >>> report.findings
    []
"""

from repro.analysis.engine import AnalysisEngine, AnalysisReport, ModuleSource, Project
from repro.analysis.findings import CHECKER_CODES, Finding
from repro.analysis.checkers import all_checkers

__all__ = [
    "AnalysisEngine",
    "AnalysisReport",
    "CHECKER_CODES",
    "Finding",
    "ModuleSource",
    "Project",
    "all_checkers",
]
