"""Municipal planning scenario (Example 1 of the paper).

A planner holds a query dataset of transit stops in one district and wants to

1. find routes that *overlap* the query the most — to study traffic patterns
   on shared corridors (OJSP), and
2. find routes that *extend coverage* while staying connected to the query —
   to design transfer routes reaching new areas (CJSP), comparing several
   connectivity thresholds.

Run with::

    python examples/municipal_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import CoverageQuery, OverlapQuery
from repro.data.generators import generate_route_dataset
from repro.index.dits import DITSLocalIndex
from repro.search.coverage import CoverageSearch
from repro.search.overlap import OverlapSearch

#: A region standing in for the Washington D.C. / Maryland area of Fig. 1.
CITY_REGION = BoundingBox(-77.4, 38.7, -76.6, 39.3)


def build_route_corpus(seed: int = 11, count: int = 120) -> list:
    """Generate a corpus of synthetic transit routes inside the city region."""
    rng = np.random.default_rng(seed)
    return [
        generate_route_dataset(f"route-{i}", CITY_REGION, rng, length=150)
        for i in range(count)
    ]


def main() -> None:
    grid = Grid(theta=14)  # fine grid: city-scale cells
    routes = build_route_corpus()
    nodes = [route.to_node(grid) for route in routes]

    index = DITSLocalIndex(leaf_capacity=10)
    index.build(nodes)
    print(f"indexed {len(index)} routes, tree height {index.height()}")

    # The query is one of the routes: the planner's own corridor of interest.
    query = nodes[0]
    print(f"query route covers {query.coverage} cells")

    # Task 1: overlap joinable search — who shares my corridor?
    overlap_search = OverlapSearch(index)
    overlap = overlap_search.search(OverlapQuery(query=query, k=4))
    print("\nTask 1 (OJSP): routes sharing the most cells with the query")
    for entry in overlap:
        print(f"  {entry.dataset_id:<12} shared cells = {entry.score:.0f}")

    # Task 2: coverage joinable search — how do I reach new areas while
    # keeping every selected route connected (transferable) to my corridor?
    coverage_search = CoverageSearch(index)
    print("\nTask 2 (CJSP): coverage extension at different connectivity thresholds")
    for delta in (0.0, 5.0, 15.0):
        result = coverage_search.search(CoverageQuery(query=query, k=4, delta=delta))
        chosen = ", ".join(result.dataset_ids) or "(none)"
        print(
            f"  delta={delta:>4.0f} cells -> coverage {result.query_coverage} -> "
            f"{result.total_coverage} using [{chosen}]"
        )
    print(
        "\nA larger delta admits more distant routes, so coverage grows, at the "
        "price of longer transfers — exactly the trade-off of Fig. 1(c)."
    )

    stats = coverage_search.last_stats
    print(
        f"\nlast CJSP run: {stats.iterations} greedy iterations, "
        f"{stats.subtree_accepts} subtrees accepted wholesale, "
        f"{stats.subtree_rejects} rejected wholesale, "
        f"{stats.exact_distance_checks} exact distance checks, "
        f"{stats.gain_skips} gain computations skipped by the size filter"
    )


if __name__ == "__main__":
    main()
