"""Index maintenance: keeping DITS-L fresh as datasets arrive, change and leave.

Open data portals change daily; Appendix IX-C of the paper therefore equips
DITS with incremental insert / update / delete operations instead of full
rebuilds.  This example shows the maintenance API, verifies that search
results stay exact after every maintenance step, and compares incremental
maintenance against a full rebuild.

Run with::

    python examples/index_maintenance.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.geometry import BoundingBox
from repro.core.grid import Grid
from repro.core.problems import OverlapQuery, brute_force_overlap
from repro.data.generators import generate_cluster_dataset, generate_route_dataset
from repro.index.dits import DITSLocalIndex
from repro.index.stats import local_index_stats
from repro.search.overlap import OverlapSearch

REGION = BoundingBox(-77.5, 38.5, -76.5, 39.5)


def make_corpus(count: int, seed: int) -> list:
    """A mixed corpus of routes and clustered layers inside the region."""
    rng = np.random.default_rng(seed)
    corpus = []
    for i in range(count):
        if i % 2 == 0:
            corpus.append(generate_route_dataset(f"base-{i}", REGION, rng, length=120))
        else:
            corpus.append(generate_cluster_dataset(f"base-{i}", REGION, rng, size=150))
    return corpus


def check_exactness(index: DITSLocalIndex, grid: Grid, label: str) -> None:
    """Assert that OverlapSearch still matches a brute-force scan."""
    nodes = list(index.nodes())
    search = OverlapSearch(index)
    query = nodes[0]
    fast = search.search(OverlapQuery(query=query, k=5))
    exact = brute_force_overlap(query, nodes, 5)
    assert sorted(fast.scores, reverse=True) == sorted(exact.scores, reverse=True), label
    print(f"  [{label}] exactness preserved ({len(index)} datasets, height {index.height()})")


def main() -> None:
    grid = Grid(theta=13)
    corpus = make_corpus(80, seed=5)
    nodes = [dataset.to_node(grid) for dataset in corpus]

    index = DITSLocalIndex(leaf_capacity=8)
    index.build(nodes)
    print(f"built DITS-L over {len(index)} datasets")
    check_exactness(index, grid, "after build")

    # --- inserts -------------------------------------------------------- #
    rng = np.random.default_rng(99)
    new_datasets = [generate_route_dataset(f"new-{i}", REGION, rng, length=100) for i in range(20)]
    start = time.perf_counter()
    for dataset in new_datasets:
        index.insert(dataset.to_node(grid))
    insert_ms = (time.perf_counter() - start) * 1000
    print(f"inserted 20 datasets incrementally in {insert_ms:.1f} ms")
    check_exactness(index, grid, "after inserts")

    # --- updates -------------------------------------------------------- #
    start = time.perf_counter()
    for i in range(10):
        refreshed = generate_route_dataset(f"base-{2 * i}", REGION, rng, length=140)
        index.update(refreshed.to_node(grid))
    update_ms = (time.perf_counter() - start) * 1000
    print(f"updated 10 datasets in place in {update_ms:.1f} ms")
    check_exactness(index, grid, "after updates")

    # --- deletes -------------------------------------------------------- #
    for i in range(5):
        index.delete(f"new-{i}")
    print("deleted 5 datasets")
    check_exactness(index, grid, "after deletes")

    # --- incremental vs rebuild ----------------------------------------- #
    remaining_nodes = list(index.nodes())
    start = time.perf_counter()
    rebuilt = DITSLocalIndex(leaf_capacity=8)
    rebuilt.build(remaining_nodes)
    rebuild_ms = (time.perf_counter() - start) * 1000
    print(
        f"\nfull rebuild over {len(remaining_nodes)} datasets: {rebuild_ms:.1f} ms "
        f"vs {insert_ms:.1f} ms for the 20 incremental inserts"
    )

    # --- churn safety ---------------------------------------------------- #
    # Each mutation touches one root-to-leaf path, and the index rebalances
    # that path (scapegoat-style) whenever churn skews it, so sustained
    # maintenance never degrades the tree below a fresh build.
    maintenance = index.rebalance_stats
    print(
        f"maintenance counters: {maintenance.rebalance_count} partial rebuilds, "
        f"{maintenance.leaf_merges} leaf merges; "
        f"height {index.height()} vs fresh rebuild {rebuilt.height()}"
    )
    stats = local_index_stats(index)
    assert stats["max_depth"] <= 2 * rebuilt.height()
    print(f"local_index_stats(): {stats}")


if __name__ == "__main__":
    main()
