"""Federated search over all five synthetic data sources.

Demonstrates the query-distribution strategies of Section VI-A: the same
workload is executed once with candidate-source routing and query clipping
enabled, and once in broadcast mode (every query shipped in full to every
source), and the communication costs are compared.

Run with::

    python examples/multi_source_federation.py
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.data import build_all_sources
from repro.data.queries import sample_queries
from repro.distributed.center import DistributionPolicy
from repro.distributed.framework import MultiSourceFramework


def build_framework(policy: DistributionPolicy, corpora) -> MultiSourceFramework:
    """A framework over all five synthetic sources under ``policy``."""
    framework = MultiSourceFramework(theta=12, policy=policy)
    for source_name, datasets in corpora.items():
        framework.add_source(source_name, datasets)
    return framework


def main() -> None:
    corpora = build_all_sources(scale=0.01, seed=7)
    optimised = build_framework(DistributionPolicy(route_to_candidates=True, clip_query=True), corpora)
    broadcast = build_framework(DistributionPolicy(route_to_candidates=False, clip_query=False), corpora)
    print(f"sources: {optimised.dataset_counts()}")

    # Queries sampled from the Transit corpus, as in the paper's workload.
    queries = [
        optimised.query_from_dataset(dataset)
        for dataset in sample_queries(corpora["Transit"], count=5, seed=23)
    ]

    rows = []
    for label, framework in (("DITS routing + clipping", optimised), ("broadcast", broadcast)):
        framework.reset_communication_stats()
        for query in queries:
            framework.overlap_search(query, k=5)
        overlap_stats = framework.communication_stats()
        framework.reset_communication_stats()
        for query in queries:
            framework.coverage_search(query, k=5, delta=10.0)
        coverage_stats = framework.communication_stats()
        rows.append(
            {
                "strategy": label,
                "ojsp_bytes": overlap_stats.total_bytes,
                "ojsp_messages": overlap_stats.messages_sent,
                "cjsp_bytes": coverage_stats.total_bytes,
                "cjsp_messages": coverage_stats.messages_sent,
            }
        )
    print()
    print(format_table(rows, title="Communication cost for 5 OJSP + 5 CJSP queries"))

    saved = 1 - rows[0]["ojsp_bytes"] / max(rows[1]["ojsp_bytes"], 1)
    print(
        f"\nThe DITS-based distribution strategy ships {saved:.0%} fewer bytes for the "
        "OJSP workload because only candidate sources receive requests and each "
        "request carries only the clipped query region (Figs. 13 and 19)."
    )

    # Results are identical regardless of the distribution strategy.
    sample_query = queries[0]
    a = optimised.overlap_search(sample_query, k=3)
    b = broadcast.overlap_search(sample_query, k=3)
    print(f"\nsame top-3 under both strategies: {a.dataset_ids == b.dataset_ids}")


if __name__ == "__main__":
    main()
