"""Quickstart: index two synthetic data sources and run both joinable searches.

Run with::

    python examples/quickstart.py

The script builds a multi-source framework over synthetic equivalents of the
paper's Transit and Baidu portals, issues one overlap joinable search (OJSP)
and one coverage joinable search (CJSP), and prints the results together with
the communication cost the queries incurred.
"""

from __future__ import annotations

from repro import MultiSourceFramework
from repro.data import build_source_datasets


def main() -> None:
    # A data center gridding the world at resolution theta=12 (cells of
    # roughly 10km x 5km, as in the paper's parameter discussion).
    framework = MultiSourceFramework(theta=12)

    # Register two autonomous data sources; each builds its own DITS-L index.
    transit = build_source_datasets("Transit", scale=0.02, seed=7)
    baidu = build_source_datasets("Baidu", scale=0.01, seed=7)
    framework.add_source("Transit", transit)
    framework.add_source("Baidu", baidu)
    print(f"registered sources: {framework.dataset_counts()}")

    # Use one of the transit datasets as the query (the paper samples queries
    # from the corpora the same way).
    query = framework.query_from_dataset(transit[0])
    print(f"query covers {query.coverage} grid cells")

    # Overlap joinable search: the k datasets sharing the most cells with the
    # query (depth-wise enrichment).
    overlap = framework.overlap_search(query, k=5)
    print("\nOJSP: top-5 overlapping datasets")
    for entry in overlap:
        print(f"  {entry.dataset_id:<20} overlap={entry.score:>6.0f} source={entry.source_id}")

    # Coverage joinable search: at most k connected datasets maximising the
    # union of covered cells (width-wise enrichment).
    coverage = framework.coverage_search(query, k=5, delta=10.0)
    print("\nCJSP: greedy coverage selection (delta = 10 cells)")
    for entry in coverage:
        print(f"  {entry.dataset_id:<20} marginal gain={entry.score:>6.0f} source={entry.source_id}")
    print(
        f"coverage grew from {coverage.query_coverage} cells (query alone) "
        f"to {coverage.total_coverage} cells"
    )

    stats = framework.communication_stats()
    print(
        f"\ncommunication: {stats.messages_sent} messages, {stats.total_bytes} bytes, "
        f"~{framework.transmission_time_ms():.2f} ms simulated transmission time"
    )


if __name__ == "__main__":
    main()
