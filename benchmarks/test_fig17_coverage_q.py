"""Fig. 17: CJSP search time as the number of queries q grows."""

from __future__ import annotations

from conftest import BENCH_CONFIG, timings_by_method

from repro.bench.experiments import fig17_coverage_vs_q
from repro.bench.reporting import format_table

Q_VALUES = (2, 4, 6)


def test_fig17_sweep(benchmark):
    """Regenerate Fig. 17: workload time grows with q, CoverageSearch stays fastest."""
    rows = benchmark.pedantic(
        fig17_coverage_vs_q,
        kwargs={"q_values": Q_VALUES, "k": 5, "delta": 10.0, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 17: CJSP time (ms) vs q"))

    totals = timings_by_method(rows)
    assert totals["CoverageSearch"] == min(totals.values())
    assert totals["SG+DITS"] <= totals["SG"]

    for method in totals:
        series = [row["time_ms"] for row in rows if row["method"] == method]
        assert series[-1] > series[0] * 0.9, method
