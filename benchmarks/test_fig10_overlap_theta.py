"""Fig. 10: OJSP search time as the grid resolution theta grows."""

from __future__ import annotations

from conftest import OJSP_CONFIG, timings_by_method

from repro.bench.experiments import fig10_overlap_vs_theta
from repro.bench.reporting import format_table

#: theta=14 QuadTree construction dominates the whole suite's runtime, so the
#: sweep stops at 13; pass the paper's full range explicitly to go further.
THETAS = (10, 11, 12, 13)


def test_fig10_sweep(benchmark):
    """Regenerate Fig. 10 and assert the resolution trend and the winner."""
    rows = benchmark.pedantic(
        fig10_overlap_vs_theta,
        kwargs={"thetas": THETAS, "k": 5, "query_count": 5, "config": OJSP_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 10: OJSP time (ms) vs theta"))

    totals = timings_by_method(rows)
    for method in ("Rtree", "Josie", "QuadTree"):
        assert totals["OverlapSearch"] <= totals[method], method
    assert totals["OverlapSearch"] <= 2.5 * totals["STS3"]

    # The paper: every method slows down as theta grows because cell sets get
    # larger.  We assert the trend for the QuadTree, whose cost is directly
    # proportional to the number of stored cell occurrences (the other
    # methods are fast enough at this scale for timer noise to mask it).
    series = [row["time_ms"] for row in rows if row["method"] == "QuadTree"]
    assert series[-1] >= series[0] * 0.8
