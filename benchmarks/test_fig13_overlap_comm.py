"""Figs. 13-14: OJSP communication cost (bytes) and transmission time vs q."""

from __future__ import annotations

from conftest import BENCH_CONFIG, Q_VALUES

from repro.bench.experiments import fig13_14_overlap_communication
from repro.bench.reporting import format_table


def test_fig13_fig14_sweep(benchmark):
    """Regenerate Figs. 13-14: the DITS distribution strategy ships fewer bytes."""
    rows = benchmark.pedantic(
        fig13_14_overlap_communication,
        kwargs={"q_values": Q_VALUES, "k": 5, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Figs. 13-14: OJSP communication bytes and transmission time vs q"))

    for q in Q_VALUES:
        at_q = {row["method"]: row for row in rows if row["q"] == q}
        optimised = at_q["OverlapSearch"]
        broadcast = at_q["Broadcast"]
        # Fig. 13: fewer bytes with candidate routing + query clipping.
        assert optimised["bytes"] <= broadcast["bytes"], q
        # Fig. 14: transmission time follows the byte count.
        assert optimised["transmission_ms"] <= broadcast["transmission_ms"], q

    # Bytes grow with the number of queries for both strategies.
    for method in ("OverlapSearch", "Broadcast"):
        series = [row["bytes"] for row in rows if row["method"] == method]
        assert series == sorted(series), method
