"""Fig. 11: OJSP search time as the number of queries q grows."""

from __future__ import annotations

from conftest import OJSP_CONFIG, Q_VALUES, timings_by_method

from repro.bench.experiments import fig11_overlap_vs_q
from repro.bench.reporting import format_table


def test_fig11_sweep(benchmark):
    """Regenerate Fig. 11: time grows with q, OverlapSearch leads the filter-verify methods."""
    rows = benchmark.pedantic(
        fig11_overlap_vs_q,
        kwargs={"q_values": Q_VALUES, "k": 5, "config": OJSP_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 11: OJSP time (ms) vs q"))

    totals = timings_by_method(rows)
    for method in ("Rtree", "Josie", "QuadTree"):
        assert totals["OverlapSearch"] <= totals[method], method
    assert totals["OverlapSearch"] <= 2.5 * totals["STS3"]

    # Workload time must grow with the number of queries for the slower,
    # scan-dominated methods; the sub-millisecond ones are noise-bound.
    for method in ("QuadTree", "STS3"):
        series = [row["time_ms"] for row in rows if row["method"] == method]
        assert series[-1] > series[0] * 0.9, method
