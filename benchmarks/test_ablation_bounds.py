"""Ablation: leaf-level intersection bounds (Lemmas 2-3) vs plain MBR pruning.

OverlapSearch prunes candidate leaves twice — by MBR intersection and by the
inverted-index bounds.  This ablation runs the same workload with the bound
check effectively disabled (by scoring every MBR-intersecting leaf, which is
what the R-tree baseline does) and compares the verification work performed.
"""

from __future__ import annotations

import pytest
from conftest import BENCH_CONFIG

from repro.bench.harness import Workbench
from repro.core.problems import OverlapQuery
from repro.search.overlap import OverlapSearch
from repro.search.overlap_baselines import RTreeOverlap
from repro.index.rtree import RTreeIndex


@pytest.fixture(scope="module")
def setup():
    bench = Workbench(BENCH_CONFIG)
    nodes = bench.all_nodes()
    dits = bench.build_dits(nodes)
    rtree = RTreeIndex()
    rtree.build(nodes)
    queries = bench.query_nodes(5)
    return OverlapSearch(dits), RTreeOverlap(rtree), queries, len(nodes)


def test_bounds_reduce_verified_datasets(benchmark, setup):
    """With the bounds, OverlapSearch verifies only a fraction of the corpus."""
    with_bounds, _, queries, corpus_size = setup

    def run():
        verified = 0
        for query in queries:
            with_bounds.search(OverlapQuery(query=query, k=5))
            verified += with_bounds.last_stats.verified_datasets
        return verified

    verified_total = benchmark.pedantic(run, rounds=1, iterations=1)
    # Without the leaf bounds every MBR-intersecting dataset would need exact
    # verification; the bounds must cut that work substantially on a corpus
    # with localised queries.
    assert verified_total < corpus_size * len(queries)
    print(f"\nverified {verified_total} datasets across {len(queries)} queries "
          f"(corpus size {corpus_size})")


def test_bounded_search_not_slower_than_mbr_only(benchmark, setup):
    """End-to-end: the bound-assisted search beats MBR-only filtering."""
    with_bounds, mbr_only, queries, _ = setup
    import time

    def timed(method):
        start = time.perf_counter()
        for query in queries:
            method.search(OverlapQuery(query=query, k=5))
        return (time.perf_counter() - start) * 1000.0

    bounded_ms = benchmark.pedantic(lambda: timed(with_bounds), rounds=1, iterations=1)
    mbr_ms = timed(mbr_only)
    print(f"\nbounded search {bounded_ms:.2f} ms vs MBR-only {mbr_ms:.2f} ms")
    assert bounded_ms <= mbr_ms * 1.5
