"""Table I and Fig. 7: statistics and spatial skew of the five data sources."""

from __future__ import annotations

from conftest import BENCH_SCALE

from repro.bench.experiments import fig7_source_heatmaps, table1_source_statistics
from repro.bench.reporting import format_table


def test_table1_source_statistics(benchmark):
    """Regenerate Table I at synthetic scale and check per-source proportions."""
    rows = benchmark.pedantic(
        table1_source_statistics, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title=f"Table I (synthetic, scale={BENCH_SCALE})"))

    by_source = {row["source"]: row for row in rows}
    assert set(by_source) == {"Baidu", "BTAA", "NYU", "Transit", "UMN"}
    # The relative ordering of dataset counts must match the paper's Table I:
    # Baidu > UMN > BTAA > Transit > NYU.
    counts = [by_source[name]["datasets"] for name in ("Baidu", "UMN", "BTAA", "Transit", "NYU")]
    assert counts == sorted(counts, reverse=True)
    for row in rows:
        assert row["points"] > 0


def test_fig7_source_density_skew(benchmark):
    """Regenerate the Fig. 7 density summaries and check the skew pattern."""
    heatmaps = benchmark.pedantic(
        fig7_source_heatmaps, kwargs={"scale": BENCH_SCALE, "theta": 6}, rounds=1, iterations=1
    )
    print()
    for source, rows in heatmaps.items():
        top = rows[0]["datasets"] if rows else 0
        print(f"  {source:<8} densest coarse cell holds {top} datasets "
              f"({len(rows)} populated cells listed)")
    # Transit (a compact regional portal) concentrates its datasets in far
    # fewer coarse cells than the worldwide portals do.
    transit_cells = len(heatmaps["Transit"])
    btaa_cells = len(heatmaps["BTAA"])
    assert transit_cells <= btaa_cells or heatmaps["Transit"][0]["datasets"] >= heatmaps["BTAA"][0]["datasets"]
