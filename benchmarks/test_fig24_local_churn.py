"""Fig. 24 (repo extension): DITS-L churn — rebalancing vs a skewing tree.

The paper's Appendix IX-C maintenance operations never reshape the tree;
this sweep replays a drifting insert/delete/update stream at 1k-10k datasets
and compares the legacy behaviour (``static``) against the PR-5 rebalancer
(eager and deferred-refit variants) and a freshly rebuilt tree.  Asserted,
per the acceptance criteria:

* **exactness** — every variant answers every probe query bit-identically to
  the freshly rebuilt tree (OJSP and CJSP, canonical tie-breaking);
* **bounded height** — after 1k mutations at 5k datasets a rebalanced tree
  stays within 2x of the bulk-built height, and never taller than the
  never-rebalanced tree;
* **query latency** — the rebalanced churned tree answers the probe workload
  within 1.2x of the freshly rebuilt tree (plus a small absolute guard so a
  sub-millisecond workload cannot flake the lane on scheduler noise).
"""

from __future__ import annotations

from conftest import BENCH_CONFIG  # noqa: F401  (kept for config parity with other sweeps)

from repro.bench.experiments import fig24_local_index_churn
from repro.bench.reporting import format_table

DATASET_COUNTS = (1000, 5000)
CHURN_OPS = 1000
#: Latency criterion: churned-but-rebalanced within this factor of a fresh
#: rebuild.  The absolute floor keeps a sub-ms workload from flaking on
#: scheduler noise.
LATENCY_FACTOR = 1.2
LATENCY_FLOOR_MS = 5.0


def test_fig24_sweep(benchmark):
    """Regenerate Fig. 24 and check exactness, height and latency bounds."""
    rows = benchmark.pedantic(
        fig24_local_index_churn,
        kwargs={"dataset_counts": DATASET_COUNTS, "churn_ops": CHURN_OPS},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 24: DITS-L churn / rebalancing"))

    by_count = {
        count: {row["variant"]: row for row in rows if row["datasets"] == count}
        for count in DATASET_COUNTS
    }

    for count, variants in by_count.items():
        assert set(variants) == {"static", "rebalance", "deferred"}
        for label, row in variants.items():
            # Bit-identical OJSP/CJSP answers vs the freshly rebuilt tree,
            # for every variant: exactness is independent of tree shape.
            assert row["checksum"] == row["rebuilt_checksum"], (
                f"{label} at {count} datasets diverged from the rebuilt tree"
            )

        for label in ("rebalance", "deferred"):
            row = variants[label]
            # The alpha-balance invariant keeps the churned tree's height
            # within 2x of a bulk median-split build.
            assert row["height"] <= 2 * row["rebuilt_height"], (
                f"{label} at {count}: height {row['height']} "
                f"vs rebuilt {row['rebuilt_height']}"
            )
            # The rebalancer must actually have worked under this stream.
            assert row["rebalances"] > 0
            # Churned-tree query latency within 1.2x of a fresh rebuild.
            budget = max(
                LATENCY_FACTOR * row["rebuilt_query_ms"],
                row["rebuilt_query_ms"] + LATENCY_FLOOR_MS,
            )
            assert row["query_ms"] <= budget, (
                f"{label} at {count}: query {row['query_ms']:.2f}ms "
                f"vs rebuilt {row['rebuilt_query_ms']:.2f}ms"
            )

        # The rebalanced tree is never taller than the never-rebalanced one.
        assert (
            variants["rebalance"]["height"] <= variants["static"]["height"]
        )

    # Deferred refits really batched work: the deferred variant must have
    # deferred (and later flushed) re-tightening walks.
    deferred = by_count[max(DATASET_COUNTS)]["deferred"]
    assert deferred["deferred_refits"] > 0
    assert deferred["refit_flushes"] > 0
