"""Ablation: query clipping and candidate routing, separately.

Fig. 13/19 compare the full distribution strategy against a broadcast
baseline.  This ablation isolates the two ingredients — candidate routing
(strategy 1) and query clipping (strategy 2) — to show that each contributes
to the byte reduction on its own.
"""

from __future__ import annotations

import pytest
from conftest import BENCH_CONFIG

from repro.bench.experiments import _build_framework
from repro.bench.harness import Workbench
from repro.bench.reporting import format_table
from repro.distributed.center import DistributionPolicy

POLICIES = {
    "routing+clipping": DistributionPolicy(route_to_candidates=True, clip_query=True),
    "routing only": DistributionPolicy(route_to_candidates=True, clip_query=False),
    "clipping only": DistributionPolicy(route_to_candidates=False, clip_query=True),
    "broadcast": DistributionPolicy(route_to_candidates=False, clip_query=False),
}


@pytest.fixture(scope="module")
def queries():
    bench = Workbench(BENCH_CONFIG)
    return bench.query_nodes(4)


def test_each_strategy_reduces_bytes(benchmark, queries):
    """Every optimisation ships no more bytes than plain broadcast."""

    def run():
        rows = []
        for label, policy in POLICIES.items():
            framework = _build_framework(BENCH_CONFIG, policy)
            framework.reset_communication_stats()
            for query in queries:
                framework.overlap_search(query, k=5)
            stats = framework.communication_stats()
            rows.append(
                {
                    "policy": label,
                    "bytes": stats.total_bytes,
                    "messages": stats.messages_sent,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: query distribution strategies (OJSP, bytes)"))

    by_policy = {row["policy"]: row for row in rows}
    broadcast = by_policy["broadcast"]["bytes"]
    assert by_policy["routing+clipping"]["bytes"] <= broadcast
    assert by_policy["routing only"]["bytes"] <= broadcast
    assert by_policy["clipping only"]["bytes"] <= broadcast
    # The combination is at least as good as either ingredient alone.
    combined = by_policy["routing+clipping"]["bytes"]
    assert combined <= by_policy["routing only"]["bytes"]
    assert combined <= by_policy["clipping only"]["bytes"]
    # Routing also reduces the number of messages (fewer sources contacted).
    assert by_policy["routing only"]["messages"] <= by_policy["broadcast"]["messages"]
