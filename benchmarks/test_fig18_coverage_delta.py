"""Fig. 18: CJSP search time as the connectivity threshold delta grows."""

from __future__ import annotations

from conftest import BENCH_CONFIG, DELTA_VALUES, timings_by_method

from repro.bench.experiments import fig18_coverage_vs_delta
from repro.bench.reporting import format_table


def test_fig18_sweep(benchmark):
    """Regenerate Fig. 18: more candidates per round as delta grows, CoverageSearch wins."""
    rows = benchmark.pedantic(
        fig18_coverage_vs_delta,
        kwargs={"delta_values": DELTA_VALUES, "k": 5, "query_count": 3, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 18: CJSP time (ms) vs delta"))

    totals = timings_by_method(rows)
    assert totals["CoverageSearch"] == min(totals.values())
    assert totals["SG+DITS"] <= totals["SG"]

    # A larger delta admits more connected candidates, so the plain greedy
    # baseline must spend at least as much time at the largest threshold as
    # at the smallest.
    sg_series = [row["time_ms"] for row in rows if row["method"] == "SG"]
    assert sg_series[-1] >= sg_series[0] * 0.8
