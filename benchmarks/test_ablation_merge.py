"""Ablation: the spatial-merge strategy of CoverageSearch.

CoverageSearch merges the growing result set into a single node so each
greedy round performs one connectivity search; SG+DITS performs one search
per result-set member.  Both share the Lemma 4 bounds, so the difference
between them isolates the merge strategy (the gap between SG+DITS and SG
isolates the bounds themselves).
"""

from __future__ import annotations

import pytest
from conftest import BENCH_CONFIG

from repro.bench.harness import Workbench, time_call
from repro.bench.reporting import format_table
from repro.core.problems import CoverageQuery
from repro.search.coverage import CoverageSearch
from repro.search.coverage_baselines import StandardGreedy, StandardGreedyWithDITS


@pytest.fixture(scope="module")
def setup():
    bench = Workbench(BENCH_CONFIG)
    nodes = bench.all_nodes()
    dits = bench.build_dits(nodes)
    return {
        "merge (CoverageSearch)": CoverageSearch(dits),
        "no merge (SG+DITS)": StandardGreedyWithDITS(dits),
        "no bounds (SG)": StandardGreedy(nodes),
    }, bench.query_nodes(3)


def test_merge_strategy_reduces_search_time(benchmark, setup):
    """The merge strategy is at least as fast as per-member connectivity search."""
    methods, queries = setup
    k, delta = 8, 10.0

    def run():
        rows = []
        for label, method in methods.items():
            elapsed_ms, _ = time_call(
                lambda m=method: [m.search(CoverageQuery(query=q, k=k, delta=delta)) for q in queries]
            )
            rows.append({"variant": label, "time_ms": elapsed_ms})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: spatial merge and distance bounds (CJSP, k=8)"))

    by_variant = {row["variant"]: row["time_ms"] for row in rows}
    assert by_variant["merge (CoverageSearch)"] <= by_variant["no merge (SG+DITS)"] * 1.2
    assert by_variant["no merge (SG+DITS)"] <= by_variant["no bounds (SG)"] * 1.2


def test_merge_strategy_preserves_coverage_quality(setup):
    """Accelerations must not change the achieved coverage (greedy quality)."""
    methods, queries = setup
    for query in queries:
        coverages = {
            label: method.search(CoverageQuery(query=query, k=5, delta=10.0)).total_coverage
            for label, method in methods.items()
        }
        best = max(coverages.values())
        for label, coverage in coverages.items():
            assert coverage >= 0.9 * best, (label, coverages)
