#!/usr/bin/env python
"""Benchmark entry point: run figure sweeps and emit a perf-trajectory JSON.

Runs the same experiment drivers the pytest benchmarks wrap, measures the
wall-clock of each sweep, and writes a ``BENCH_*.json`` file so successive
PRs can record their performance trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py --json BENCH_PR1.json
    PYTHONPATH=src python benchmarks/run_bench.py --figures fig10,fig12 --json out.json

The JSON schema (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "created": "...",             # ISO timestamp
      "python": "3.11.7",
      "config": {...},              # scales/sources/theta/seed used
      "baseline": {...},            # optional: the --baseline-json contents
      "figures": {
        "fig10": {"wall_s": 22.8, "rows": [...],
                  "seed_wall_s": 73.6, "speedup_vs_seed": 3.28},
        ...
      }
    }

``--baseline-json`` points at a reference measurement (e.g.
``benchmarks/baselines/seed.json``, recorded from the seed commit) of the
form ``{"label": ..., "figures": {"fig10": {"wall_s": ...}, ...}}``; when
given, per-figure ``seed_wall_s``/``speedup_vs_seed`` fields are filled in
so successive ``BENCH_*.json`` files carry the whole trajectory.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

# Cache generated corpora between sweeps/runs (invalidated automatically when
# the generation source changes); export REPRO_CORPUS_CACHE="" to disable.
os.environ.setdefault(
    "REPRO_CORPUS_CACHE", str(Path(__file__).resolve().parent / ".cache")
)

from conftest import (  # noqa: E402  (path set up above)
    BENCH_CONFIG,
    DELTA_VALUES,
    K_VALUES,
    LEAF_CAPACITIES,
    OJSP_CONFIG,
    Q_VALUES,
    THETA_VALUES,
)

from repro.bench import experiments  # noqa: E402
from repro.index.stats import distance_engine_stats  # noqa: E402

#: Monotone distance-engine counters reported per figure as deltas.
_ENGINE_COUNTERS = (
    "hits",
    "misses",
    "evictions",
    "invalidations",
    "trees_built",
    "batch_queries",
    "pair_queries",
)

#: Figure name -> zero-argument callable running the sweep.
SWEEPS = {
    "fig8": lambda: experiments.fig8_index_construction(
        thetas=THETA_VALUES, config=BENCH_CONFIG
    ),
    "fig9": lambda: experiments.fig9_overlap_vs_k(
        k_values=K_VALUES, query_count=5, config=OJSP_CONFIG
    ),
    "fig10": lambda: experiments.fig10_overlap_vs_theta(
        thetas=THETA_VALUES, k=5, query_count=5, config=OJSP_CONFIG
    ),
    "fig11": lambda: experiments.fig11_overlap_vs_q(
        q_values=Q_VALUES, k=5, config=OJSP_CONFIG
    ),
    "fig12": lambda: experiments.fig12_overlap_vs_leaf_capacity(
        capacities=LEAF_CAPACITIES, k=5, query_count=5, config=OJSP_CONFIG
    ),
    "fig15": lambda: experiments.fig15_coverage_vs_k(
        k_values=K_VALUES, query_count=3, config=BENCH_CONFIG
    ),
    "fig16": lambda: experiments.fig16_coverage_vs_theta(
        thetas=THETA_VALUES, query_count=3, config=BENCH_CONFIG
    ),
    "fig17": lambda: experiments.fig17_coverage_vs_q(
        q_values=Q_VALUES, config=BENCH_CONFIG
    ),
    "fig18": lambda: experiments.fig18_coverage_vs_delta(
        delta_values=DELTA_VALUES, query_count=3, config=BENCH_CONFIG
    ),
    "fig23": lambda: experiments.fig23_global_index_churn(**_fig23_kwargs()),
    "fig24": lambda: experiments.fig24_local_index_churn(**_fig24_kwargs()),
}


def _fig23_kwargs() -> dict:
    """Scale the DITS-G churn sweep via ``REPRO_BENCH_CHURN_SCALE``.

    fig23 synthesises source summaries directly (no corpora), so the corpus
    scale knobs do not apply; this factor shrinks the federation sizes and
    churn length instead (CI's fast lane uses 0.1).
    """
    factor = float(os.environ.get("REPRO_BENCH_CHURN_SCALE", "1.0"))
    if factor >= 1.0:
        return {}
    return {
        "source_counts": tuple(
            max(50, int(count * factor)) for count in (250, 1000, 2000)
        ),
        "churn_ops": max(20, int(200 * factor)),
        "query_count": max(10, int(50 * factor)),
    }


def _fig24_kwargs() -> dict:
    """Scale the DITS-L churn sweep via ``REPRO_BENCH_CHURN_SCALE``.

    Like fig23, fig24 synthesises its corpus directly; the factor shrinks
    the corpus sizes and the mutation-stream length for CI's fast lane.
    """
    factor = float(os.environ.get("REPRO_BENCH_CHURN_SCALE", "1.0"))
    if factor >= 1.0:
        return {}
    return {
        "dataset_counts": tuple(
            max(200, int(count * factor)) for count in (1000, 5000, 10000)
        ),
        "churn_ops": max(100, int(1000 * factor)),
        "query_count": max(5, int(12 * factor)),
    }


DEFAULT_FIGURES = ("fig9", "fig10", "fig11", "fig12", "fig15", "fig23", "fig24")


def run(figures: list[str], include_rows: bool, baseline: dict | None = None) -> dict:
    """Run the selected sweeps and return the trajectory document."""
    baseline_figures = (baseline or {}).get("figures", {})
    results: dict[str, dict] = {}
    for name in figures:
        sweep = SWEEPS[name]
        print(f"[run_bench] {name} ...", flush=True)
        engine_before = distance_engine_stats()
        start = time.perf_counter()
        rows = sweep()
        wall_s = time.perf_counter() - start
        engine_after = distance_engine_stats()
        entry: dict = {"wall_s": round(wall_s, 3)}
        entry["distance_engine"] = {
            key: engine_after[key] - engine_before[key] for key in _ENGINE_COUNTERS
        }
        entry["distance_engine"]["currsize"] = engine_after["currsize"]
        reference = baseline_figures.get(name, {}).get("wall_s")
        if reference:
            entry["seed_wall_s"] = reference
            entry["speedup_vs_seed"] = round(reference / wall_s, 2)
        if include_rows:
            entry["rows"] = rows
        results[name] = entry
        print(f"[run_bench] {name}: {wall_s:.2f}s ({len(rows)} rows)", flush=True)
    document = {
        "schema": "repro-bench/v1",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "bench": dataclasses.asdict(BENCH_CONFIG),
            "ojsp": dataclasses.asdict(OJSP_CONFIG),
        },
        "figures": results,
    }
    if baseline is not None:
        document["baseline"] = baseline
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the trajectory JSON to PATH (default: print to stdout)",
    )
    parser.add_argument(
        "--figures",
        default=",".join(DEFAULT_FIGURES),
        help=(
            "comma-separated figure sweeps to run, or 'all' "
            f"(known: {', '.join(sorted(SWEEPS))}; default: {','.join(DEFAULT_FIGURES)})"
        ),
    )
    parser.add_argument(
        "--no-rows",
        action="store_true",
        help="record only wall-clock per figure, not the measured rows",
    )
    parser.add_argument(
        "--baseline-json",
        metavar="PATH",
        help=(
            "reference measurement file ({'label': ..., 'figures': {name: "
            "{'wall_s': ...}}}) used to fill in per-figure speedups, e.g. "
            "benchmarks/baselines/seed.json"
        ),
    )
    args = parser.parse_args(argv)

    if args.figures.strip().lower() == "all":
        figures = sorted(SWEEPS)
    else:
        figures = [name.strip() for name in args.figures.split(",") if name.strip()]
    unknown = [name for name in figures if name not in SWEEPS]
    if unknown:
        parser.error(f"unknown figures: {', '.join(unknown)} (known: {', '.join(sorted(SWEEPS))})")

    baseline = None
    if args.baseline_json:
        baseline = json.loads(Path(args.baseline_json).read_text())
    document = run(figures, include_rows=not args.no_rows, baseline=baseline)
    payload = json.dumps(document, indent=2, sort_keys=True)
    if args.json:
        Path(args.json).write_text(payload + "\n")
        print(f"[run_bench] wrote {args.json}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
