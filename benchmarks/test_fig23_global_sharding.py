"""Fig. 23 (repo extension): DITS-G registration churn and pruning latency.

The paper stops at five portals; the sharded center targets thousands of
registered sources under churn.  This sweep regenerates the PR 3 trajectory
figure: bulk registration, interleaved register/unregister churn and
candidate-pruning latency for the monolithic DITS-G against sharded
configurations, and asserts the two properties the design promises — ordered
candidate parity (identical checksums) and a large rebuild-cost reduction
under churn at federation scale.
"""

from __future__ import annotations

from conftest import BENCH_CONFIG  # noqa: F401  (kept for config parity with other sweeps)

from repro.bench.experiments import fig23_global_index_churn
from repro.bench.reporting import format_table

SOURCE_COUNTS = (250, 1000, 2000)
SHARD_COUNTS = (4, 16)


def test_fig23_sweep(benchmark):
    """Regenerate Fig. 23 and check parity plus the churn speedup."""
    rows = benchmark.pedantic(
        fig23_global_index_churn,
        kwargs={"source_counts": SOURCE_COUNTS, "shard_counts": SHARD_COUNTS},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 23: DITS-G churn / pruning vs shard count"))

    by_count = {
        sources: {row["variant"]: row for row in rows if row["sources"] == sources}
        for sources in SOURCE_COUNTS
    }

    for sources, variants in by_count.items():
        # Bit-identical candidates: every variant answers every probe query
        # with the same ordered source list.
        checksums = {row["checksum"] for row in variants.values()}
        assert len(checksums) == 1, f"candidate mismatch at {sources} sources"

    # Rebuild cost under churn: the most-sharded variant must beat the
    # monolith by a wide margin once the federation is large.  The committed
    # BENCH_PR3.json records ~7-10x; assert a conservative 3x so scheduler
    # noise cannot flake the lane.
    most_sharded = f"sharded-{max(SHARD_COUNTS)}"
    for sources in SOURCE_COUNTS:
        if sources < 1000:
            continue
        mono_ms = by_count[sources]["monolith"]["churn_ms"]
        sharded_ms = by_count[sources][most_sharded]["churn_ms"]
        assert sharded_ms * 3 < mono_ms, (
            f"churn at {sources} sources: sharded {sharded_ms:.1f}ms "
            f"vs monolith {mono_ms:.1f}ms"
        )

    # Churn cost scales with shard count: more shards -> smaller rebuilds.
    for sources in SOURCE_COUNTS:
        if sources < 1000:
            continue
        ordered = [by_count[sources][f"sharded-{c}"]["churn_ms"] for c in SHARD_COUNTS]
        assert ordered[-1] <= ordered[0]
