"""Fig. 9: OJSP search time of the five methods as k grows."""

from __future__ import annotations

import pytest
from conftest import K_VALUES, OJSP_CONFIG, timings_by_method

from repro.bench.experiments import OVERLAP_METHODS, fig9_overlap_vs_k, _overlap_methods
from repro.bench.harness import Workbench
from repro.bench.reporting import format_table
from repro.core.problems import OverlapQuery


def test_fig9_sweep(benchmark):
    """Regenerate Fig. 9 and assert OverlapSearch wins among filter-verify methods."""
    rows = benchmark.pedantic(
        fig9_overlap_vs_k,
        kwargs={"k_values": K_VALUES, "query_count": 5, "config": OJSP_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 9: OJSP time (ms) vs k"))

    totals = timings_by_method(rows)
    assert set(totals) == set(OVERLAP_METHODS)
    # The paper reports OverlapSearch fastest overall (1.7-4.8x).  We assert
    # it beats every tree / filter-verify competitor; the flat posting-scan
    # STS3 stays surprisingly competitive in pure Python (see EXPERIMENTS.md),
    # so against it we only require the same order of magnitude.
    for method in ("Rtree", "Josie", "QuadTree"):
        assert totals["OverlapSearch"] <= totals[method], method
    assert totals["OverlapSearch"] <= 2.5 * totals["STS3"]


@pytest.fixture(scope="module")
def overlap_methods(workbench: Workbench):
    return _overlap_methods(workbench), workbench.query_nodes(5)


@pytest.mark.parametrize("method_name", OVERLAP_METHODS)
def test_fig9_per_method_default_k(benchmark, overlap_methods, method_name):
    """Per-method benchmark at the default k (cross-section of Fig. 9)."""
    methods, queries = overlap_methods
    method = methods[method_name]

    def run():
        for query in queries:
            method.search(OverlapQuery(query=query, k=5))

    benchmark(run)
