"""Figs. 19-20: CJSP communication cost (bytes) and transmission time vs q."""

from __future__ import annotations

from conftest import BENCH_CONFIG

from repro.bench.experiments import fig19_20_coverage_communication
from repro.bench.reporting import format_table

Q_VALUES = (2, 4, 6)


def test_fig19_fig20_sweep(benchmark):
    """Regenerate Figs. 19-20: the DITS distribution strategy ships fewer bytes."""
    rows = benchmark.pedantic(
        fig19_20_coverage_communication,
        kwargs={"q_values": Q_VALUES, "k": 5, "delta": 10.0, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Figs. 19-20: CJSP communication bytes and transmission time vs q"))

    for q in Q_VALUES:
        at_q = {row["method"]: row for row in rows if row["q"] == q}
        assert at_q["CoverageSearch"]["bytes"] <= at_q["Broadcast"]["bytes"], q
        assert at_q["CoverageSearch"]["transmission_ms"] <= at_q["Broadcast"]["transmission_ms"], q

    for method in ("CoverageSearch", "Broadcast"):
        series = [row["bytes"] for row in rows if row["method"] == method]
        assert series == sorted(series), method
