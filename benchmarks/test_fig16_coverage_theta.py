"""Fig. 16: CJSP search time as the grid resolution theta grows."""

from __future__ import annotations

from conftest import BENCH_CONFIG, timings_by_method

from repro.bench.experiments import fig16_coverage_vs_theta
from repro.bench.reporting import format_table

#: A slightly narrower sweep than Fig. 8/10: the SG baseline at theta=14 over
#: worldwide sources is the single most expensive configuration.
THETAS = (10, 11, 12, 13)


def test_fig16_sweep(benchmark):
    """Regenerate Fig. 16: all methods slow down with theta, CoverageSearch wins."""
    rows = benchmark.pedantic(
        fig16_coverage_vs_theta,
        kwargs={"thetas": THETAS, "k": 5, "delta": 10.0, "query_count": 3, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 16: CJSP time (ms) vs theta"))

    totals = timings_by_method(rows)
    assert totals["CoverageSearch"] == min(totals.values())
    assert totals["SG+DITS"] <= totals["SG"]

    # The plain greedy baseline pays for pairwise coverage computation and
    # must grow as the resolution (and therefore cell-set size) grows.
    sg_series = [row["time_ms"] for row in rows if row["method"] == "SG"]
    assert sg_series[-1] >= sg_series[0] * 0.8
