"""Fig. 8: construction time and memory of the five indexes as theta grows."""

from __future__ import annotations

import pytest
from conftest import BENCH_CONFIG, THETA_VALUES

from repro.bench.experiments import fig8_index_construction
from repro.bench.harness import Workbench
from repro.bench.reporting import format_table
from repro.index import DATASET_INDEX_CLASSES


def test_fig8_construction_sweep(benchmark):
    """Regenerate both panels of Fig. 8 and check the qualitative shape."""
    rows = benchmark.pedantic(
        fig8_index_construction,
        kwargs={"thetas": THETA_VALUES, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 8: index construction time (ms) and memory (bytes)"))

    by_theta: dict[int, dict[str, dict]] = {}
    for row in rows:
        by_theta.setdefault(row["theta"], {})[row["index"]] = row

    for theta, indexes in by_theta.items():
        # Memory: QuadTree is the largest structure at every resolution.
        memories = {name: row["memory_bytes"] for name, row in indexes.items()}
        assert memories["QuadTree"] == max(memories.values()), theta
        # DITS-L carries the leaf inverted index on top of the tree, so it is
        # never smaller than the plain R-tree.
        assert memories["DITS-L"] >= memories["Rtree"], theta

    # Memory of the posting-list indexes grows with theta (finer cells mean
    # more distinct cell IDs per dataset).  The QuadTree also stores one item
    # per cell occurrence but its node count additionally depends on how many
    # datasets collapse onto shared cells, so it is asserted only as the
    # largest structure above, not as monotone.
    for name in ("DITS-L", "STS3", "Josie"):
        series = [by_theta[theta][name]["memory_bytes"] for theta in sorted(by_theta)]
        assert series == sorted(series), name

    # Construction time at the default resolution: the paper reports DITS-L
    # slightly faster than the (insertion-built) R-tree and much faster than
    # Josie, with the QuadTree paying for one insert per cell occurrence.
    default_theta = sorted(by_theta)[len(by_theta) // 2]
    times = {name: row["build_ms"] for name, row in by_theta[default_theta].items()}
    assert times["DITS-L"] <= 1.3 * times["Rtree"]
    assert times["DITS-L"] <= times["Josie"]
    assert times["DITS-L"] <= times["QuadTree"]


@pytest.mark.parametrize("index_name", list(DATASET_INDEX_CLASSES))
def test_fig8_single_index_build(benchmark, workbench: Workbench, index_name: str):
    """Per-index build benchmark at the default resolution (Fig. 8 cross-section)."""
    nodes = workbench.all_nodes()
    index_cls = DATASET_INDEX_CLASSES[index_name]

    def build():
        index = index_cls()
        index.build(nodes)
        return index

    index = benchmark(build)
    assert len(index) == len(nodes)
