"""Fig. 15: CJSP search time of the three methods as k grows."""

from __future__ import annotations

import pytest
from conftest import BENCH_CONFIG, K_VALUES, timings_by_method

from repro.bench.experiments import COVERAGE_METHODS, _coverage_methods, fig15_coverage_vs_k
from repro.bench.harness import Workbench
from repro.bench.reporting import format_table
from repro.core.problems import CoverageQuery


def test_fig15_sweep(benchmark):
    """Regenerate Fig. 15 and assert the paper's method ordering."""
    rows = benchmark.pedantic(
        fig15_coverage_vs_k,
        kwargs={"k_values": K_VALUES, "delta": 10.0, "query_count": 3, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 15: CJSP time (ms) vs k"))

    totals = timings_by_method(rows)
    assert set(totals) == set(COVERAGE_METHODS)
    # Paper: CoverageSearch < SG+DITS < SG (up to 26.5x vs plain SG).
    assert totals["CoverageSearch"] == min(totals.values())
    assert totals["SG+DITS"] <= totals["SG"]


@pytest.fixture(scope="module")
def coverage_methods(workbench: Workbench):
    return _coverage_methods(workbench), workbench.query_nodes(2)


@pytest.mark.parametrize("method_name", COVERAGE_METHODS)
def test_fig15_per_method_default_k(benchmark, coverage_methods, method_name):
    """Per-method benchmark at the default k (cross-section of Fig. 15)."""
    methods, queries = coverage_methods
    method = methods[method_name]

    def run():
        for query in queries:
            method.search(CoverageQuery(query=query, k=5, delta=10.0))

    benchmark(run)
