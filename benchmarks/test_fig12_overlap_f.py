"""Fig. 12: OJSP search time of OverlapSearch vs the R-tree as the leaf capacity f grows."""

from __future__ import annotations

from conftest import LEAF_CAPACITIES, OJSP_CONFIG, timings_by_method

from repro.bench.experiments import fig12_overlap_vs_leaf_capacity
from repro.bench.reporting import format_table


def test_fig12_sweep(benchmark):
    """Regenerate Fig. 12: OverlapSearch beats the R-tree across leaf capacities."""
    rows = benchmark.pedantic(
        fig12_overlap_vs_leaf_capacity,
        kwargs={"capacities": LEAF_CAPACITIES, "k": 5, "query_count": 5, "config": OJSP_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Fig. 12: OJSP time (ms) vs leaf capacity f"))

    totals = timings_by_method(rows)
    assert set(totals) == {"OverlapSearch", "Rtree"}
    assert totals["OverlapSearch"] <= totals["Rtree"]

    # OverlapSearch must remain competitive at every single capacity, not
    # just in aggregate (the paper: a slight increase with f, still winning).
    for capacity in LEAF_CAPACITIES:
        at_capacity = {row["method"]: row["time_ms"] for row in rows if row["f"] == capacity}
        assert at_capacity["OverlapSearch"] <= at_capacity["Rtree"] * 1.3, capacity
