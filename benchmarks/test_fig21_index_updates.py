"""Figs. 21-22: index maintenance time (batch inserts and batch updates)."""

from __future__ import annotations

import pytest
from conftest import BENCH_CONFIG, UPDATE_BATCHES

from repro.bench.experiments import fig21_22_index_updates
from repro.bench.harness import Workbench
from repro.bench.reporting import format_table
from repro.core.dataset import DatasetNode
from repro.index import DATASET_INDEX_CLASSES


def test_fig21_fig22_sweep(benchmark):
    """Regenerate Figs. 21-22 and check the maintenance-cost ordering."""
    rows = benchmark.pedantic(
        fig21_22_index_updates,
        kwargs={"batch_sizes": UPDATE_BATCHES, "config": BENCH_CONFIG},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Figs. 21-22: batch insert / update time (ms)"))

    largest = max(UPDATE_BATCHES)
    at_largest = {row["index"]: row for row in rows if row["batch"] == largest}
    # Paper: STS3 is the cheapest structure to maintain (hash upserts only);
    # DITS stays cheaper than the QuadTree, which re-inserts every cell.
    assert at_largest["STS3"]["insert_ms"] <= at_largest["Josie"]["insert_ms"]
    assert at_largest["STS3"]["update_ms"] <= at_largest["QuadTree"]["update_ms"]
    assert at_largest["DITS-L"]["insert_ms"] <= at_largest["QuadTree"]["insert_ms"] * 1.5

    # Insert cost grows with the batch size for every index.
    for index_name in DATASET_INDEX_CLASSES:
        series = [row["insert_ms"] for row in rows if row["index"] == index_name]
        assert series[-1] >= series[0] * 0.8, index_name


@pytest.mark.parametrize("index_name", list(DATASET_INDEX_CLASSES))
def test_fig21_single_index_insert_batch(benchmark, workbench: Workbench, index_name: str):
    """Per-index benchmark: inserting a fixed batch of new datasets."""
    base_nodes = workbench.all_nodes()
    extras = [
        DatasetNode(
            dataset_id=f"bench-new-{i}",
            rect=node.rect,
            cells=node.cells,
            point_count=node.point_count,
        )
        for i, node in enumerate(workbench.all_nodes()[:20])
    ]
    index_cls = DATASET_INDEX_CLASSES[index_name]

    def insert_batch():
        index = index_cls()
        index.build(base_nodes)
        for node in extras:
            index.insert(node)
        return index

    index = benchmark(insert_batch)
    assert len(index) == len(base_nodes) + len(extras)
