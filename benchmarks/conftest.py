"""Shared fixtures and configuration for the figure-regeneration benchmarks.

Every benchmark file regenerates one table or figure of the paper's
evaluation section.  The experiment drivers in
:mod:`repro.bench.experiments` do the actual sweeps; the benchmark tests wrap
them so that

* ``pytest benchmarks/ --benchmark-only`` reruns every experiment,
* the measured rows are printed as text tables (the repository's analogue of
  the paper's plots), and
* the qualitative *shape* reported by the paper (which method wins, how a
  curve moves with a parameter) is asserted, not the absolute numbers.

The corpora are intentionally small (a few percent of the paper's dataset
counts — see ``BENCH_CONFIG``) so the full suite completes in minutes on a
laptop.  Scale up ``BENCH_SCALE`` to approach the paper's scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import ExperimentConfig, Workbench

_BENCH_DIR = Path(__file__).resolve().parent


@pytest.fixture(scope="session", autouse=True)
def _corpus_cache_env():
    """Point the on-disk corpus cache at ``benchmarks/.cache`` for sweeps.

    Scoped to this directory's tests (conftest fixtures do not reach
    ``tests/``) and restored afterwards, so the unit lane keeps generating
    corpora from scratch; export ``REPRO_CORPUS_CACHE=""`` to disable for
    sweeps too.
    """
    previous = os.environ.get("REPRO_CORPUS_CACHE")
    if previous is None:
        os.environ["REPRO_CORPUS_CACHE"] = str(_BENCH_DIR / ".cache")
    yield
    if previous is None:
        os.environ.pop("REPRO_CORPUS_CACHE", None)


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark in this directory ``sweep`` (and ``slow``).

    The markers are registered in ``pyproject.toml``; ``pytest -m "not
    sweep"`` therefore gives a sub-minute smoke lane over ``tests/`` while
    the full run still regenerates every figure.
    """
    for item in items:
        try:
            in_bench_dir = _BENCH_DIR in Path(str(item.path)).resolve().parents
        except (OSError, ValueError):
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.sweep)
            item.add_marker(pytest.mark.slow)

#: Scale of the synthetic corpora relative to the paper's dataset counts.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
#: Larger corpus used by the OJSP sweeps (Figs. 9-12), where index pruning
#: only pays off once the corpus is big enough to dominate per-query overhead.
OJSP_SCALE = float(os.environ.get("REPRO_BENCH_OJSP_SCALE", "0.1"))
#: Sources used by the single-machine search benchmarks.
BENCH_SOURCES = ("Transit", "Baidu")

BENCH_CONFIG = ExperimentConfig(sources=BENCH_SOURCES, scale=BENCH_SCALE, theta=12, seed=7)
OJSP_CONFIG = ExperimentConfig(sources=BENCH_SOURCES, scale=OJSP_SCALE, theta=12, seed=7)

#: Reduced sweeps keeping total benchmark wall-clock reasonable; the drivers
#: accept the paper's full ranges if more fidelity is wanted.
K_VALUES = (2, 4, 6, 8, 10)
Q_VALUES = (2, 4, 6, 8)
THETA_VALUES = (10, 11, 12, 13)
DELTA_VALUES = (0.0, 5.0, 10.0, 20.0)
LEAF_CAPACITIES = (10, 20, 30, 50)
UPDATE_BATCHES = (20, 40, 60)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared experiment configuration."""
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    """A session-wide workbench so corpora are generated once."""
    return Workbench(BENCH_CONFIG)


def timings_by_method(rows: list[dict], key: str = "method", value: str = "time_ms") -> dict[str, float]:
    """Aggregate total time per method across an experiment's rows."""
    totals: dict[str, float] = {}
    for row in rows:
        totals[row[key]] = totals.get(row[key], 0.0) + float(row[value])
    return totals
