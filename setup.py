"""Setuptools shim so editable installs work without the ``wheel`` package.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only because the offline evaluation environment lacks ``wheel`` and therefore
cannot perform PEP 660 editable installs.  ``pip install -e . --no-build-isolation``
falls back to the legacy ``setup.py develop`` path through this shim.
"""

from setuptools import setup

setup()
